"""Routing primitives for the compile fleet: hash ring + hot LRU tier.

Two deliberately small, independently testable pieces:

* :class:`HashRing` — consistent hashing over backend names.  Requests
  are placed by their :func:`~repro.ir.serialize.compile_digest`, so one
  digest always lands on the same backend while that backend is in the
  ring; adding or removing a node only moves the ``1/N`` of the keyspace
  adjacent to its points (virtual replicas keep the shares balanced).
  :meth:`HashRing.preference` yields the full failover order — the
  primary first, then each distinct successor clockwise — which is the
  retry schedule the fleet router walks on backend death or saturation.

* :class:`LRUCache` — the hot in-memory artifact tier layered over the
  shared content-addressed disk store.  Digest-keyed, capacity-bounded,
  thread-safe; serves repeat requests without touching the disk objects
  or any backend.  ``capacity=0`` disables the tier (every lookup is a
  miss), which load benchmarks use to measure the layers separately.

Both structures are deterministic: the ring hashes with SHA-256 (no
process-seeded ``hash()``), so placement is stable across processes and
restarts — a prerequisite for sharding one disk store between fleet
members without them shuffling ownership every boot.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right, insort
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Virtual points per node.  64 keeps the largest/smallest keyspace
#: share within a few percent for small fleets while the ring stays
#: tiny (a 16-backend ring is 1024 sorted tuples).
DEFAULT_RING_REPLICAS = 64


def _ring_point(key: str) -> int:
    """A stable 64-bit position on the ring for ``key``."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring over named nodes.

    Thread-safe; mutation (``add``/``remove``) is rare — membership
    changes, not per-request work — so a plain lock suffices.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        replicas: int = DEFAULT_RING_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError("hash ring needs at least one replica")
        self.replicas = replicas
        self._lock = threading.Lock()
        #: Sorted ``(point, node)`` tuples; ties broken by node name so
        #: two processes building the same ring agree exactly.
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[Tuple[int, str]]] = {}
        for node in nodes:
            self.add(node)

    def add(self, node: str) -> None:
        with self._lock:
            if node in self._nodes:
                return
            points = [
                (_ring_point(f"{node}#{i}"), node)
                for i in range(self.replicas)
            ]
            self._nodes[node] = points
            for point in points:
                insort(self._points, point)

    def remove(self, node: str) -> None:
        with self._lock:
            points = self._nodes.pop(node, None)
            if points is None:
                return
            dropped = set(points)
            self._points = [p for p in self._points if p not in dropped]

    def nodes(self) -> List[str]:
        with self._lock:
            return sorted(self._nodes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        with self._lock:
            return node in self._nodes

    def node_for(self, key: str) -> str:
        """The primary owner of ``key`` (first node clockwise)."""
        preference = self.preference(key, limit=1)
        if not preference:
            raise ValueError("hash ring is empty")
        return preference[0]

    def preference(
        self, key: str, limit: Optional[int] = None
    ) -> List[str]:
        """Every distinct node in failover order for ``key``.

        The primary first, then each new node met walking clockwise —
        the order the fleet router retries in when a backend is dead or
        shedding load.  ``limit`` truncates the walk.
        """
        with self._lock:
            if not self._points:
                return []
            want = len(self._nodes) if limit is None else min(
                limit, len(self._nodes)
            )
            start = bisect_right(self._points, (_ring_point(key), "\uffff"))
            order: List[str] = []
            seen = set()
            for offset in range(len(self._points)):
                _, node = self._points[(start + offset) % len(self._points)]
                if node not in seen:
                    seen.add(node)
                    order.append(node)
                    if len(order) >= want:
                        break
            return order

    def shares(self, samples: int = 4096) -> Dict[str, float]:
        """Approximate keyspace share per node (diagnostics/tests)."""
        counts: Dict[str, int] = {node: 0 for node in self.nodes()}
        if not counts:
            return {}
        for i in range(samples):
            counts[self.node_for(f"sample-{i}")] += 1
        return {node: count / samples for node, count in counts.items()}


class LRUCache:
    """Thread-safe digest-keyed LRU with hit/miss/eviction accounting.

    Values are artifact payload dicts (already JSON-shaped); the cache
    never mutates them and callers must not either — entries are shared
    across requests.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("LRU capacity cannot be negative")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: str) -> Optional[Any]:
        if not self.enabled:
            return None
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


__all__ = ["DEFAULT_RING_REPLICAS", "HashRing", "LRUCache"]
