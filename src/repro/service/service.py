"""The compile service: worker pool, admission queue, single-flight.

Request lifecycle::

    submit(request)
      resolve + digest                 (typed config errors surface here)
      artifact store lookup  ── hit ──► outcome served synchronously
      single-flight table    ── dup ──► join the in-flight job
      admission check        ── full ─► QueueFullError (HTTP 503 / exit 75)
      enqueue                          worker pool drains FIFO
    worker:
      store re-check (another process may have filled it) ── hit
      run the pipeline under a per-request Budget (conservative fallback
        on exhaustion — one pathological program degrades itself, it
        does not stall the queue)
      persist the artifact; resolve every joined waiter

Three cache layers cooperate: the in-memory sweep memo
(:mod:`repro.analysis.cache`, restored from disk via
:mod:`repro.service.memo`) accelerates *similar* requests, the artifact
store (:mod:`repro.service.store`) serves *identical* requests across
restarts, and the single-flight table collapses *concurrent identical*
requests into one pipeline run.

Internal counters are authoritative for :meth:`CompileService.stats`;
the same events are mirrored into the PR-4 metrics registry (and every
stage runs under tracer spans) whenever observability is enabled.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import config as _config
from ..errors import (
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServiceError,
    exit_code_for,
)
from ..ir.serialize import compile_digest
from ..observability import emit_event, get_metrics, get_tracer, new_trace_id
from ..resilience.budget import Budget
from .api import (
    STATUS_COALESCED,
    STATUS_ERROR,
    STATUS_HIT,
    STATUS_MISS,
    CompileError,
    CompileOutcome,
    CompileRequest,
)
from .memo import load_memo, save_memo
from .store import ArtifactStore, CompileArtifact, build_artifact


@dataclass
class ServiceConfig:
    """Tunables for one :class:`CompileService` instance."""

    workers: int = _config.DEFAULT_SERVICE_WORKERS
    queue_limit: int = _config.DEFAULT_SERVICE_QUEUE_LIMIT
    #: Root of the persistent artifact store; ``None`` disables
    #: persistence (in-flight dedup and the sweep memo still apply).
    cache_dir: Optional[str] = None
    #: Per-request search budget (conservative fallback on exhaustion).
    deadline_s: Optional[float] = _config.DEFAULT_REQUEST_DEADLINE_S
    max_nodes: Optional[int] = None
    #: Store the mapping-provenance record inside each artifact.
    provenance: bool = True
    #: Persist the in-memory sweep memo across restarts (needs cache_dir).
    memo_persistence: bool = True


@dataclass
class Ticket:
    """One requester's handle on a (possibly shared) outcome.

    ``role`` records how *this* submission was classified at admission:
    ``hit`` (served from the store), ``miss`` (this submission enqueued
    the pipeline run), or ``coalesced`` (joined an in-flight run).
    """

    digest: str
    role: str
    _future: Future = field(repr=False, default_factory=Future)

    def result(self, timeout: Optional[float] = None) -> CompileOutcome:
        return self._future.result(timeout=timeout)

    def done(self) -> bool:
        return self._future.done()


class _Job:
    __slots__ = (
        "digest", "request", "future", "submitted_at", "waiters", "deadline",
        "trace_id", "parent_span_id",
    )

    def __init__(self, digest: str, request: CompileRequest) -> None:
        self.digest = digest
        self.request = request
        self.future: Future = Future()
        self.submitted_at = time.perf_counter()
        self.waiters = 1
        #: Absolute ``perf_counter`` instant the caller's budget expires
        #: (``None`` = unbounded).  Workers shed expired jobs at pickup.
        self.deadline: Optional[float] = (
            None
            if request.deadline_s is None
            else self.submitted_at + request.deadline_s
        )
        #: Distributed trace context the worker thread re-activates: the
        #: admission-side ``service.request`` span becomes the parent of
        #: the worker's ``service.execute`` span.
        self.trace_id: Optional[str] = request.trace_id
        self.parent_span_id: Optional[str] = request.parent_span_id

    def expired(self) -> bool:
        return self.deadline is not None and time.perf_counter() >= self.deadline


_STOP = object()


class CompileService:
    """A long-lived, thread-safe compilation service.

    ``compile_fn(request, digest) -> CompileArtifact`` is injectable so
    tests can gate execution deterministically; the default runs the real
    session pipeline.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        compile_fn: Optional[
            Callable[[CompileRequest, str], CompileArtifact]
        ] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ServiceError("service needs at least one worker")
        if self.config.queue_limit < 1:
            raise ServiceError("service needs a queue limit of at least 1")
        self._compile_fn = compile_fn or self._default_compile
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self.memo_restored: Dict[str, int] = {"search": 0, "autotune": 0}
        if self.store is not None and self.config.memo_persistence:
            self.memo_restored = load_memo(self.config.cache_dir)

        self._lock = threading.Lock()
        self._inflight: Dict[str, _Job] = {}
        self._admitted = 0  # jobs enqueued or running, not yet finished
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._closed = False
        self._started_at = time.time()
        self._latencies_ms: "deque[float]" = deque(maxlen=4096)
        self._counts = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            #: Misses reclassified as hits at execution time because a
            #: concurrent process persisted the artifact first.
            "late_hits": 0,
            "coalesced": 0,
            "executions": 0,
            "errors": 0,
            "queue_rejections": 0,
            #: Requests whose propagated deadline expired before a worker
            #: could run them — shed with a typed outcome, never compiled.
            "deadline_shed": 0,
        }
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"compile-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- public API ------------------------------------------------------

    def submit(self, request: CompileRequest) -> Ticket:
        """Admit one request; returns immediately with a :class:`Ticket`.

        Raises :class:`~repro.errors.RuntimeConfigError` (bad request),
        :class:`~repro.errors.QueueFullError` (admission queue at its
        bound), or :class:`~repro.errors.ServiceError` (closed service).
        """
        if self._closed:
            raise ServiceError("compile service is shut down")
        t0 = time.perf_counter()
        metrics = get_metrics()
        tracer = get_tracer()
        # Join the caller's distributed trace, or root a fresh one when
        # tracing is live (disabled tracing stays id-free: no allocation,
        # no behavior change).
        trace_id = request.trace_id or (
            new_trace_id() if tracer.enabled else None
        )
        request_span_id: Optional[str] = None
        if trace_id is not None:
            with tracer.trace_context(trace_id, request.parent_span_id):
                with tracer.span(
                    "service.request", app=request.app or "<ir>"
                ) as sp:
                    program, device, sizes = request.resolve()
                    digest = compile_digest(
                        program,
                        device=device,
                        flags=request.flags,
                        strategy=request.strategy,
                        sizes=sizes,
                    )
                    request_span_id = getattr(sp, "span_id", None)
        else:
            with tracer.span("service.request", app=request.app or "<ir>"):
                program, device, sizes = request.resolve()
                digest = compile_digest(
                    program,
                    device=device,
                    flags=request.flags,
                    strategy=request.strategy,
                    sizes=sizes,
                )
        self._count("requests", metrics, "service.requests")

        if request.deadline_s is not None and request.deadline_s <= 0:
            # The budget was already spent when the request arrived (an
            # upstream hop forwarded its remainder): shed at admission.
            return self._shed_ticket(
                digest,
                "deadline budget already spent at admission "
                f"({request.deadline_s:.3f}s remaining)",
                metrics,
                trace_id=trace_id,
            )

        if self.store is not None:
            artifact = self.store.get(digest)
            if artifact is not None:
                self._count("cache_hits", metrics, "service.cache.hits")
                latency_ms = (time.perf_counter() - t0) * 1e3
                self._observe_latency(latency_ms, metrics, trace_id)
                ticket = Ticket(digest=digest, role=STATUS_HIT)
                ticket._future.set_result(
                    CompileOutcome(
                        digest=digest,
                        status=STATUS_HIT,
                        artifact=artifact.to_dict(),
                        latency_ms=latency_ms,
                        trace_id=trace_id,
                    )
                )
                return ticket

        with self._lock:
            # Re-checked under the lock: close() flips the flag inside
            # this same critical section, so a submit that wins the race
            # enqueues *before* the _STOP sentinels (a worker still
            # drains it) and one that loses is rejected — a job can
            # never be admitted into a queue no worker will read.
            if self._closed:
                raise ServiceError("compile service is shut down")
            job = self._inflight.get(digest)
            if job is not None:
                job.waiters += 1
                # The shared job must honor the most permissive waiter:
                # a late joiner with a longer (or no) budget must not be
                # shed because the first submitter's deadline was tight.
                if job.deadline is not None:
                    joined_deadline = (
                        None
                        if request.deadline_s is None
                        else time.perf_counter() + request.deadline_s
                    )
                    if joined_deadline is None:
                        job.deadline = None
                    elif joined_deadline > job.deadline:
                        job.deadline = joined_deadline
                self._count_locked("coalesced")
                ticket = Ticket(
                    digest=digest, role=STATUS_COALESCED, _future=job.future
                )
                metrics.counter("service.singleflight.coalesced").inc()
                return ticket
            if self._admitted >= self.config.queue_limit:
                self._count_locked("queue_rejections")
                metrics.counter("service.queue.rejections").inc()
                emit_event(
                    "queue_rejected",
                    digest=digest,
                    queue_depth=self._admitted,
                    queue_limit=self.config.queue_limit,
                    trace_id=trace_id,
                )
                raise QueueFullError(
                    f"compile queue is full "
                    f"({self._admitted}/{self.config.queue_limit} requests "
                    "admitted); retry shortly"
                )
            job = _Job(digest, request)
            # The worker's execute span parents onto this submission's
            # request span (same trace, possibly another thread).
            job.trace_id = trace_id
            if request_span_id is not None:
                job.parent_span_id = request_span_id
            self._inflight[digest] = job
            self._admitted += 1
            self._count_locked("cache_misses")
            metrics.gauge("service.queue.depth").set(self._admitted)
            self._queue.put(job)
        metrics.counter("service.cache.misses").inc()
        return Ticket(digest=digest, role=STATUS_MISS, _future=job.future)

    def compile(
        self, request: CompileRequest, timeout: Optional[float] = None
    ) -> CompileOutcome:
        """Submit and wait: the synchronous convenience the HTTP layer uses.

        A deadline-carrying request never waits unboundedly: when no
        explicit ``timeout`` is given the wait is capped at the request's
        budget plus a small grace (the worker-side shed normally answers
        first; the timed wait is the backstop against a wedged worker),
        and a timeout resolves to the typed shed outcome instead of an
        exception.
        """
        ticket = self.submit(request)
        if timeout is None and request.deadline_s is not None:
            bounded = (
                max(0.0, request.deadline_s) + _config.DEADLINE_WAIT_GRACE_S
            )
            try:
                return ticket.result(timeout=bounded)
            except FutureTimeoutError:
                self._count(
                    "deadline_shed", get_metrics(), "service.deadline.shed"
                )
                emit_event(
                    "deadline_shed",
                    digest=ticket.digest,
                    deadline_s=request.deadline_s,
                    where="wait",
                    trace_id=request.trace_id,
                )
                outcome = error_outcome(
                    ticket.digest,
                    DeadlineExceededError(
                        f"request still pending {bounded:.3f}s after its "
                        f"{request.deadline_s:.3f}s deadline budget; shed"
                    ),
                )
                outcome.trace_id = request.trace_id
                return outcome
        return ticket.result(timeout=timeout)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed service rejects
        submissions with :class:`~repro.errors.ServiceError`."""
        return self._closed

    def clear_cache(self) -> int:
        """Drop every stored artifact; returns how many were removed."""
        return self.store.clear() if self.store is not None else 0

    @property
    def executions(self) -> int:
        """How many times the pipeline actually ran (misses that weren't
        filled by another process before a worker picked them up)."""
        with self._lock:
            return self._counts["executions"]

    def health(self) -> Dict[str, Any]:
        """The ``/v1/health`` payload: liveness plus load, cheap enough
        for a per-second prober.  ``saturation`` is queue depth over the
        admission bound — 1.0 means the next miss is rejected."""
        with self._lock:
            admitted = self._admitted
        limit = self.config.queue_limit
        return {
            "ok": not self._closed,
            "closed": self._closed,
            "queue_depth": admitted,
            "queue_limit": limit,
            "saturation": admitted / limit if limit else 0.0,
            "workers": self.config.workers,
            "uptime_s": time.time() - self._started_at,
        }

    def stats(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of service health."""
        with self._lock:
            counts = dict(self._counts)
            admitted = self._admitted
            latencies = sorted(self._latencies_ms)
        snapshot: Dict[str, Any] = {
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "queue_depth": admitted,
            "uptime_s": time.time() - self._started_at,
            "memo_restored": dict(self.memo_restored),
            **counts,
        }
        snapshot["latency_ms"] = latency_summary(latencies)
        if self.store is not None:
            snapshot["store"] = self.store.stats()
        return snapshot

    def close(self, save: bool = True) -> None:
        """Drain workers and (by default) persist the sweep memo.

        Every admitted job is resolved before this returns: workers
        finish what was queued ahead of the stop sentinels, and anything
        still queued afterwards (a worker died or overran the join
        timeout) is rejected with a :class:`~repro.errors.ServiceError`
        outcome so no waiter blocks forever on an abandoned future.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._workers:
                self._queue.put(_STOP)
        for thread in self._workers:
            thread.join(timeout=60)
        self._reject_queued_jobs()
        if (
            save
            and self.store is not None
            and self.config.memo_persistence
        ):
            try:
                save_memo(self.config.cache_dir)
            except OSError:
                pass  # persistence is best-effort; the store is intact

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _reject_queued_jobs(self) -> None:
        """Resolve any job the workers left behind with a typed error."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            outcome = self._error_outcome(
                item.digest,
                ServiceError("compile service shut down before the job ran"),
            )
            with self._lock:
                self._inflight.pop(item.digest, None)
                self._admitted -= 1
                self._counts["errors"] += 1
            item.future.set_result(outcome)

    # -- worker side -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._run_job(item)

    def _run_job(self, job: _Job) -> None:
        if job.trace_id is not None:
            with get_tracer().trace_context(
                job.trace_id, job.parent_span_id
            ):
                self._run_job_inner(job)
        else:
            self._run_job_inner(job)

    def _run_job_inner(self, job: _Job) -> None:
        metrics = get_metrics()
        outcome: Optional[CompileOutcome] = None
        status = STATUS_MISS
        try:
            # Deadline enforcement at the admission queue: a job whose
            # caller budget expired while it waited is shed before it
            # can touch a worker — before the executions counter, before
            # the pipeline, before the store.  Compiling it would burn a
            # worker on an answer nobody is waiting for.
            if job.expired():
                waited_s = time.perf_counter() - job.submitted_at
                self._count(
                    "deadline_shed", metrics, "service.deadline.shed"
                )
                emit_event(
                    "deadline_shed",
                    digest=job.digest,
                    waited_s=waited_s,
                    where="worker",
                    trace_id=job.trace_id,
                )
                raise DeadlineExceededError(
                    "deadline expired before a worker picked the job up "
                    f"(queued {waited_s:.3f}s); shed without compiling"
                )
            # Another process sharing the cache dir may have persisted
            # this artifact while the job sat in the queue.
            if self.store is not None:
                artifact = self.store.get(job.digest)
                if artifact is not None:
                    status = STATUS_HIT
                    # Admission counted this digest as a miss; now that
                    # it is served from the store, reclassify so the
                    # hit/miss counters agree with the outcome statuses.
                    with self._lock:
                        self._counts["cache_hits"] += 1
                        self._counts["cache_misses"] -= 1
                        self._counts["late_hits"] += 1
                    metrics.counter("service.cache.hits").inc()
                    metrics.counter("service.cache.late_hits").inc()
                    outcome = CompileOutcome(
                        digest=job.digest,
                        status=STATUS_HIT,
                        artifact=artifact.to_dict(),
                    )
            if outcome is None:
                with get_tracer().span(
                    "service.execute",
                    app=job.request.app or "<ir>",
                    strategy=job.request.strategy,
                ):
                    self._count("executions", metrics, "service.executions")
                    artifact = self._compile_fn(job.request, job.digest)
                if self.store is not None:
                    self.store.put(artifact)
                    if artifact.recipe is not None:
                        # Content-addressed by its own digest: serves
                        # GET /v1/artifacts/<recipe_digest> and survives
                        # artifact eviction.
                        self.store.put_recipe(artifact.recipe)
                outcome = CompileOutcome(
                    digest=job.digest,
                    status=STATUS_MISS,
                    artifact=artifact.to_dict(),
                )
        except ReproError as exc:
            status = STATUS_ERROR
            outcome = self._error_outcome(job.digest, exc)
        except Exception as exc:  # noqa: BLE001 - a worker must survive
            status = STATUS_ERROR
            outcome = self._error_outcome(job.digest, exc)
        latency_ms = (time.perf_counter() - job.submitted_at) * 1e3
        outcome.latency_ms = latency_ms
        outcome.trace_id = job.trace_id
        if status == STATUS_ERROR:
            self._count("errors", metrics, "service.errors")
        self._observe_latency(latency_ms, metrics, job.trace_id)
        with self._lock:
            self._inflight.pop(job.digest, None)
            self._admitted -= 1
            metrics.gauge("service.queue.depth").set(self._admitted)
        job.future.set_result(outcome)

    def _default_compile(
        self, request: CompileRequest, digest: str
    ) -> CompileArtifact:
        from ..ir.serialize import canonicalize_program
        from ..runtime.session import GpuSession

        program, device, sizes = request.resolve()
        # Deterministic binder names: codegen output (and so the stored
        # artifact) must be a pure function of the digest, no matter
        # which process or fleet backend runs the pipeline.
        program = canonicalize_program(program)
        budget = None
        if (
            self.config.deadline_s is not None
            or self.config.max_nodes is not None
        ):
            budget = Budget(
                deadline_s=self.config.deadline_s,
                max_nodes=self.config.max_nodes,
            )
        session = GpuSession(
            device=device,
            strategy=request.strategy,
            flags=request.flags,
            budget=budget,
        )
        start = time.perf_counter()
        compiled = session.compile(program, **sizes)
        compile_ms = (time.perf_counter() - start) * 1e3
        return build_artifact(
            digest,
            compiled,
            compile_ms,
            with_provenance=self.config.provenance,
        )

    def _error_outcome(
        self, digest: str, exc: BaseException
    ) -> CompileOutcome:
        return error_outcome(digest, exc)

    def _shed_ticket(
        self, digest: str, detail: str, metrics,
        trace_id: Optional[str] = None,
    ) -> Ticket:
        """A ticket pre-resolved with the typed deadline-shed outcome."""
        self._count("deadline_shed", metrics, "service.deadline.shed")
        self._count("errors", metrics, "service.errors")
        emit_event(
            "deadline_shed",
            digest=digest,
            where="admission",
            trace_id=trace_id,
        )
        ticket = Ticket(digest=digest, role=STATUS_ERROR)
        outcome = error_outcome(digest, DeadlineExceededError(detail))
        outcome.trace_id = trace_id
        ticket._future.set_result(outcome)
        return ticket

    # -- accounting ------------------------------------------------------

    def _count(self, key: str, metrics, metric_name: str) -> None:
        with self._lock:
            self._counts[key] += 1
        metrics.counter(metric_name).inc()

    def _count_locked(self, key: str) -> None:
        self._counts[key] += 1

    def _observe_latency(
        self, latency_ms: float, metrics, trace_id: Optional[str] = None
    ) -> None:
        with self._lock:
            self._latencies_ms.append(latency_ms)
        # The trace id rides along as the bucket's exemplar, so a slow
        # bucket in a snapshot resolves to a concrete request trace.
        metrics.histogram("service.request_ms").observe(
            latency_ms, exemplar=trace_id
        )


def error_outcome(digest: str, exc: BaseException) -> CompileOutcome:
    """Wrap an exception as a typed :class:`CompileOutcome` error.

    Shared by the per-process service and the fleet router so a failure
    carries the same error type, CLI exit code, and (when attached)
    replayable failure report regardless of which layer caught it.
    """
    report = getattr(exc, "failure_report", None)
    return CompileOutcome(
        digest=digest,
        status=STATUS_ERROR,
        error=CompileError(
            error_type=type(exc).__name__,
            message=str(exc),
            exit_code=exit_code_for(exc),
            failure_report=None if report is None else report.to_dict(),
        ),
    )


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0.0 empty)."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[int(index)]


def latency_summary(sorted_latencies_ms: List[float]) -> Dict[str, Any]:
    """The p50/p95/p99 summary every stats surface reports."""
    return {
        "count": len(sorted_latencies_ms),
        "p50": percentile(sorted_latencies_ms, 0.50),
        "p95": percentile(sorted_latencies_ms, 0.95),
        "p99": percentile(sorted_latencies_ms, 0.99),
        "max": sorted_latencies_ms[-1] if sorted_latencies_ms else 0.0,
    }


#: Backwards-compatible alias (pre-fleet internal name).
_percentile = percentile
