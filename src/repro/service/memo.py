"""Persistence adapter between the in-memory sweep memo and the cache dir.

The PR-1 :class:`~repro.analysis.cache.SearchCache` memoizes mapping
searches *within* a process; this adapter carries it *across* process
restarts by pickling :meth:`~repro.analysis.cache.SearchCache.snapshot`
into ``<cache_dir>/memo.pkl`` on shutdown and
:meth:`~repro.analysis.cache.SearchCache.load`\\ ing it on startup.

Snapshot/load is deliberately the only interface used, so both layers
share one invalidation path: whatever ``invalidate``/``evict_where``
dropped from the in-memory cache is absent from the next snapshot, and a
pipeline-version bump discards the whole file (the keys fingerprint
constraint *values*, not pipeline behavior, so a behavior change must
invalidate wholesale).

Load is defensive — a corrupt, truncated, or version-skewed file is
deleted and ignored; the cost is re-searching, never an error.

Trust boundary: ``--cache-dir`` is written by the service itself and
must not be pointed at untrusted data (e.g. a directory checked out
from someone else's repository).  The memo is a pickle because the
cached values are arbitrary search-result objects, and unpickling can
normally be made to call arbitrary callables — so loading goes through
a restricted unpickler that resolves only classes inside the ``repro``
package, never functions or anything from other modules.  A planted
``memo.pkl`` therefore cannot reach ``os.system`` and friends; at worst
it is discarded as corrupt and the searches re-run.
"""

from __future__ import annotations

import io
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict

from ..analysis.cache import get_autotune_cache, get_search_cache
from ..ir.serialize import PIPELINE_VERSION

#: Bumped on any incompatible memo-file change; the loader checks it.
MEMO_VERSION = 1

MEMO_FILENAME = "memo.pkl"


def memo_path(cache_dir: str) -> Path:
    return Path(cache_dir) / MEMO_FILENAME


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global except ``repro.*`` classes.

    Memo payloads are built from primitives (handled by native pickle
    opcodes, no global lookup) and this package's result dataclasses.
    Restricting :meth:`find_class` to classes under the ``repro``
    package removes the unpickling code-execution primitive: a crafted
    file cannot resolve ``os.system``, ``builtins.eval``, or any other
    callable outside the package.
    """

    def find_class(self, module: str, name: str) -> Any:
        if module == "repro" or module.startswith("repro."):
            obj = super().find_class(module, name)
            if isinstance(obj, type):
                return obj
        raise pickle.UnpicklingError(
            f"memo file references forbidden global {module}.{name}"
        )


def _restricted_load(handle: io.BufferedReader) -> Any:
    return _RestrictedUnpickler(handle).load()


def save_memo(cache_dir: str) -> Path:
    """Persist both sweep caches' snapshots; returns the file path."""
    path = memo_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": MEMO_VERSION,
        "pipeline_version": PIPELINE_VERSION,
        "search": get_search_cache().snapshot(),
        "autotune": get_autotune_cache().snapshot(),
    }
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-memo-", suffix=".pkl"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_memo(cache_dir: str) -> Dict[str, int]:
    """Restore both sweep caches from ``memo.pkl`` when present.

    Returns ``{"search": n, "autotune": n}`` entry counts (zeros when
    there was nothing usable to load).
    """
    counts = {"search": 0, "autotune": 0}
    path = memo_path(cache_dir)
    try:
        with open(path, "rb") as handle:
            payload = _restricted_load(handle)
        if (
            not isinstance(payload, dict)
            or payload.get("version") != MEMO_VERSION
            or payload.get("pipeline_version") != PIPELINE_VERSION
        ):
            _discard(path)
            return counts
        counts["search"] = get_search_cache().load(
            payload.get("search") or []
        )
        counts["autotune"] = get_autotune_cache().load(
            payload.get("autotune") or []
        )
    except FileNotFoundError:
        return counts
    except Exception:  # noqa: BLE001 - any corrupt byte stream is a miss
        # Covers unpickling errors *and* malformed payload shapes that
        # surface later (TypeError/ValueError while installing entries).
        _discard(path)
        return {"search": 0, "autotune": 0}
    return counts


def _discard(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
