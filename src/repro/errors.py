"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing
programming errors (``TypeError`` etc. still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Raised when an IR node is constructed or combined incorrectly."""


class TypeMismatchError(IRError):
    """Raised when expression operand types are incompatible."""


class ValidationError(IRError):
    """Raised when an IR tree fails well-formedness validation."""


class AnalysisError(ReproError):
    """Raised when the mapping analysis cannot process an IR tree."""


class MappingError(AnalysisError):
    """Raised for invalid mapping parameter combinations."""


class SearchError(AnalysisError):
    """Raised when the mapping search cannot find any feasible mapping."""


class CodegenError(ReproError):
    """Raised when CUDA code generation fails for a mapping decision."""


class SimulationError(ReproError):
    """Raised when the GPU simulator is given an inconsistent kernel plan."""


class ExecutionError(ReproError):
    """Raised when the functional interpreter cannot evaluate an IR tree."""


class RuntimeConfigError(ReproError):
    """Raised for invalid runtime/session configuration."""
