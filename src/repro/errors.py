"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing
programming errors (``TypeError`` etc. still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Raised when an IR node is constructed or combined incorrectly."""


class TypeMismatchError(IRError):
    """Raised when expression operand types are incompatible."""


class ValidationError(IRError):
    """Raised when an IR tree fails well-formedness validation."""


class AnalysisError(ReproError):
    """Raised when the mapping analysis cannot process an IR tree."""


class MappingError(AnalysisError):
    """Raised for invalid mapping parameter combinations."""


class SearchError(AnalysisError):
    """Raised when the mapping search cannot find any feasible mapping."""


class CodegenError(ReproError):
    """Raised when CUDA code generation fails for a mapping decision."""


class RecipeError(ReproError):
    """Raised for malformed transformation recipes (unknown pass names,
    unsupported versions, undecodable pass parameters)."""


class RecipeReplayError(RecipeError):
    """Raised when replaying a recipe diverges from its recorded state
    digests — the recipe was tampered with, or the pipeline changed
    behavior without a PIPELINE_VERSION bump."""


class SimulationError(ReproError):
    """Raised when the GPU simulator is given an inconsistent kernel plan."""


class ExecutionError(ReproError):
    """Raised when the functional interpreter cannot evaluate an IR tree."""


class RuntimeConfigError(ReproError):
    """Raised for invalid runtime/session configuration."""


class LaunchError(RuntimeConfigError):
    """Raised when launch-parameter adjustment cannot produce a legal
    launch (degenerate sizes, or no block-size candidate satisfies the
    hard constraints)."""


class BudgetExhaustedError(ReproError):
    """Raised when a compilation stage runs out of its deadline or node
    budget *and* no graceful fallback is possible.

    The mapping search normally converts budget exhaustion into the
    conservative fallback mapping instead of letting this escape; it only
    surfaces when even the fallback is infeasible.
    """


class ServiceError(ReproError):
    """Raised for compile-service failures: a request the server could
    not accept, a transport error talking to it, or a malformed
    response.  Maps onto the EX_TEMPFAIL exit code — the caller is
    invited to retry against a healthy server."""


class QueueFullError(ServiceError):
    """Raised when the compile service's bounded admission queue rejects
    a request.  Deliberately raised at submission time rather than
    letting requests pile up: backpressure must be visible to callers
    (HTTP 503 + ``Retry-After``), never an unbounded wait."""


class DeadlineExceededError(ServiceError):
    """Raised (or shipped as a typed outcome) when a request's propagated
    deadline expires before the work could be served.

    The deadline travels on the wire (``CompileRequest.deadline_s``) and
    is enforced at the backend admission queue — expired work is *shed*,
    never compiled — and by the fleet router's failover loop, whose
    retries and backoff sleeps never outlive the caller's budget.  Maps
    onto HTTP 504 and, as a :class:`ServiceError` subclass, onto the
    EX_TEMPFAIL exit code: the request is retryable with a fresh budget.
    """


class InjectedFaultError(ReproError):
    """Raised by the deterministic fault-injection framework.

    Deliberately a :class:`ReproError` subclass: an injected fault must
    travel the exact error paths a real library failure would take, so the
    chaos tests exercise production handling, not a parallel test-only
    path.
    """

    def __init__(self, stage: str, message: str = "") -> None:
        self.stage = stage
        super().__init__(
            message or f"injected fault in stage {stage!r}"
        )


# -- CLI exit codes --------------------------------------------------------

#: Process exit codes per failure class (``python -m repro``).  Config
#: errors share argparse's 2; 70 is BSD's EX_SOFTWARE ("internal error").
EXIT_OK = 0
EXIT_CHECK_FAILED = 1
EXIT_CONFIG = 2
EXIT_ANALYSIS = 3
EXIT_CODEGEN = 4
EXIT_EXECUTION = 5
EXIT_INTERNAL = 70
#: BSD's EX_TEMPFAIL: the compile service is unreachable or shedding
#: load (queue full); the request is retryable as-is.
EXIT_UNAVAILABLE = 75


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI exit code for its failure class.

    Ordering matters: subclasses are checked before their bases
    (``LaunchError`` is a ``RuntimeConfigError``; ``SearchError`` is an
    ``AnalysisError``).
    """
    if isinstance(exc, ServiceError):
        return EXIT_UNAVAILABLE
    if isinstance(exc, RecipeReplayError):
        # A divergent replay is a failed check, not a config problem.
        return EXIT_CHECK_FAILED
    if isinstance(exc, RecipeError):
        return EXIT_CONFIG
    if isinstance(exc, RuntimeConfigError):
        return EXIT_CONFIG
    if isinstance(exc, (AnalysisError, IRError)):
        return EXIT_ANALYSIS
    if isinstance(exc, CodegenError):
        return EXIT_CODEGEN
    if isinstance(exc, (ExecutionError, SimulationError)):
        return EXIT_EXECUTION
    # Remaining ReproErrors (injected faults, budget exhaustion, future
    # subsystems) and non-library exceptions are "internal".
    return EXIT_INTERNAL
