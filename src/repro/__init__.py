"""repro — Locality-Aware Mapping of Nested Parallel Patterns on GPUs.

A from-scratch reproduction of Lee et al., MICRO 2014.  The package
provides:

* a parallel-pattern IR and front-end DSL (:mod:`repro.ir`),
* the constraint-driven mapping analysis — the paper's contribution
  (:mod:`repro.analysis`),
* mapping-coupled optimizations: preallocation with layout selection and
  shared-memory prefetch (:mod:`repro.optim`),
* a CUDA code generator (:mod:`repro.codegen`),
* an analytic GPU simulator standing in for the paper's Tesla K20c
  (:mod:`repro.gpusim`),
* a functional interpreter as the correctness oracle (:mod:`repro.interp`),
* a runtime session facade (:mod:`repro.runtime`),
* the paper's benchmark applications (:mod:`repro.apps`) and the experiment
  harness regenerating every figure (:mod:`repro.figures`).

Quickstart::

    import numpy as np
    from repro import Builder, F64, GpuSession

    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    program = b.build(m.map_rows(lambda row: row.reduce("+")))

    session = GpuSession()
    compiled = session.compile(program, R=1024, C=4096)
    print(compiled.describe())                 # chosen mapping per kernel
    data = np.random.rand(1024, 4096)
    result = compiled.run(m=data, R=1024, C=4096)
    print(compiled.estimate_time_us())         # simulated K20c time
"""

__version__ = "1.0.0"

from .errors import (  # noqa: F401
    AnalysisError,
    CodegenError,
    ExecutionError,
    IRError,
    MappingError,
    QueueFullError,
    ReproError,
    SearchError,
    ServiceError,
    SimulationError,
    ValidationError,
)
from .ir import (  # noqa: F401
    BOOL,
    Builder,
    F32,
    F64,
    I32,
    I64,
    Program,
)
from .analysis import (  # noqa: F401
    Dim,
    LevelMapping,
    Mapping,
    Span,
    SpanAll,
    Split,
    analyze_program,
)
from .gpusim import (  # noqa: F401
    GpuDevice,
    TESLA_C2050,
    TESLA_K20C,
    default_device,
    simulate_program,
)
from .interp import run_program  # noqa: F401
from .optim import OptimizationFlags  # noqa: F401
from .runtime import CompiledProgram, GpuSession  # noqa: F401
from .codegen import compile_program  # noqa: F401
