"""Fleet-wide metrics aggregation: merge per-process registry snapshots.

Every server exposes its :class:`~repro.observability.MetricsRegistry`
snapshot at ``/v1/metrics``; the fleet router scrapes each backend and
merges the snapshots here.  The merge is exact by construction:

* **counters** sum — each process counts disjoint work;
* **gauges** sum — the fleet gauges are extensive quantities (queue
  depth, inflight requests), so the fleet-wide value is the total;
* **histograms** merge bucket-wise — bucket bounds are fixed at creation
  (never derived from data), so two snapshots of the same metric always
  share bounds and the merged histogram is exactly what one process
  observing both streams would have recorded.  Exemplars union with
  last-merge-wins per bucket.

A histogram whose bounds genuinely differ across sources (a version skew
between fleet members) is *not* silently misfolded: it is left out of
the merge and listed in the envelope's ``unmerged`` field.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional


def merge_histograms(
    into: Dict[str, Any], other: Mapping[str, Any]
) -> bool:
    """Fold ``other`` into ``into`` bucket-wise; False on bounds skew."""
    if list(into["buckets"]) != list(other["buckets"]):
        return False
    into["counts"] = [
        a + b for a, b in zip(into["counts"], other["counts"])
    ]
    into["sum"] = into["sum"] + other["sum"]
    into["count"] = into["count"] + other["count"]
    exemplars = dict(into.get("exemplars") or {})
    exemplars.update(other.get("exemplars") or {})
    if exemplars:
        into["exemplars"] = exemplars
    return True


def merge_snapshots(
    snapshots: Mapping[str, Optional[Mapping[str, Any]]]
) -> Dict[str, Any]:
    """Merge named registry snapshots into one fleet-wide snapshot.

    ``snapshots`` maps a source name (backend name, ``"router"``) to a
    registry ``to_dict()`` payload; ``None`` values (a backend with
    metrics disabled or unreachable) are skipped but listed in
    ``missing``.  Returns::

        {"counters": {...}, "gauges": {...}, "histograms": {...},
         "sources": [names merged], "missing": [names skipped],
         "unmerged": ["histogram names left out on bounds skew"]}
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    merged_sources: List[str] = []
    missing: List[str] = []
    unmerged: List[str] = []

    for source in sorted(snapshots):
        snap = snapshots[source]
        if not snap:
            missing.append(source)
            continue
        merged_sources.append(source)
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, data in snap.get("histograms", {}).items():
            if name in unmerged:
                continue
            existing = histograms.get(name)
            if existing is None:
                copy = dict(data)
                copy["buckets"] = list(data["buckets"])
                copy["counts"] = list(data["counts"])
                if data.get("exemplars"):
                    copy["exemplars"] = dict(data["exemplars"])
                histograms[name] = copy
            elif not merge_histograms(existing, data):
                del histograms[name]
                unmerged.append(name)

    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "sources": merged_sources,
        "missing": missing,
        "unmerged": unmerged,
    }


def histogram_quantile(data: Mapping[str, Any], q: float) -> float:
    """Approximate quantile from a cumulative fixed-bucket histogram.

    Returns the upper bound of the bucket containing the ``q``-quantile
    observation (the overflow bucket reports the last finite bound).
    Good enough for a dashboard; exact latencies live in the traces.
    """
    count = data.get("count", 0)
    if not count:
        return 0.0
    target = q * count
    seen = 0
    buckets = data["buckets"]
    for i, bucket_count in enumerate(data["counts"]):
        seen += bucket_count
        if seen >= target:
            return float(buckets[min(i, len(buckets) - 1)])
    return float(buckets[-1])
