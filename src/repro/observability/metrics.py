"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single home for pipeline statistics that used to be
scattered across ad-hoc fields: memo-cache hits/misses/evictions,
branch-and-bound pruned-vs-visited counts, constraint counts by
Hard/Soft x Local/Global class, fallback and retry activations, per-stage
wall time, and cost-model component sums.

Histogram buckets are fixed and deterministic (supplied at creation,
never derived from the data), so two snapshots of the same workload are
directly comparable.

As with the tracer, a :class:`NullRegistry` backend makes every metric
operation a no-op when observability is disabled; instrumentation sites
that would loop (e.g. per-constraint counting) guard on
``registry.enabled`` so the disabled cost stays one attribute read.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing value (int or float increments)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus-style).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the final
    slot counts overflows (observations above the last bound).

    An observation may carry an *exemplar* — an opaque reference (here: a
    trace_id) kept per bucket, last-write-wins — so a snapshot can link
    "something landed in the 250ms+ bucket" to a concrete request trace.
    """

    __slots__ = (
        "buckets", "bucket_counts", "total", "count", "exemplars", "_lock"
    )

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0
        self.exemplars: Dict[int, str] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.total += value
            self.count += 1
            if exemplar is not None:
                self.exemplars[index] = exemplar

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        # Snapshot under the lock: a concurrent observe() must never
        # produce counts/sum/count that disagree with each other.
        with self._lock:
            data: Dict[str, Any] = {
                "buckets": list(self.buckets),
                "counts": list(self.bucket_counts),
                "sum": self.total,
                "count": self.count,
            }
            if self.exemplars:
                data["exemplars"] = {
                    str(k): v for k, v in sorted(self.exemplars.items())
                }
        return data


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    buckets: Tuple[float, ...] = (1.0,)
    bucket_counts: List[int] = []
    total = 0.0
    count = 0
    mean = 0.0

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"buckets": [], "counts": [], "sum": 0.0, "count": 0}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Disabled backend: hands out shared no-op metric singletons."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullHistogram:
        return NULL_HISTOGRAM

    def to_dict(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render(self) -> str:
        return "(metrics disabled)"


NULL_REGISTRY = NullRegistry()

#: Default bounds for millisecond-scale histograms.
DEFAULT_MS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class MetricsRegistry:
    """The recording backend: named metrics, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter())
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge())
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(buckets or DEFAULT_MS_BUCKETS)
                )
        return metric

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable snapshot (``repro stats`` output)."""
        snap = self.to_dict()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                shown = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"  {name:<44} {shown}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<44} {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, data in snap["histograms"].items():
                count = data["count"]
                mean = data["sum"] / count if count else 0.0
                lines.append(
                    f"  {name:<44} count={count} mean={mean:.4g} "
                    f"sum={data['sum']:.4g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
