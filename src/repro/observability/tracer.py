"""Span-based tracer with Chrome trace-event (Perfetto) export.

Every pipeline stage opens a span through a context manager::

    with get_tracer().span("search", levels=3) as sp:
        ...
        sp.set(candidates=result.candidates_total)

Completed spans become ``ph: "X"`` (complete) events in the Chrome
trace-event format; :meth:`Tracer.instant` emits ``ph: "i"`` markers
(used for per-subtree prune events in detail mode).  The resulting JSON
(:meth:`Tracer.to_chrome`) loads directly in Perfetto / ``chrome://tracing``.

Two backends share the interface:

* :class:`Tracer` — records events (timestamps from a monotonic clock,
  microseconds relative to the tracer's epoch, one timeline per thread);
* :class:`NullTracer` — the zero-overhead disabled backend.  Its
  :meth:`~NullTracer.span` returns a shared singleton whose
  ``__enter__``/``__exit__`` do nothing: the cost of a disabled span is
  two trivial method calls and no allocation (asserted by
  ``benchmarks/bench_observability_overhead.py``).

On span exit the tracer also feeds the active metrics registry a
``stage_ms.<name>`` histogram observation, so per-stage wall time shows
up in ``repro stats`` without separate timing code at every call site.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Set

#: Histogram buckets (milliseconds) for per-stage wall-time metrics.
#: Fixed and deterministic so snapshots are comparable across runs.
STAGE_MS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class _NullSpan:
    """The span handle of the disabled backend: every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **args: Any) -> None:
        pass

    def event(self, name: str, **args: Any) -> None:
        pass


#: Shared singleton: a disabled span never allocates.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled backend: accepts the full tracer API, records nothing."""

    enabled = False
    detail = False

    def span(self, name: str, cat: str = "pipeline", **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, cat: str = "pipeline", **args: Any) -> None:
        pass

    def events(self) -> List[Dict[str, Any]]:
        return []

    def tail(self, limit: int = 100) -> List[Dict[str, Any]]:
        return []

    def span_names(self) -> Set[str]:
        return set()


#: Shared singleton installed whenever tracing is off.
NULL_TRACER = NullTracer()


class _Span:
    """A live span: open on ``__enter__``, recorded on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._now_us()
        return self

    def set(self, **args: Any) -> None:
        """Attach result attributes to the span (shown in Perfetto)."""
        self.args.update(args)

    def event(self, name: str, **args: Any) -> None:
        """Emit an instant event nested under this span's timeline."""
        self._tracer.instant(name, cat=self.cat, **args)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end = self._tracer._now_us()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(self, end)
        return False


class Tracer:
    """The recording backend.

    ``detail=True`` additionally emits the high-volume per-subtree
    search events (prune/visit instants); default traces stay compact.
    """

    enabled = True

    def __init__(self, detail: bool = False) -> None:
        self.detail = detail
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def span(self, name: str, cat: str = "pipeline", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    def _record(self, span: _Span, end_us: float) -> None:
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span._start,
            "dur": end_us - span._start,
            "pid": 1,
            "tid": threading.get_ident() & 0xFFFF,
        }
        if span.args:
            event["args"] = dict(span.args)
        with self._lock:
            self._events.append(event)
        # Per-stage wall time flows into the metrics registry so one
        # instrumentation point serves both backends.
        from .state import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram(
                f"stage_ms.{span.name}", STAGE_MS_BUCKETS
            ).observe((end_us - span._start) / 1e3)

    def instant(self, name: str, cat: str = "pipeline", **args: Any) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": 1,
            "tid": threading.get_ident() & 0xFFFF,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    # -- export ------------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot of every recorded event, in completion order."""
        with self._lock:
            return list(self._events)

    def tail(self, limit: int = 100) -> List[Dict[str, Any]]:
        """The most recent events (embedded in failure reports)."""
        with self._lock:
            return list(self._events[-limit:])

    def span_names(self) -> Set[str]:
        """Distinct names of completed spans (pipeline-stage coverage)."""
        with self._lock:
            return {e["name"] for e in self._events if e["ph"] == "X"}

    def to_chrome(self) -> Dict[str, Any]:
        """The complete Chrome trace-event document."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "repro pipeline"},
            }
        ]
        return {
            "traceEvents": metadata + self.events(),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON artifact; returns the path."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=2)
            handle.write("\n")
        return path


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Structural checks a Perfetto-loadable trace must pass.

    Returns a list of problems (empty when valid).  Used by the tests and
    the CLI so a malformed artifact is caught at write time, not when a
    user drags it into the viewer.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"event {i} has unsupported phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i} has no name")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} has bad dur {dur!r}")
    return problems
