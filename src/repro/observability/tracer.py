"""Span-based tracer with Chrome trace-event (Perfetto) export.

Every pipeline stage opens a span through a context manager::

    with get_tracer().span("search", levels=3) as sp:
        ...
        sp.set(candidates=result.candidates_total)

Completed spans become ``ph: "X"`` (complete) events in the Chrome
trace-event format; :meth:`Tracer.instant` emits ``ph: "i"`` markers
(used for per-subtree prune events in detail mode).  The resulting JSON
(:meth:`Tracer.to_chrome`) loads directly in Perfetto / ``chrome://tracing``.

Two backends share the interface:

* :class:`Tracer` — records events (timestamps from a monotonic clock,
  microseconds relative to the tracer's epoch, one timeline per thread);
* :class:`NullTracer` — the zero-overhead disabled backend.  Its
  :meth:`~NullTracer.span` returns a shared singleton whose
  ``__enter__``/``__exit__`` do nothing: the cost of a disabled span is
  two trivial method calls and no allocation (asserted by
  ``benchmarks/bench_observability_overhead.py``).

On span exit the tracer also feeds the active metrics registry a
``stage_ms.<name>`` histogram observation, so per-stage wall time shows
up in ``repro stats`` without separate timing code at every call site.

**Distributed trace context.**  A W3C-traceparent-style context —
``trace_id`` (32 hex chars) plus a parent ``span_id`` (16 hex chars) —
can be activated on a tracer with :meth:`Tracer.trace_context`.  While a
context is active on a thread, every span records ``trace_id`` /
``span_id`` / ``parent_span_id`` in its args and nested spans parent
onto the enclosing span, so fragments recorded in different processes
can be stitched back into one tree (:mod:`.stitch`) by following the
span ids across the wire.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Histogram buckets (milliseconds) for per-stage wall-time metrics.
#: Fixed and deterministic so snapshots are comparable across runs.
STAGE_MS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (W3C traceparent width)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 16-hex-char span id (W3C traceparent width)."""
    return secrets.token_hex(8)


def is_valid_trace_id(value: Any) -> bool:
    return (
        isinstance(value, str)
        and len(value) == 32
        and all(c in "0123456789abcdef" for c in value)
    )


class _NullSpan:
    """The span handle of the disabled backend: every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **args: Any) -> None:
        pass

    def event(self, name: str, **args: Any) -> None:
        pass


#: Shared singleton: a disabled span never allocates.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled backend: accepts the full tracer API, records nothing."""

    enabled = False
    detail = False

    def span(self, name: str, cat: str = "pipeline", **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, cat: str = "pipeline", **args: Any) -> None:
        pass

    def events(self) -> List[Dict[str, Any]]:
        return []

    def tail(self, limit: int = 100) -> List[Dict[str, Any]]:
        return []

    def tail_info(self, limit: int = 100) -> Tuple[List[Dict[str, Any]], int]:
        return [], 0

    def span_names(self) -> Set[str]:
        return set()

    def events_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        return []

    @contextmanager
    def trace_context(
        self, trace_id: str, parent_span_id: Optional[str] = None
    ) -> Iterator[None]:
        yield


#: Shared singleton installed whenever tracing is off.
NULL_TRACER = NullTracer()


class _Span:
    """A live span: open on ``__enter__``, recorded on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "span_id")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self.span_id: Optional[str] = None

    def __enter__(self) -> "_Span":
        self._start = self._tracer._now_us()
        ctx = self._tracer._context_stack()
        if ctx:
            trace_id, parent = ctx[-1]
            self.span_id = new_span_id()
            self.args["trace_id"] = trace_id
            self.args["span_id"] = self.span_id
            if parent is not None:
                self.args["parent_span_id"] = parent
            ctx.append((trace_id, self.span_id))
        return self

    def set(self, **args: Any) -> None:
        """Attach result attributes to the span (shown in Perfetto)."""
        self.args.update(args)

    def event(self, name: str, **args: Any) -> None:
        """Emit an instant event nested under this span's timeline."""
        self._tracer.instant(name, cat=self.cat, **args)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end = self._tracer._now_us()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        if self.span_id is not None:
            ctx = self._tracer._context_stack()
            if ctx and ctx[-1][1] == self.span_id:
                ctx.pop()
        self._tracer._record(self, end)
        return False


class Tracer:
    """The recording backend.

    ``detail=True`` additionally emits the high-volume per-subtree
    search events (prune/visit instants); default traces stay compact.
    """

    enabled = True

    def __init__(self, detail: bool = False) -> None:
        self.detail = detail
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        # Wall-clock time of the epoch (microseconds since the Unix
        # epoch): lets the stitcher rebase fragments from different
        # processes onto one shared timeline.
        self.epoch_unix_us = time.time() * 1e6
        self._local = threading.local()

    # -- distributed trace context ----------------------------------------

    def _context_stack(self) -> List[Tuple[str, Optional[str]]]:
        stack = getattr(self._local, "ctx", None)
        if stack is None:
            stack = self._local.ctx = []
        return stack

    @contextmanager
    def trace_context(
        self, trace_id: str, parent_span_id: Optional[str] = None
    ) -> Iterator[None]:
        """Activate a distributed trace context on the calling thread.

        Spans opened while the context is active carry ``trace_id`` /
        ``span_id`` / ``parent_span_id`` args and nest onto each other;
        the outermost span parents onto ``parent_span_id`` (the caller's
        span in another process, or ``None`` for a trace root).
        """
        stack = self._context_stack()
        stack.append((trace_id, parent_span_id))
        depth = len(stack)
        try:
            yield
        finally:
            # Unwind to where we were even if a span leaked (e.g. an
            # exception escaped between __enter__ and __exit__).
            del stack[depth - 1:]

    def current_context(self) -> Optional[Tuple[str, Optional[str]]]:
        """The (trace_id, active span_id) pair, or ``None``."""
        stack = self._context_stack()
        return stack[-1] if stack else None

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def span(self, name: str, cat: str = "pipeline", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    def _record(self, span: _Span, end_us: float) -> None:
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span._start,
            "dur": end_us - span._start,
            "pid": 1,
            "tid": threading.get_ident() & 0xFFFF,
        }
        if span.args:
            event["args"] = dict(span.args)
        with self._lock:
            self._events.append(event)
        # Per-stage wall time flows into the metrics registry so one
        # instrumentation point serves both backends.
        from .state import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram(
                f"stage_ms.{span.name}", STAGE_MS_BUCKETS
            ).observe((end_us - span._start) / 1e3)

    def instant(self, name: str, cat: str = "pipeline", **args: Any) -> None:
        ctx = self._context_stack()
        if ctx:
            trace_id, parent = ctx[-1]
            args["trace_id"] = trace_id
            if parent is not None:
                args["parent_span_id"] = parent
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": 1,
            "tid": threading.get_ident() & 0xFFFF,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    # -- export ------------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot of every recorded event, in completion order."""
        with self._lock:
            return list(self._events)

    def tail(self, limit: int = 100) -> List[Dict[str, Any]]:
        """The most recent events (embedded in failure reports)."""
        with self._lock:
            return list(self._events[-limit:])

    def tail_info(self, limit: int = 100) -> Tuple[List[Dict[str, Any]], int]:
        """The most recent events plus how many older ones were dropped.

        Failure reports embed this so a truncated tail declares itself
        (``trace_truncated`` / ``trace_dropped_events``) instead of
        silently looking complete.
        """
        with self._lock:
            dropped = max(0, len(self._events) - limit)
            return list(self._events[-limit:]), dropped

    def events_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Events recorded under a distributed trace context."""
        with self._lock:
            return [
                e
                for e in self._events
                if e.get("args", {}).get("trace_id") == trace_id
            ]

    def span_names(self) -> Set[str]:
        """Distinct names of completed spans (pipeline-stage coverage)."""
        with self._lock:
            return {e["name"] for e in self._events if e["ph"] == "X"}

    def to_chrome(self) -> Dict[str, Any]:
        """The complete Chrome trace-event document."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "repro pipeline"},
            }
        ]
        return {
            "traceEvents": metadata + self.events(),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON artifact; returns the path."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=2)
            handle.write("\n")
        return path


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Structural checks a Perfetto-loadable trace must pass.

    Returns a list of problems (empty when valid).  Used by the tests and
    the CLI so a malformed artifact is caught at write time, not when a
    user drags it into the viewer.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "s", "f"):
            problems.append(f"event {i} has unsupported phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i} has no name")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} has bad dur {dur!r}")
        if ph in ("s", "f"):
            # Flow events pair a start with a finish through a shared id
            # (the stitcher uses them for cross-process parent links).
            if not isinstance(event.get("id"), (str, int)):
                problems.append(f"event {i} flow has no id")
    return problems
