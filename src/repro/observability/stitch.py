"""Stitch per-process trace fragments into one Perfetto-loadable trace.

A fleet request crosses processes: the router records a ``fleet.request``
span, the backend it dispatched to records ``service.request`` /
``service.execute`` spans, and a failover or hedge adds fragments from
more backends.  Each process's :class:`~repro.observability.Tracer`
records its own timeline (its own pid-1 namespace, its own monotonic
epoch), so the raw fragments are disconnected.

The stitcher rebuilds one trace:

* each fragment becomes its own ``pid`` with a ``process_name`` metadata
  event (router, backend names), so Perfetto renders one track group per
  process;
* timestamps are rebased onto a shared wall-clock timeline using each
  tracer's ``epoch_unix_us`` (recorded at tracer creation), so spans
  from different processes line up;
* cross-process parent links — a span whose ``parent_span_id`` lives in
  a *different* fragment — become Chrome flow events (``ph: "s"`` at the
  parent span, ``ph: "f"``/``bp: "e"`` at the child), which Perfetto
  draws as arrows between the process tracks.

Fragments are plain JSON (the ``/v1/trace/<id>?raw=1`` payload)::

    {"process": "backend-0", "epoch_unix_us": 1.7e15, "events": [...]}
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional


def make_fragment(
    process: str,
    events: Iterable[Mapping[str, Any]],
    epoch_unix_us: Optional[float] = None,
) -> Dict[str, Any]:
    """The wire form of one process's share of a distributed trace."""
    return {
        "process": process,
        "epoch_unix_us": epoch_unix_us,
        "events": [dict(e) for e in events],
    }


def _span_id_of(event: Mapping[str, Any]) -> Optional[str]:
    return event.get("args", {}).get("span_id")


def _parent_span_id_of(event: Mapping[str, Any]) -> Optional[str]:
    return event.get("args", {}).get("parent_span_id")


def stitch_fragments(
    fragments: List[Mapping[str, Any]],
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Merge fragments into one Chrome trace-event document.

    Fragment order is preserved: the first fragment (conventionally the
    router) gets pid 1, the next pid 2, and so on.  Returns a document
    that passes :func:`~repro.observability.validate_chrome_trace` and
    loads in Perfetto with cross-process parent links drawn as flows.
    """
    out: List[Dict[str, Any]] = []
    # Rebase onto the earliest fragment epoch so the merged timeline
    # starts near zero.  A fragment without an epoch (older server)
    # keeps its local timeline — spans stay correct per process, only
    # cross-process alignment degrades.
    epochs = [
        f.get("epoch_unix_us")
        for f in fragments
        if f.get("epoch_unix_us") is not None
    ]
    base = min(epochs) if epochs else None

    # First pass: assign pids, rebase timestamps, index spans by id.
    spans_by_id: Dict[str, Dict[str, Any]] = {}
    pid_by_span: Dict[str, int] = {}
    rebased: List[Dict[str, Any]] = []
    for index, fragment in enumerate(fragments):
        pid = index + 1
        offset = 0.0
        epoch = fragment.get("epoch_unix_us")
        if base is not None and epoch is not None:
            offset = epoch - base
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": str(fragment.get("process", f"p{pid}"))},
            }
        )
        for event in fragment.get("events", []):
            copy = dict(event)
            copy["pid"] = pid
            if isinstance(copy.get("ts"), (int, float)):
                copy["ts"] = copy["ts"] + offset
            rebased.append(copy)
            span_id = _span_id_of(copy)
            if span_id is not None and copy.get("ph") == "X":
                spans_by_id[span_id] = copy
                pid_by_span[span_id] = pid

    out.extend(rebased)

    # Second pass: a span whose parent lives in another fragment gets a
    # flow arrow from the parent slice to the child slice.
    for event in rebased:
        if event.get("ph") != "X":
            continue
        parent_id = _parent_span_id_of(event)
        if parent_id is None:
            continue
        parent = spans_by_id.get(parent_id)
        if parent is None or pid_by_span[parent_id] == event["pid"]:
            continue
        flow_id = _span_id_of(event) or f"flow-{id(event)}"
        common = {"name": "parent", "cat": "trace", "id": flow_id}
        out.append(
            {
                **common,
                "ph": "s",
                "ts": parent["ts"],
                "pid": parent["pid"],
                "tid": parent.get("tid", 1),
            }
        )
        out.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "ts": event["ts"],
                "pid": event["pid"],
                "tid": event.get("tid", 1),
            }
        )

    document: Dict[str, Any] = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
    }
    if trace_id is not None:
        document["traceId"] = trace_id
    return document


def cross_process_links(document: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The flow-event pairs of a stitched document (for assertions)."""
    events = document.get("traceEvents", [])
    starts = {e["id"]: e for e in events if e.get("ph") == "s"}
    links: List[Dict[str, Any]] = []
    for event in events:
        if event.get("ph") != "f":
            continue
        start = starts.get(event.get("id"))
        if start is not None:
            links.append(
                {
                    "id": event["id"],
                    "from_pid": start["pid"],
                    "to_pid": event["pid"],
                }
            )
    return links
