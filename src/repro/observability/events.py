"""Bounded structured event log for control-plane transitions.

The fleet's *data plane* (compile requests) is instrumented with spans
and metrics that can be switched off for zero overhead.  The *control
plane* — breaker transitions, reroutes, hedges fired, deadline sheds,
store quarantines, queue rejections — is different: those transitions
are rare (they happen when something is already going wrong), each one
is exactly what an operator needs to see, and losing them because
observability was off defeats the point.  So the event log is always on
and bounded: a fixed-capacity ring that counts what it drops.

Every event is a flat JSON object::

    {"seq": 17, "ts": 1754650000.123, "kind": "breaker_open",
     "backend": "b1", "failures": 3}

``seq`` is a process-wide monotonically increasing sequence number, so a
follower (``repro fleet events --follow``) polls ``/v1/events?since=N``
and never sees an event twice; ``ts`` is Unix wall-clock seconds.  When
an event refers to a request it carries its ``trace_id``, linking the
control-plane record to the stitched data-plane trace.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..config import DEFAULT_EVENT_LOG_CAPACITY

#: Event kinds emitted by the fleet tier (the schema's closed vocabulary;
#: documented in docs/observability.md).
EVENT_KINDS = (
    "breaker_open",
    "breaker_half_open",
    "breaker_closed",
    "backend_readmitted",
    "reroute",
    "hedge_fired",
    "hedge_won",
    "deadline_shed",
    "queue_rejected",
    "quarantine",
)


class EventLog:
    """Thread-safe bounded ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_EVENT_LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_seq = 0
        self._dropped = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the stored record (with seq/ts).

        ``kind`` must come from :data:`EVENT_KINDS` — a closed
        vocabulary is what keeps the event schema documentable and the
        ``--follow`` feed greppable.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; "
                f"known: {', '.join(EVENT_KINDS)}"
            )
        event: Dict[str, Any] = {"kind": kind, "ts": time.time()}
        event.update(fields)
        with self._lock:
            event["seq"] = self._next_seq
            self._next_seq += 1
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
        return event

    def snapshot(self, since: Optional[int] = None) -> Dict[str, Any]:
        """Events with ``seq > since`` (all retained when ``since=None``).

        The envelope carries ``next_seq`` (pass it back as ``since`` to
        poll incrementally) and ``dropped`` (events lost to the ring
        bound since process start).
        """
        with self._lock:
            if since is None:
                events: List[Dict[str, Any]] = list(self._events)
            else:
                events = [e for e in self._events if e["seq"] > since]
            return {
                "events": events,
                "next_seq": self._next_seq,
                "dropped": self._dropped,
                "capacity": self.capacity,
            }

    def counts_by_kind(self) -> Dict[str, int]:
        """How many retained events of each kind (for stats surfaces)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for event in self._events:
                counts[event["kind"]] = counts.get(event["kind"], 0) + 1
            return counts

    def clear(self) -> None:
        """Drop everything and reset counters (tests only)."""
        with self._lock:
            self._events.clear()
            self._next_seq = 0
            self._dropped = 0


#: Process-wide log: servers expose it at /v1/events, the router and the
#: service emit into it, chaos campaigns assert against it.
_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    return _EVENT_LOG


def emit_event(kind: str, **fields: Any) -> Dict[str, Any]:
    """Convenience wrapper over the process-wide log."""
    return _EVENT_LOG.emit(kind, **fields)
