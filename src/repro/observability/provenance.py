"""Mapping-provenance records: *why this mapping won*, as an artifact.

A :class:`CompileProvenance` captures, for every kernel of a compile, the
chosen mapping, the search telemetry, and the ranked top-k candidates
with per-constraint verdicts and score deltas.  Serialized to JSON it
lets ``repro explain <artifact>`` render the full rationale from a saved
file instead of re-running the search.

Building the record re-uses the keep-all search (memoized across calls,
see :mod:`repro.analysis.cache`), so it is only constructed on demand —
lazily through :meth:`~repro.runtime.session.CompiledProgram.provenance`,
or eagerly per compile when ``REPRO_PROVENANCE`` /
``configure(provenance=True)`` is set.

This module is imported lazily by the session and the CLI (never from
``repro.observability.__init__``) so the tracer/metrics hot path stays
free of analysis-layer imports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError

#: Bumped on any incompatible artifact change; the loader checks it.
PROVENANCE_VERSION = 1


@dataclass
class VerdictRecord:
    """One constraint's outcome under one candidate mapping."""

    description: str
    hard: bool
    scope: str
    satisfied: bool
    weight: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "description": self.description,
            "hard": self.hard,
            "scope": self.scope,
            "satisfied": self.satisfied,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerdictRecord":
        return cls(
            description=data["description"],
            hard=bool(data["hard"]),
            scope=data.get("scope", "local"),
            satisfied=bool(data["satisfied"]),
            weight=float(data.get("weight", 0.0)),
        )

    def render(self) -> str:
        mark = "ok " if self.satisfied else ("VIOLATED" if self.hard else "MISS")
        kind = "hard" if self.hard else "soft"
        weight = "" if self.hard else f" (w={self.weight:.3g})"
        return f"[{mark:>4}] [{kind}/{self.scope}] {self.description}{weight}"


@dataclass
class CandidateRecord:
    """One ranked candidate from the search space."""

    rank: int
    mapping: str
    score: float
    dop: int
    #: Winning score minus this candidate's score (0 for the leader).
    score_delta: float
    verdicts: List[VerdictRecord] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "mapping": self.mapping,
            "score": self.score,
            "dop": self.dop,
            "score_delta": self.score_delta,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CandidateRecord":
        return cls(
            rank=int(data["rank"]),
            mapping=data["mapping"],
            score=float(data["score"]),
            dop=int(data["dop"]),
            score_delta=float(data["score_delta"]),
            verdicts=[
                VerdictRecord.from_dict(v) for v in data.get("verdicts", [])
            ],
        )


@dataclass
class KernelProvenance:
    """The full mapping rationale for one kernel."""

    index: int
    depth: int
    level_sizes: List[int]
    mapping: str
    score: Optional[float]
    max_score: float
    dop: Optional[int] = None
    #: :meth:`SearchResult.telemetry` of the search that decided, if any.
    search: Optional[Dict[str, Any]] = None
    #: Verdicts of the *chosen* (post-ControlDOP) mapping.
    verdicts: List[VerdictRecord] = field(default_factory=list)
    #: Ranked top-k candidates from the search space.
    candidates: List[CandidateRecord] = field(default_factory=list)
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "depth": self.depth,
            "level_sizes": list(self.level_sizes),
            "mapping": self.mapping,
            "score": self.score,
            "max_score": self.max_score,
            "dop": self.dop,
            "search": self.search,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "candidates": [c.to_dict() for c in self.candidates],
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KernelProvenance":
        return cls(
            index=int(data["index"]),
            depth=int(data["depth"]),
            level_sizes=[int(s) for s in data.get("level_sizes", [])],
            mapping=data["mapping"],
            score=data.get("score"),
            max_score=float(data.get("max_score", 0.0)),
            dop=data.get("dop"),
            search=data.get("search"),
            verdicts=[
                VerdictRecord.from_dict(v) for v in data.get("verdicts", [])
            ],
            candidates=[
                CandidateRecord.from_dict(c)
                for c in data.get("candidates", [])
            ],
            note=data.get("note", ""),
        )

    def render(self) -> str:
        lines = [
            f"## Kernel {self.index} (depth {self.depth}, "
            f"sizes {self.level_sizes})",
            f"winner: {self.mapping}",
        ]
        if self.score is not None:
            pct = 100.0 * self.score / self.max_score if self.max_score else 0.0
            lines.append(
                f"score: {self.score:.4g} of {self.max_score:.4g} "
                f"({pct:.0f}% of attainable weight)"
                + (f", dop {self.dop}" if self.dop is not None else "")
            )
        if self.note:
            lines.append(f"note: {self.note}")
        if self.search:
            pairs = ", ".join(
                f"{key}={value}" for key, value in self.search.items()
            )
            lines.append(f"search: {pairs}")
        if self.verdicts:
            lines.append("constraints under the winner:")
            for verdict in sorted(
                self.verdicts, key=lambda v: (-v.hard, -v.weight)
            ):
                lines.append("  " + verdict.render())
        if self.candidates:
            lines.append(f"top {len(self.candidates)} candidates:")
            for cand in self.candidates:
                lines.append(
                    f"  #{cand.rank} score {cand.score:.4g} "
                    f"(delta {cand.score_delta:.4g}) dop {cand.dop}  "
                    f"{cand.mapping}"
                )
                missed = [
                    v for v in cand.verdicts if not v.satisfied and not v.hard
                ]
                if missed:
                    lines.append(
                        "      sacrifices: "
                        + "; ".join(
                            f"{v.description} (w={v.weight:.3g})"
                            for v in missed
                        )
                    )
        return "\n".join(lines)


@dataclass
class CompileProvenance:
    """Provenance of one whole compile, serializable as a JSON artifact."""

    program: str
    device: str
    strategy: str
    sizes: Dict[str, int] = field(default_factory=dict)
    degradations: List[str] = field(default_factory=list)
    kernels: List[KernelProvenance] = field(default_factory=list)
    #: Content digest of the transformation recipe that built the plans
    #: (``None`` when no pipeline ran — fully degraded compiles).
    recipe_digest: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": PROVENANCE_VERSION,
            "program": self.program,
            "device": self.device,
            "strategy": self.strategy,
            "sizes": dict(self.sizes),
            "degradations": list(self.degradations),
            "kernels": [k.to_dict() for k in self.kernels],
            "recipe_digest": self.recipe_digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileProvenance":
        version = data.get("version")
        if version != PROVENANCE_VERSION:
            raise ReproError(
                f"provenance artifact version {version!r} is not supported "
                f"(expected {PROVENANCE_VERSION})"
            )
        return cls(
            program=data["program"],
            device=data.get("device", ""),
            strategy=data.get("strategy", ""),
            sizes={k: int(v) for k, v in (data.get("sizes") or {}).items()},
            degradations=list(data.get("degradations") or []),
            kernels=[
                KernelProvenance.from_dict(k) for k in data.get("kernels", [])
            ],
            recipe_digest=data.get("recipe_digest"),
        )

    def write(self, path: str) -> str:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path

    def render(self) -> str:
        lines = [
            f"# Mapping provenance: {self.program}",
            f"device: {self.device}   strategy: {self.strategy}",
        ]
        if self.sizes:
            bindings = ", ".join(
                f"{k}={v}" for k, v in sorted(self.sizes.items())
            )
            lines.append(f"sizes: {bindings}")
        if self.recipe_digest:
            lines.append(f"recipe: {self.recipe_digest}")
        for note in self.degradations:
            lines.append(f"degraded: {note}")
        for kernel in self.kernels:
            lines.append("")
            lines.append(kernel.render())
        return "\n".join(lines)


def load_provenance(path: str) -> CompileProvenance:
    with open(path) as handle:
        return CompileProvenance.from_dict(json.load(handle))


# -- construction ----------------------------------------------------------


def _verdicts(cset, mapping, sizes_t: Tuple[int, ...]) -> List[VerdictRecord]:
    return [
        VerdictRecord(
            description=c.description,
            hard=c.hard,
            scope=c.scope,
            satisfied=c.satisfied_by(mapping, sizes_t),
            weight=getattr(c, "weight", 0.0),
        )
        for c in cset.constraints
    ]


def _candidate_rank_key(scored):
    """Sort key matching the search's deterministic tie-break chain:
    score, then DOP, then lexicographically larger block sizes."""
    bsizes = tuple(lm.block_size for lm in scored.mapping.levels)
    return (-scored.score, -scored.dop, tuple(-b for b in bsizes))


def kernel_provenance(
    decision,
    index: int,
    device,
    strategy,
    top_k: int = 5,
) -> KernelProvenance:
    """Build the provenance record for one kernel decision."""
    from ..analysis.scoring import score_mapping

    ka = decision.analysis
    cset = ka.constraints
    sizes_t = tuple(ka.level_sizes())
    score = decision.score
    if score is None:
        score = score_mapping(decision.mapping, cset, sizes_t)

    record = KernelProvenance(
        index=index,
        depth=ka.depth,
        level_sizes=list(ka.level_sizes()),
        mapping=str(decision.mapping),
        score=score,
        max_score=cset.max_score(),
        dop=decision.mapping.dop(sizes_t),
        search=(
            decision.search.telemetry() if decision.search is not None
            else None
        ),
        verdicts=_verdicts(cset, decision.mapping, sizes_t),
    )

    if decision.search is not None and decision.search.degraded:
        record.note = (
            "search degraded to the conservative fallback mapping; "
            "candidate ranking unavailable "
            f"({decision.search.degraded_reason})"
        )
        return record
    if strategy != "multidim":
        record.note = (
            f"fixed strategy {strategy!r}: mapping chosen structurally, "
            "no candidate search ran"
        )
        return record

    try:
        full = ka.select_mapping(window=device.dop_window(), keep_all=True)
    except ReproError as exc:
        record.note = (
            f"candidate ranking unavailable "
            f"({type(exc).__name__}: {exc})"
        )
        return record
    ranked = sorted(full.all_scored, key=_candidate_rank_key)[:top_k]
    best = ranked[0].score if ranked else (score or 0.0)
    record.candidates = [
        CandidateRecord(
            rank=rank,
            mapping=str(sm.mapping),
            score=sm.score,
            dop=sm.dop,
            score_delta=best - sm.score,
            verdicts=_verdicts(cset, sm.mapping, sizes_t),
        )
        for rank, sm in enumerate(ranked, 1)
    ]
    return record


def build_provenance(compiled, top_k: int = 5) -> CompileProvenance:
    """Assemble the provenance record for a compiled program."""
    recipe_digest = None
    try:
        recipe = compiled.recipe()
    except Exception:
        recipe = None  # provenance is best-effort diagnostics
    if recipe is not None:
        recipe_digest = recipe.content_digest()
    return CompileProvenance(
        program=compiled.program.name,
        device=compiled.device.name,
        strategy=str(compiled.strategy),
        sizes=dict(compiled.size_hints),
        degradations=list(compiled.degradations),
        kernels=[
            kernel_provenance(
                decision, index, compiled.device, compiled.strategy,
                top_k=top_k,
            )
            for index, decision in enumerate(compiled.decisions)
        ],
        recipe_digest=recipe_digest,
    )
