"""Backend selection: which tracer/metrics implementation is active.

Observability is **off by default** and the disabled path is a no-op
backend (see :mod:`.tracer` / :mod:`.metrics`), so production compiles
pay nothing measurable (asserted by
``benchmarks/bench_observability_overhead.py``).

Enablement, in precedence order:

1. :func:`configure` / the :func:`capture` context manager (explicit API,
   used by the ``repro trace`` / ``repro stats`` commands and tests);
2. environment variables read once at import:
   ``REPRO_TRACE`` (tracing), ``REPRO_METRICS`` (metrics),
   ``REPRO_PROVENANCE`` (eager provenance on every compile).  Any value
   other than ``""``/``0``/``false``/``no``/``off`` counts as on.

Call sites fetch the active backend per invocation
(``get_tracer().span(...)``), so flipping the backends mid-process takes
effect immediately — no caching of stale handles.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .tracer import NULL_TRACER, NullTracer, Tracer

TracerLike = Union[Tracer, NullTracer]
RegistryLike = Union[MetricsRegistry, NullRegistry]


def _env_truthy(name: str) -> bool:
    value = os.environ.get(name, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


_LOCK = threading.Lock()
_TRACER: TracerLike = (
    Tracer() if _env_truthy("REPRO_TRACE") else NULL_TRACER
)
_METRICS: RegistryLike = (
    MetricsRegistry() if _env_truthy("REPRO_METRICS") else NULL_REGISTRY
)
_PROVENANCE: bool = _env_truthy("REPRO_PROVENANCE")


def get_tracer() -> TracerLike:
    """The active tracer backend (hot path: a module-global read)."""
    return _TRACER


def get_metrics() -> RegistryLike:
    """The active metrics backend (hot path: a module-global read)."""
    return _METRICS


def tracing_enabled() -> bool:
    return _TRACER.enabled


def metrics_enabled() -> bool:
    return _METRICS.enabled


def provenance_enabled() -> bool:
    """Should every compile eagerly attach its provenance record?"""
    return _PROVENANCE


def configure(
    tracing: Optional[bool] = None,
    metrics: Optional[bool] = None,
    provenance: Optional[bool] = None,
    detail: bool = False,
) -> None:
    """Install or remove backends.  ``None`` leaves a setting unchanged.

    Enabling tracing installs a *fresh* tracer (empty event list); use
    :func:`capture` when the previous backend must be restored.
    """
    global _TRACER, _METRICS, _PROVENANCE
    with _LOCK:
        if tracing is not None:
            _TRACER = Tracer(detail=detail) if tracing else NULL_TRACER
        if metrics is not None:
            _METRICS = MetricsRegistry() if metrics else NULL_REGISTRY
        if provenance is not None:
            _PROVENANCE = provenance


@dataclass
class Observation:
    """The live backends handed to a :func:`capture` block."""

    tracer: Tracer
    metrics: MetricsRegistry


@dataclass
class StageScope:
    """What :func:`instrumented_stage` hands to the stage body.

    ``span`` is the live tracer span (``scope.span.set(...)`` works as
    usual); ``fault`` is whatever
    :func:`repro.resilience.faults.maybe_inject` returned — ``None``
    almost always, or the data-shaped fault spec the stage must apply
    itself (memo corruption, cost poisoning).
    """

    span: object
    fault: object = None

    def set(self, **attrs: object) -> None:
        self.span.set(**attrs)


@contextmanager
def instrumented_stage(
    stage: str,
    span_name: Optional[str] = None,
    inject: bool = True,
    **attrs: object,
) -> Iterator[StageScope]:
    """One tracer span + one fault-injection point, the way every
    pipeline stage opens.

    Replaces the boilerplate each stage used to repeat::

        from ..observability import get_tracer
        from ..resilience.faults import maybe_inject
        with get_tracer().span("optimize", ...) as span:
            maybe_inject("optimizer")

    ``stage`` names the fault-injection point (one of
    :data:`repro.resilience.faults.STAGES`); ``span_name`` defaults to
    it.  ``inject=False`` keeps the span but skips the injection point
    (stages with no entry in the fault matrix).  ``maybe_inject`` is
    imported lazily so this module never pulls the resilience layer in
    at import time.
    """
    tracer = get_tracer()
    with tracer.span(span_name or stage, **attrs) as span:
        fault = None
        if inject:
            from ..resilience.faults import maybe_inject

            fault = maybe_inject(stage)
        yield StageScope(span=span, fault=fault)


@contextmanager
def capture(
    detail: bool = False, provenance: bool = True
) -> Iterator[Observation]:
    """Run a block with fresh tracing + metrics, restoring the previous
    backends afterwards (exception-safe).  The CLI commands and the
    integration tests are built on this."""
    global _TRACER, _METRICS, _PROVENANCE
    with _LOCK:
        prev = (_TRACER, _METRICS, _PROVENANCE)
        _TRACER = Tracer(detail=detail)
        _METRICS = MetricsRegistry()
        _PROVENANCE = provenance
        observation = Observation(tracer=_TRACER, metrics=_METRICS)
    try:
        yield observation
    finally:
        with _LOCK:
            _TRACER, _METRICS, _PROVENANCE = prev
