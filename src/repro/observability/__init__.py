"""Pipeline-wide observability: tracing, metrics, and mapping provenance.

Three instruments, one enablement story (:mod:`.state`):

* **tracer** (:mod:`.tracer`) — spans around every pipeline stage,
  exported as Chrome trace-event JSON (``repro trace <app>``, loadable in
  Perfetto);
* **metrics** (:mod:`.metrics`) — counters/gauges/histograms for cache
  behavior, search work, constraint classes, resilience activations,
  per-stage wall time, and cost-model component sums
  (``repro stats <app>``);
* **provenance** (:mod:`.provenance`) — per-compile "why this mapping
  won" records with ranked candidates and per-constraint verdicts
  (``repro explain <artifact>``), imported lazily to keep this package
  free of analysis-layer dependencies.

Disabled (the default), every instrumentation point hits a shared no-op
backend; see ``docs/observability.md`` for the design and the measured
overhead.
"""

from .aggregate import (  # noqa: F401
    histogram_quantile,
    merge_snapshots,
)
from .events import (  # noqa: F401
    EVENT_KINDS,
    EventLog,
    emit_event,
    get_event_log,
)
from .metrics import (  # noqa: F401
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .state import (  # noqa: F401
    Observation,
    StageScope,
    capture,
    configure,
    get_metrics,
    get_tracer,
    instrumented_stage,
    metrics_enabled,
    provenance_enabled,
    tracing_enabled,
)
from .stitch import (  # noqa: F401
    cross_process_links,
    make_fragment,
    stitch_fragments,
)
from .tracer import (  # noqa: F401
    STAGE_MS_BUCKETS,
    NullTracer,
    Tracer,
    is_valid_trace_id,
    new_span_id,
    new_trace_id,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "StageScope",
    "Tracer",
    "Observation",
    "DEFAULT_MS_BUCKETS",
    "STAGE_MS_BUCKETS",
    "capture",
    "configure",
    "cross_process_links",
    "emit_event",
    "get_event_log",
    "get_metrics",
    "get_tracer",
    "histogram_quantile",
    "instrumented_stage",
    "is_valid_trace_id",
    "make_fragment",
    "merge_snapshots",
    "metrics_enabled",
    "new_span_id",
    "new_trace_id",
    "provenance_enabled",
    "stitch_fragments",
    "tracing_enabled",
    "validate_chrome_trace",
]
