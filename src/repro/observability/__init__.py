"""Pipeline-wide observability: tracing, metrics, and mapping provenance.

Three instruments, one enablement story (:mod:`.state`):

* **tracer** (:mod:`.tracer`) — spans around every pipeline stage,
  exported as Chrome trace-event JSON (``repro trace <app>``, loadable in
  Perfetto);
* **metrics** (:mod:`.metrics`) — counters/gauges/histograms for cache
  behavior, search work, constraint classes, resilience activations,
  per-stage wall time, and cost-model component sums
  (``repro stats <app>``);
* **provenance** (:mod:`.provenance`) — per-compile "why this mapping
  won" records with ranked candidates and per-constraint verdicts
  (``repro explain <artifact>``), imported lazily to keep this package
  free of analysis-layer dependencies.

Disabled (the default), every instrumentation point hits a shared no-op
backend; see ``docs/observability.md`` for the design and the measured
overhead.
"""

from .metrics import (  # noqa: F401
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .state import (  # noqa: F401
    Observation,
    capture,
    configure,
    get_metrics,
    get_tracer,
    metrics_enabled,
    provenance_enabled,
    tracing_enabled,
)
from .tracer import (  # noqa: F401
    STAGE_MS_BUCKETS,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Tracer",
    "Observation",
    "DEFAULT_MS_BUCKETS",
    "STAGE_MS_BUCKETS",
    "capture",
    "configure",
    "get_metrics",
    "get_tracer",
    "metrics_enabled",
    "provenance_enabled",
    "tracing_enabled",
    "validate_chrome_trace",
]
