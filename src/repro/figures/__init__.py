"""Experiment harness regenerating every evaluation table and figure."""

from .registry import EXPERIMENTS  # noqa: F401
from .runner import main, run_all, run_experiment  # noqa: F401
from .tables import ExperimentResult, render_table  # noqa: F401
