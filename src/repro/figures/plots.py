"""Terminal bar charts for experiment results.

The paper presents its evaluation as bar charts; these render the same
series as Unicode horizontal bars so `python -m repro figures --plot`
shows shapes, not just numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .tables import ExperimentResult

_BAR = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = max(0.0, value) / scale * width
    full = int(cells)
    frac = int((cells - full) * 8)
    return _BAR * full + (_PARTIAL[frac].strip() or "")


def render_bars(
    result: ExperimentResult,
    value_columns: Sequence[str],
    label_columns: Optional[Sequence[str]] = None,
    width: int = 40,
    log_note: bool = True,
) -> str:
    """Render one bar per (row, value column), grouped by row."""
    if label_columns is None:
        label_columns = [
            c for c in result.columns
            if not _numeric_column(result, c)
        ]
    numeric = [
        c for c in value_columns if _numeric_column(result, c)
    ]
    if not numeric:
        return "(no numeric series to plot)"
    peak = max(
        float(row[c])
        for row in result.rows
        for c in numeric
        if isinstance(row.get(c), (int, float))
    )
    label_width = max(len(c) for c in numeric)
    lines = [result.title, "=" * len(result.title)]
    for row in result.rows:
        label = "  ".join(str(row.get(c, "")) for c in label_columns)
        lines.append(label)
        for column in numeric:
            value = row.get(column)
            if not isinstance(value, (int, float)):
                continue
            bar = _bar(float(value), peak, width)
            lines.append(
                f"  {column:<{label_width}} {float(value):8.2f} {bar}"
            )
    return "\n".join(lines)


def _numeric_column(result: ExperimentResult, column: str) -> bool:
    return any(
        isinstance(row.get(column), (int, float)) for row in result.rows
    )


#: Which series each experiment plots (normalized columns).
PLOT_SERIES: Dict[str, List[str]] = {
    "fig3": ["1d", "thread-block/thread", "warp-based"],
    "fig12": ["multidim", "1d"],
    "fig13": ["thread-block/thread", "warp-based"],
    "fig14": ["1d", "multidim"],
    "fig16": ["prealloc_only", "malloc"],
}


def render_experiment_bars(result: ExperimentResult, width: int = 40) -> str:
    """Plot an experiment using its registered series (tables otherwise)."""
    series = PLOT_SERIES.get(result.experiment_id)
    if series is None:
        return result.render()
    return render_bars(result, series, width=width)
