"""Experiment runner and EXPERIMENTS.md generation."""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Iterable, List, Optional

from ..gpusim.device import GpuDevice, default_device
from .registry import EXPERIMENTS
from .tables import ExperimentResult


def run_experiment(
    experiment_id: str, device: Optional[GpuDevice] = None
) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"fig3"``)."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return fn(device=device or default_device())


def run_all(device: Optional[GpuDevice] = None) -> List[ExperimentResult]:
    """Run every experiment in registry order."""
    return [run_experiment(eid, device) for eid in EXPERIMENTS]


def search_cache_summary() -> str:
    """One line on how much the experiment sweeps reused memoized searches.

    Figure sweeps re-analyze the same kernels across many shapes, so the
    hit rate here is the cross-sweep payoff of the search memo.
    """
    from ..analysis.cache import get_search_cache

    stats = get_search_cache().stats()
    return (
        f"search cache: {stats.hits} hits / {stats.misses} misses "
        f"({100.0 * stats.hit_rate:.0f}% hit rate, "
        f"{stats.size} entries)"
    )


#: Per-experiment commentary for EXPERIMENTS.md: what the paper reports and
#: how the reproduction compares.
_DISCUSSION = {
    "table1": (
        "Paper: the six supported parallel patterns with usage examples.  "
        "Reproduction: each pattern is constructed through the DSL, "
        "executed by the functional interpreter, and compiled to CUDA."
    ),
    "table2": (
        "Paper: example constraints in the Hard/Soft x Local/Global "
        "taxonomy.  Reproduction: each cell is populated with a "
        "constraint the analysis actually generates, plus the divergence "
        "family Section IV-C describes in prose."
    ),
    "fig3": (
        "Paper: no fixed strategy wins everywhere; differences up to 58x; "
        "MultiDim's absolute time is the same for every shape.  "
        "Reproduction: MultiDim flat within 5%; 1D collapses on the "
        "narrow-outer / strided shapes (10-25x vs the paper's up-to-58x "
        "band); fixed 2D strategies ~10x on sumCols (paper: up to 9.6x "
        "for uncoalesceable variants); thread-block/thread pays block "
        "overhead on the 64K-outer shape (2.0x vs paper's ~1.6x).  All "
        "winners/losers match."
    ),
    "fig7": (
        "Paper: prior strategies are fixed points of our parameter space, "
        "with DOP = I*min(J,1024) and I*min(J,32).  Reproduction: exact "
        "(the equivalence is checked programmatically)."
    ),
    "fig12": (
        "Paper: average 24% gap to manual on 7 of 8; MultiDim beats "
        "manual on Gaussian Elimination and BFS; manual wins 2.3x/4.6x on "
        "Pathfinder/LUD via fused shared-memory kernels; 1D up to 60.8x "
        "worse.  Reproduction: same winners everywhere; comparable apps "
        "within 20%; Pathfinder 2.1x and LUD 2.7x (paper 2.3x/4.6x); 1D "
        "collapse is 3-22x (the analytic model under-penalizes extreme "
        "underutilization relative to real hardware).  Note: our "
        "Pathfinder step has a single parallel level, so its 1D column "
        "equals MultiDim — the paper's 19.1x suggests their formulation "
        "exposed a second level."
    ),
    "fig13": (
        "Paper: (R) variants within 1.6x; (C) variants 1.5-9.6x slower "
        "for fixed strategies.  Reproduction: (R) within 1.1x, (C) "
        "3.3-8.6x.  One known divergence: the paper reports warp-based "
        "handling srad (C) at only 1.5x, which our model does not "
        "reproduce (we see the same uncoalesced penalty as "
        "thread-block/thread)."
    ),
    "fig14": (
        "Paper: QPSCD 4.38x over CPU / 8.95x over 1D; MSMBuilder 2.4x / "
        "8.7x; Naive Bayes 12.5x / 4.5x, and 15% better than CPU with "
        "transfer included.  Reproduction: all orderings hold (MultiDim < "
        "CPU < 1D for QPSCD; MultiDim beats 1D 6-10x; transfer narrows "
        "but keeps the Naive Bayes win).  Absolute CPU ratios depend on "
        "the roofline anchors documented in the registry."
    ),
    "fig16": (
        "Paper: malloc costs 16.2x (rows) / 20.8x (cols); fixed layout "
        "costs cols another 5.3x; both kernels equal after full "
        "optimization.  Reproduction: 20x/26x and 7.1x — same structure, "
        "same layout-insensitivity of the row variant."
    ),
    "fig17": (
        "Paper: a high-score region A with the best performance contains "
        "the selected mapping; warp-based sits in poor-performance region "
        "B; false negatives (region C) exist because intrinsic weights "
        "are fixed.  Reproduction: selected mapping within 1.2x of the "
        "best candidate; warp-based ~6x; region C present."
    ),
    "passorder": (
        "Beyond the paper: with the optimizations reified as passes "
        "(Section V as a transformation library), the pipeline order "
        "itself becomes searchable.  The sweep quantifies the ordering "
        "dependency (prealloc without layout forfeits the Fig 16 column "
        "win, a 26x swing), shows the shared-memory stage costing a "
        "fraction of a percent more than it saves on the sparse nests "
        "(qpscd, pagerank), and finds one regime where a non-default "
        "pipeline clearly wins: on tiny nests whose "
        "DOP sits below the device window, scheduling control_dop as a "
        "compile-time pass (it is launch-time-only in production) "
        "recovers occupancy via Split(k) and beats the default by ~6%."
    ),
}


def _experiment_section(eid: str) -> List[str]:
    """The EXPERIMENTS.md lines for one experiment, freshly measured."""
    result = run_experiment(eid)
    lines = [f"## {result.title}", "", "```"]
    lines.append(result.render().split("\n", 2)[2])
    lines.append("```")
    lines.append("")
    if eid in _DISCUSSION:
        lines.append(_DISCUSSION[eid])
        lines.append("")
    return lines


def write_experiments_md(
    path: str = "EXPERIMENTS.md",
    checkpoint_path: Optional[str] = None,
    retries: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Regenerate EXPERIMENTS.md with current measured values.

    With ``checkpoint_path``, every finished experiment's section is
    persisted so an interrupted sweep resumes at the first unfinished
    experiment.  ``retries`` re-runs an experiment that raises a
    :class:`~repro.errors.ReproError` with jittered backoff before
    letting the error escape (the file is only written once every
    section succeeded — a partial sweep never overwrites a complete
    EXPERIMENTS.md).
    """
    from ..resilience.retry import Checkpoint, retry_with_backoff

    checkpoint: Optional[Checkpoint] = None
    sections: Dict[str, List[str]] = {}
    if checkpoint_path is not None:
        checkpoint = Checkpoint(checkpoint_path, key={
            "campaign": "experiments",
            "experiments": list(EXPERIMENTS),
        })
        state = checkpoint.load()
        if state is not None:
            saved = state.get("sections")
            if isinstance(saved, dict):
                sections = {
                    eid: list(body)
                    for eid, body in saved.items()
                    if eid in EXPERIMENTS and isinstance(body, list)
                }
                if sections and progress:
                    progress(
                        f"resumed with {len(sections)} finished "
                        f"experiment(s): {', '.join(sorted(sections))}"
                    )

    for index, eid in enumerate(EXPERIMENTS):
        if eid in sections:
            continue
        if retries > 0:
            sections[eid] = retry_with_backoff(
                lambda eid=eid: _experiment_section(eid),
                retries=retries,
                seed=index,
                sleep=sleep,
            )
        else:
            sections[eid] = _experiment_section(eid)
        if progress:
            progress(f"measured {eid}")
        if checkpoint is not None:
            checkpoint.save({"sections": sections})

    lines = [
        "# EXPERIMENTS — paper vs reproduction",
        "",
        "Regenerate this file with "
        "`python -c \"from repro.figures.runner import write_experiments_md;"
        " write_experiments_md()\"`",
        "or inspect any single experiment with "
        "`python -m repro.figures fig3` etc.",
        "",
        "All GPU numbers come from the analytic Tesla K20c model "
        "(`repro.gpusim`); see DESIGN.md for the substitution rationale. "
        "`paper_*` columns are the paper's reported values (approximate "
        "where only a bar chart reports them).",
        "",
    ]
    for eid in EXPERIMENTS:
        lines.extend(sections[eid])
    lines.extend(_DIFFTEST_EPILOGUE)
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
    if checkpoint is not None:
        checkpoint.clear()


#: Static trailer: the differential-testing campaign is not a paper figure,
#: but it is the evidence that every number above is computed by a compiler
#: whose strategies agree with the reference interpreter.
_DIFFTEST_EPILOGUE = [
    "## Differential testing",
    "",
    "Every figure above relies on the compiler producing the same answer",
    "under every mapping strategy.  That claim is checked continuously by",
    "the differential-execution harness (`repro difftest`): a seeded",
    "generator draws programs spanning all six pattern kinds (map, zipWith,",
    "foreach, filter, reduce, groupBy) with nesting to depth 4,",
    "conditionals, neighbor accesses, and dynamic inner allocations, then",
    "an oracle runs each program through the reference interpreter (loop",
    "and vectorized paths) and through every mapping strategy — multidim,",
    "1d, thread-block/thread, warp-based, and explicit Split(k)-forcing",
    "mappings — with optimizations on and off, asserting identical",
    "results, hard-constraint satisfaction, and finite positive cost.",
    "Failures are shrunk to minimal replayable reproducers.",
    "",
    "```",
    "python -m repro difftest --seed 0 --budget 200   # the CI gate",
    "python -m repro difftest --replay reproducer-000.json",
    "```",
    "",
    "See docs/differential_testing.md for the full design.",
    "",
]


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI: ``python -m repro.figures [fig3 fig12 ...]`` (default: all)."""
    args = list(argv if argv is not None else sys.argv[1:])
    ids = args or list(EXPERIMENTS)
    for eid in ids:
        result = run_experiment(eid)
        print(result.render())
        print()
    print(search_cache_summary())
    return 0
