"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """The rows regenerating one of the paper's tables or figures."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def column_values(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows, self.notes)

    def to_csv(self) -> str:
        """Render the rows as CSV (header row first)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=self.columns, extrasaction="ignore"
        )
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv())


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Dict[str, Any]],
    notes: str = "",
) -> str:
    """Render rows as an aligned ASCII table."""
    table = [[c for c in columns]]
    for row in rows:
        table.append([_format(row.get(c, "")) for c in columns])
    widths = [
        max(len(line[i]) for line in table) for i in range(len(columns))
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(c.ljust(w) for c, w in zip(table[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in table[1:]:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)
