#!/usr/bin/env python
"""Beyond three dimensions: a four-level nest (paper footnote 3).

Batched trajectory clustering: for every batch, frame, and cluster, a
squared-distance reduction over coordinates — four nested patterns.  The
paper notes its logical dimensions are not limited to the three physical
thread-block axes; this reproduction linearizes extra dimensions onto the
physical z axis with div/mod decomposition, visible in the generated CUDA.

Run:  python examples/batched_clustering.py
"""

import numpy as np

from repro import GpuSession
from repro.ir import Builder, F64
from repro.ir.builder import range_map


def build_batched_clustering():
    b = Builder("batchedClustering")
    batches = b.size("B")
    frames = b.size("P")
    clusters = b.size("K")
    b.size("D")
    x = b.matrix("X", F64, rows="P", cols="D")
    cent = b.matrix("Cent", F64, rows="K", cols="D")
    scale = b.vector("scale", F64, length="B")
    out = range_map(
        batches,
        lambda bi: range_map(
            frames,
            lambda pi: range_map(
                clusters,
                lambda ki: x.row(pi).zip_with(
                    cent.row(ki), lambda a, c: (a - c) * (a - c)
                ).reduce("+") * scale[bi],
                index_name="ki",
            ),
            index_name="pi",
        ),
        index_name="bi",
    )
    return b.build(out)


def main() -> None:
    program = build_batched_clustering()
    session = GpuSession()
    compiled = session.compile(program, B=8, P=256, K=100, D=100)

    print("=== four-level mapping ===")
    print(compiled.describe())
    mapping = compiled.mappings()[0]
    print(f"parallel logical dimensions: "
          f"{[str(mapping.level(i).dim) for i in mapping.parallel_levels()]}")
    print()

    print("=== generated index computations (note threadIdx.z div/mod) ===")
    for line in compiled.cuda_source.split("\n"):
        if "threadIdx.z" in line and "=" in line:
            print(" ", line.strip())
    print()

    rng = np.random.default_rng(5)
    B, P, K, D = 3, 12, 5, 8
    X = rng.random((P, D))
    cent = rng.random((K, D))
    scale = rng.random(B)
    out = compiled.run(X=X, Cent=cent, scale=scale, B=B, P=P, K=K, D=D)
    stacked = np.stack([np.stack(list(level)) for level in out])

    diff = X[:, None, :] - cent[None, :, :]
    expected = (diff * diff).sum(axis=2)[None] * scale[:, None, None]
    assert np.allclose(stacked, expected)
    print("functional check: OK (matches NumPy)")
    print()

    assignments = stacked.argmin(axis=2)
    print(f"cluster assignments, batch 0: {assignments[0]}")
    print(f"simulated K20c time at (8, 256, 100, 100): "
          f"{compiled.estimate_time_us():.0f} us")

    oned = GpuSession(strategy="1d").compile(
        program, B=8, P=256, K=100, D=100
    )
    print(f"1D mapping at the same sizes:              "
          f"{oned.estimate_time_us():.0f} us "
          "(only 8 threads — one per batch!)")


if __name__ == "__main__":
    main()
