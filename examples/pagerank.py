#!/usr/bin/env python
"""Graph analytics: PageRank over a CSR graph (the paper's Figure 5).

Demonstrates nested patterns whose inner domain size is *dynamic* (each
node's neighbor count): the analysis forces Span(all) on the inner level,
recovering the warp/block-per-node mapping family of Hong et al. — one of
the strategies the paper shows its parameter space subsumes.

Runs power iterations to convergence with the functional executor and
reports the simulated GPU time per iteration.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro import GpuSession
from repro.apps.pagerank import PAGERANK, build_pagerank


def main() -> None:
    rng = np.random.default_rng(7)
    n_nodes = 400
    inputs = PAGERANK.workload(rng, N=n_nodes, avg_degree=8)
    program = build_pagerank()

    session = GpuSession()
    compiled = session.compile(program, N=65536, E=65536 * 16)

    print("=== mapping for the graph nest ===")
    print(compiled.describe())
    mapping = compiled.mappings()[0]
    print(
        f"inner level span: {mapping.level(1).span} "
        "(forced: neighbor counts are unknown at launch)"
    )
    print()

    # Power iteration until the ranks stabilize.
    ranks = inputs["prev"]
    for iteration in range(100):
        new_ranks = compiled.run(
            graph=inputs["graph"],
            prev=ranks,
            N=inputs["N"],
            E=inputs["E"],
        )
        delta = float(np.abs(new_ranks - ranks).max())
        ranks = new_ranks
        if delta < 1e-10:
            break
    print(f"converged after {iteration + 1} iterations (delta={delta:.2e})")

    top = np.argsort(ranks)[::-1][:5]
    print("top-5 nodes by rank:")
    for node in top:
        print(f"  node {node:4d}  rank {ranks[node]:.6f}")
    print()

    per_iter_us = compiled.estimate_time_us()
    print(
        f"simulated K20c time per iteration at 65K nodes / 1M edges: "
        f"{per_iter_us:.0f} us"
    )


if __name__ == "__main__":
    main()
