#!/usr/bin/env python
"""HPC scenario: iterative thermal simulation (Rodinia Hotspot).

A 2D stencil applied repeatedly to a chip temperature grid.  Shows:

* multi-step simulation driven through the functional executor;
* how the *same physical grid* traversed row-major vs column-major gets
  different dimension assignments from the analysis (Figure 13's point) —
  and why fixed strategies lose on the column-major variant.

Run:  python examples/thermal_simulation.py
"""

import numpy as np

from repro import GpuSession
from repro.apps.hotspot import HOTSPOT, build_hotspot


def main() -> None:
    rng = np.random.default_rng(3)
    size = 64
    inputs = HOTSPOT.workload(rng, R=size, C=size)

    program = build_hotspot("R")
    session = GpuSession()
    compiled = session.compile(program, R=2048, C=2048)

    # Simulate 50 timesteps.
    temp = inputs["temp"]
    for _ in range(50):
        temp = compiled.run(
            temp=temp, power=inputs["power"], R=size, C=size
        )
    print("=== thermal simulation (50 steps, 64x64 grid) ===")
    print(f"initial temp range: {inputs['temp'].min():.2f}"
          f" .. {inputs['temp'].max():.2f}")
    print(f"final temp range:   {temp.min():.2f} .. {temp.max():.2f}")
    print()

    # Mapping comparison: traversal order should not matter to MultiDim.
    print("=== traversal order vs strategy (2048x2048, simulated us) ===")
    print(f"{'strategy':>24}{'row-major (R)':>16}{'col-major (C)':>16}")
    for strategy in ("multidim", "thread-block/thread", "warp-based"):
        cells = [strategy.rjust(24)]
        for order in ("R", "C"):
            variant = GpuSession(strategy=strategy).compile(
                build_hotspot(order), R=2048, C=2048
            )
            cells.append(f"{variant.estimate_time_us():16.0f}")
        print("".join(cells))
    print()
    print("MultiDim swaps the dimension assignment for the (C) variant;")
    print("the fixed strategies cannot, and pay for uncoalesced accesses.")

    # Show the two different mappings it chose.
    for order in ("R", "C"):
        variant = GpuSession().compile(build_hotspot(order), R=2048, C=2048)
        print(f"order {order}: {variant.mappings()[0]}")


if __name__ == "__main__":
    main()
