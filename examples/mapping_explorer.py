#!/usr/bin/env python
"""Compiler-engineer scenario: explore the mapping space of a kernel.

Reproduces the Figure 17 methodology interactively: enumerate every
candidate mapping for a program, score each against the constraint set,
time each with the simulator, and show where the constraint-driven choice
lands — plus how the dynamic launch adjustment retunes block sizes when
the runtime shape is skewed.

Run:  python examples/mapping_explorer.py
"""

from repro.analysis import analyze_program
from repro.apps.mandelbrot import build_mandelbrot
from repro.gpusim import TESLA_K20C, estimate_kernel_cost
from repro.runtime import adjust_at_launch


def main() -> None:
    params = {"H": 50, "W": 20000}  # the paper's skewed output
    program = build_mandelbrot()
    analysis = analyze_program(program, **params)
    kernel = analysis.kernel(0)

    print("=== constraint set ===")
    print(kernel.constraints.describe())
    print()

    result = kernel.select_mapping(
        window=TESLA_K20C.dop_window(), keep_all=True
    )
    print(f"candidates: {result.candidates_total} "
          f"({result.candidates_feasible} feasible)")
    print(f"selected:   {result.mapping}  score={result.score:.3g}")
    print()

    # Score vs simulated time for the whole space.
    timed = []
    for scored in result.all_scored:
        cost = estimate_kernel_cost(
            kernel, scored.mapping, TESLA_K20C, analysis.env
        )
        timed.append((scored, cost.total_us))
    best_time = min(t for _, t in timed)
    max_score = max(s.score for s, _ in timed)

    print("=== best 10 mappings by simulated time ===")
    print(f"{'mapping':<48}{'score':>8}{'time':>9}")
    for scored, t in sorted(timed, key=lambda st: st[1])[:10]:
        print(
            f"{str(scored.mapping):<48}"
            f"{scored.score / max_score:8.2f}{t / best_time:8.2f}x"
        )
    print()

    chosen_time = next(
        t for s, t in timed if s.mapping == result.mapping
    ) if any(s.mapping == result.mapping for s, _ in timed) else (
        estimate_kernel_cost(
            kernel, result.mapping, TESLA_K20C, analysis.env
        ).total_us
    )
    print(f"selected mapping performs at {chosen_time / best_time:.2f}x of "
          "the best candidate (region A of Figure 17)")

    # False negatives (region C): good time, low score.
    false_neg = [
        (s, t)
        for s, t in timed
        if t < 1.5 * best_time and s.score < 0.5 * max_score
    ]
    print(f"false negatives (fast but low-scored): {len(false_neg)} "
          "candidates — the paper's region C")
    print()

    # Dynamic launch adjustment (Section IV-D).
    static = result.mapping
    for runtime_shape in ((50, 20000), (4096, 4096), (20000, 50)):
        adjusted = adjust_at_launch(
            static, kernel.constraints, list(runtime_shape),
            TESLA_K20C.dop_window(),
        )
        print(f"runtime {str(runtime_shape):>14}: {adjusted}")


if __name__ == "__main__":
    main()
