#!/usr/bin/env python
"""Machine learning scenario: Naive Bayes spam training (Section VI-E).

The training program aggregates the same document-term matrix two ways —
words per document (row-wise) and label-weighted counts per word
(column-wise).  A 1D mapping can only coalesce one of the two kernels; the
analysis assigns each kernel its own dimension order.

Trains the classifier with the functional executor, evaluates accuracy on
held-out documents, and compares simulated GPU strategies including the
host-to-device transfer cost.

Run:  python examples/spam_classifier.py
"""

import numpy as np

from repro import GpuSession
from repro.apps.naive_bayes import (
    NAIVE_BAYES,
    build_naive_bayes,
    build_spam_counts,
    build_words_per_doc,
    input_bytes,
)


def train(m, labels):
    """Train per-word spam log-odds with the pattern kernels."""
    docs, words = m.shape
    session = GpuSession()
    wpd = session.compile(build_words_per_doc(), DOCS=docs, WORDS=words)
    spam = session.compile(build_spam_counts(), DOCS=docs, WORDS=words)

    spam_counts = spam.run(m=m, labels=labels, DOCS=docs, WORDS=words)
    ham_counts = spam.run(m=m, labels=1.0 - labels, DOCS=docs, WORDS=words)
    _ = wpd.run(m=m, DOCS=docs, WORDS=words)  # per-doc normalizer

    p_spam = labels.mean()
    spam_lik = (spam_counts + 1.0) / (spam_counts.sum() + words)
    ham_lik = (ham_counts + 1.0) / (ham_counts.sum() + words)
    return np.log(spam_lik / ham_lik), np.log(p_spam / (1 - p_spam))


def main() -> None:
    rng = np.random.default_rng(11)
    docs, words = 2000, 500

    # Synthetic corpus: spam documents draw from a shifted distribution.
    labels = (rng.random(docs) < 0.4).astype(np.float64)
    base = rng.random(words)
    spam_shift = rng.random(words) * (rng.random(words) < 0.1)
    rates = np.where(labels[:, None] == 1, base + 4 * spam_shift, base)
    m = rng.poisson(rates * 0.6).astype(np.float64)

    split = docs // 2
    weights, bias = train(m[:split], labels[:split])

    scores = m[split:] @ weights + bias
    predictions = (scores > 0).astype(np.float64)
    accuracy = (predictions == labels[split:]).mean()
    print("=== naive bayes spam classifier ===")
    print(f"train docs: {split}, test docs: {docs - split}, "
          f"vocabulary: {words}")
    print(f"held-out accuracy: {accuracy:.1%}")
    print()

    # Performance story (Figure 14): per-kernel dimension assignment.
    program = build_naive_bayes()
    params = dict(NAIVE_BAYES.default_params)
    compiled = GpuSession().compile(program, **params)
    print("=== per-kernel mappings (DOCS=16K, WORDS=8K) ===")
    print(compiled.describe())
    print()

    print("=== simulated training time (ms) ===")
    for strategy in ("multidim", "1d"):
        c = GpuSession(strategy=strategy).compile(program, **params)
        kernels_only = c.estimate_time_us() / 1000
        with_xfer = c.estimate_cost(
            include_transfer=True, input_bytes=input_bytes(**params)
        ).total_us / 1000
        print(f"{strategy:>10}: kernels {kernels_only:8.2f}"
              f"   with transfer {with_xfer:8.2f}")
    print()
    print("1D coalesces only one of the two kernels; MultiDim gets both.")


if __name__ == "__main__":
    main()
