#!/usr/bin/env python
"""Quickstart: write a nested pattern, let the analysis map it to a GPU.

Builds the paper's running example (sumRows: a Map over rows with a nested
Reduce), compiles it with the locality-aware mapping analysis, runs it
functionally, and prints the chosen mapping, the generated CUDA, and
simulated execution times across matrix shapes and strategies.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Builder, F64, GpuSession


def main() -> None:
    # 1. Write the program with the pattern DSL (Section III).
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    program = b.build(m.map_rows(lambda row: row.reduce("+")))

    # 2. Compile: analysis, mapping search, optimizations, CUDA codegen.
    session = GpuSession()  # Tesla K20c, MultiDim strategy
    compiled = session.compile(program, R=1024, C=65536)

    print("=== chosen mapping ===")
    print(compiled.describe())
    print()

    # 3. Execute functionally (the correctness oracle).
    data = np.random.default_rng(0).random((512, 256))
    result = compiled.run(m=data, R=512, C=256)
    assert np.allclose(result, data.sum(axis=1))
    print("functional check: OK (matches NumPy row sums)")
    print()

    # 4. Inspect the generated CUDA (Figure 9's template).
    print("=== generated CUDA ===")
    print(compiled.cuda_source)

    # 5. Estimate execution times across shapes and strategies (Figure 3).
    print("=== simulated K20c times (ms), 64M elements ===")
    shapes = [(65536, 1024), (8192, 8192), (1024, 65536)]
    strategies = ["multidim", "1d", "thread-block/thread", "warp-based"]
    header = f"{'shape':>12}" + "".join(f"{s:>22}" for s in strategies)
    print(header)
    for rows, cols in shapes:
        cells = [f"[{rows // 1024}K,{cols // 1024}K]".rjust(12)]
        for strategy in strategies:
            other = GpuSession(strategy=strategy).compile(
                program, R=rows, C=cols
            )
            cells.append(f"{other.estimate_time_us() / 1000:22.2f}")
        print("".join(cells))
    print()
    print("MultiDim stays flat; fixed strategies degrade on skewed shapes.")


if __name__ == "__main__":
    main()
