"""Benchmark-suite configuration.

Each ``bench_figXX`` module regenerates one of the paper's tables/figures
through the experiment harness, asserts its qualitative claims, and prints
the rows (run pytest with ``-s`` to see them).  ``pytest-benchmark``
records the wall-clock cost of regenerating each experiment.
"""

import pytest


def run_and_render(benchmark, experiment_id):
    """Benchmark one experiment and return its result table."""
    from repro.figures import run_experiment

    result = benchmark(run_experiment, experiment_id)
    print()
    print(result.render())
    return result


@pytest.fixture
def experiment(benchmark):
    def runner(experiment_id):
        return run_and_render(benchmark, experiment_id)

    return runner
