"""Component micro-benchmarks: compiler-stage throughput.

The paper notes the brute-force search takes "less than a few seconds" for
1-3 level nests; these benchmarks keep the reproduction honest about its
own compile-time costs.
"""

import numpy as np

from repro.analysis import analyze_program
from repro.gpusim import TESLA_K20C, estimate_kernel_cost
from repro.interp import run_program


def test_bench_search_two_levels(benchmark):
    """Algorithm-1 search over a two-level nest (sub-second per paper)."""
    from _progs import make_sum_rows

    program = make_sum_rows()
    pa = analyze_program(program, R=8192, C=8192)
    ka = pa.kernel(0)

    result = benchmark(ka.select_mapping)
    assert result.score > 0


def test_bench_search_three_levels(benchmark):
    """Search over a three-level nest (larger candidate space)."""
    from repro.apps.msmbuilder import build_msmbuilder

    pa = analyze_program(build_msmbuilder(), P=2048, K=100, D=100)
    ka = pa.kernel(0)

    result = benchmark(ka.select_mapping)
    assert len(result.mapping.parallel_levels()) == 3


def test_bench_program_analysis(benchmark):
    """Full per-kernel analysis (nest + accesses + constraints)."""
    from repro.apps.pagerank import build_pagerank

    program = build_pagerank()
    pa = benchmark(analyze_program, program, N=65536, E=65536 * 16)
    assert len(pa) == 1


def test_bench_cost_model(benchmark):
    """One cost-model evaluation (used thousands of times in Fig 17)."""
    from _progs import make_sum_rows

    program = make_sum_rows()
    pa = analyze_program(program, R=8192, C=8192)
    ka = pa.kernel(0)
    mapping = ka.select_mapping().mapping

    cost = benchmark(
        estimate_kernel_cost, ka, mapping, TESLA_K20C, pa.env
    )
    assert cost.total_us > 0


def test_bench_codegen(benchmark):
    """CUDA generation for a two-kernel program."""
    from repro.codegen import compile_program
    from repro.apps.gaussian import build_gaussian

    program = build_gaussian("R")
    module = benchmark(
        compile_program, program, "multidim", N=2048, T=0
    )
    assert len(module.kernels) == 2


def test_bench_interpreter_vectorized(benchmark):
    """Functional executor throughput on a vectorizable nest."""
    from _progs import make_sum_rows

    program = make_sum_rows()
    data = np.random.default_rng(0).random((256, 4096))

    out = benchmark(run_program, program, m=data, R=256, C=4096)
    assert np.allclose(out, data.sum(axis=1))
