"""Tables I and II: live regeneration of the paper's taxonomy tables.

Table I exercises every supported pattern through the DSL, interpreter,
and CUDA generator; Table II reproduces the constraint taxonomy from
constraints the analysis actually generates.
"""


def test_table1(experiment):
    result = experiment("table1")
    assert len(result.rows) == 6
    assert all(r["cuda"] == "ok" for r in result.rows)


def test_table2(experiment):
    result = experiment("table2")
    cells = {(r["weight"], r["scope"]) for r in result.rows}
    assert ("Hard", "Local") in cells and ("Soft", "Global") in cells
