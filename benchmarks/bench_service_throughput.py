"""Compile-service throughput benchmark: the cache layers must pay off.

Three claims, each measured and asserted:

* **warm vs cold** — a warm-cache request (artifact-store hit) completes
  at least 10x faster than the cold request that populated it;
* **single-flight** — 8 concurrent identical requests collapse into one
  pipeline execution (7 coalesce onto the in-flight miss);
* **restart survival** — a second server *process* sharing the cache
  directory serves the same request as a hit without recompiling.

The restart phase runs two sequential ``python -m repro serve``
subprocesses against one cache dir and goes through the real HTTP
client, so it exercises the deployment shape end to end; the other
phases run in-process to keep the numbers about the service, not the
socket.

Rows are written to ``BENCH_service_throughput.json`` at the repo root
(same one-row-per-measurement layout as the other ``BENCH_*``
artifacts).  Run under pytest
(``pytest benchmarks/bench_service_throughput.py -s``) or directly
(``PYTHONPATH=src python benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import clear_caches
from repro.service import (
    CompileRequest,
    CompileService,
    ServiceClient,
    ServiceConfig,
)

_ROOT = Path(__file__).resolve().parents[1]
_OUT = _ROOT / "BENCH_service_throughput.json"

#: The acceptance bar: a store hit is at least this much faster than the
#: pipeline run that populated it.
MIN_WARM_SPEEDUP = 10.0

#: Concurrent identical requests that must collapse into one execution.
FANOUT = 8

_REQUEST = dict(app="sumRows", sizes={"R": 512, "C": 512})


def request() -> CompileRequest:
    return CompileRequest(app=_REQUEST["app"], sizes=dict(_REQUEST["sizes"]))


def bench_warm_vs_cold(cache_dir: str) -> Dict:
    clear_caches()
    service = CompileService(ServiceConfig(workers=2, cache_dir=cache_dir))
    try:
        cold = service.compile(request())
        assert cold.status == "miss"
        warm_ms = []
        for _ in range(20):
            outcome = service.compile(request())
            assert outcome.status == "hit"
            warm_ms.append(outcome.latency_ms)
        warm_ms.sort()
        warm_p50 = warm_ms[len(warm_ms) // 2]
        return {
            "phase": "warm-vs-cold",
            "cold_ms": cold.latency_ms,
            "warm_p50_ms": warm_p50,
            "warm_max_ms": warm_ms[-1],
            "speedup": cold.latency_ms / warm_p50,
            "floor": MIN_WARM_SPEEDUP,
        }
    finally:
        service.close()


def bench_single_flight(cache_dir: str) -> Dict:
    clear_caches()
    gate = threading.Event()

    def gated(req, digest):
        # Hold the (real) pipeline until every request has been
        # admitted, so "concurrent" does not depend on scheduler luck.
        gate.wait(timeout=60)
        return service._default_compile(req, digest)

    service = CompileService(
        ServiceConfig(workers=4, cache_dir=cache_dir), compile_fn=gated
    )
    try:
        tickets = [service.submit(request()) for _ in range(FANOUT)]
        roles = [t.role for t in tickets]
        gate.set()
        outcomes = [t.result(timeout=120) for t in tickets]
        assert all(o.ok for o in outcomes)
        return {
            "phase": "single-flight",
            "submitted": FANOUT,
            "executions": service.executions,
            "misses": roles.count("miss"),
            "coalesced": roles.count("coalesced"),
        }
    finally:
        gate.set()
        service.close()


def _serve_subprocess(cache_dir: str, log_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_ROOT / "src")
    log_fh = open(log_path, "w")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2", "--cache-dir", cache_dir,
        ],
        stdout=log_fh,
        stderr=subprocess.STDOUT,
        env=env,
    )


def _wait_for_url(log_path: Path, proc: subprocess.Popen) -> str:
    deadline = time.time() + 60
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early:\n{log_path.read_text()}"
            )
        text = log_path.read_text() if log_path.exists() else ""
        if "listening on " in text:
            return text.split("listening on ")[1].split()[0]
        time.sleep(0.2)
    raise RuntimeError(f"server never came up:\n{log_path.read_text()}")


def _stop(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def bench_restart_survival(cache_dir: str, scratch: Path) -> Dict:
    row: Dict = {"phase": "restart-survival"}
    first = _serve_subprocess(cache_dir, scratch / "serve-1.log")
    try:
        url = _wait_for_url(scratch / "serve-1.log", first)
        client = ServiceClient(url)
        cold = client.compile(request())
        row["first_process_status"] = cold.status
        row["cold_ms"] = cold.latency_ms
    finally:
        _stop(first)

    second = _serve_subprocess(cache_dir, scratch / "serve-2.log")
    try:
        url = _wait_for_url(scratch / "serve-2.log", second)
        client = ServiceClient(url)
        warm = client.compile(request())
        row["second_process_status"] = warm.status
        row["warm_ms"] = warm.latency_ms
        stats = client.stats()["service"]
        row["second_process_memo_restored"] = stats["memo_restored"]
    finally:
        _stop(second)
    return row


def run_benchmark() -> List[Dict]:
    rows: List[Dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        scratch_path = Path(scratch)
        rows.append(bench_warm_vs_cold(str(scratch_path / "cache-a")))
        rows.append(bench_single_flight(str(scratch_path / "cache-b")))
        rows.append(
            bench_restart_survival(
                str(scratch_path / "cache-c"), scratch_path
            )
        )
    return rows


def _write(rows: List[Dict]) -> None:
    _OUT.write_text(json.dumps(dict(rows=rows), indent=2) + "\n")


def test_bench_service_throughput():
    rows = run_benchmark()
    _write(rows)
    by_phase = {r["phase"]: r for r in rows}

    warm = by_phase["warm-vs-cold"]
    print()
    print(
        f"cold {warm['cold_ms']:.2f} ms -> warm p50 "
        f"{warm['warm_p50_ms']:.3f} ms ({warm['speedup']:.1f}x, "
        f"floor {MIN_WARM_SPEEDUP:.0f}x)"
    )
    flight = by_phase["single-flight"]
    print(
        f"single-flight: {flight['submitted']} identical requests -> "
        f"{flight['executions']} execution(s), "
        f"{flight['coalesced']} coalesced"
    )
    restart = by_phase["restart-survival"]
    print(
        f"restart: process 1 {restart['first_process_status']} "
        f"({restart['cold_ms']:.2f} ms), process 2 "
        f"{restart['second_process_status']} ({restart['warm_ms']:.2f} ms)"
    )

    assert warm["speedup"] >= MIN_WARM_SPEEDUP
    assert flight["executions"] == 1
    assert flight["misses"] == 1
    assert flight["coalesced"] == FANOUT - 1
    assert restart["first_process_status"] == "miss"
    assert restart["second_process_status"] == "hit"


if __name__ == "__main__":
    test_bench_service_throughput()
    print(f"wrote {_OUT}")
