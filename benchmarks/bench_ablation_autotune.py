"""Ablation: constraint-score selection vs cost-model auto-tuning.

The paper's future-work direction: its fixed intrinsic weights cause
Figure 17's false negatives; an analytical performance model could close
the gap.  This ablation quantifies what the cheap score leaves on the
table by auto-tuning every kernel against the full simulator and comparing
to the Algorithm-1 choice.
"""

import pytest

from repro.analysis import analyze_program, autotune_mapping
from repro.gpusim import TESLA_K20C, decide_mapping, estimate_kernel_cost

WORKLOADS = [
    ("sumRows", lambda: _sum_rows(), {"R": 8192, "C": 8192}),
    ("sumCols", lambda: _sum_cols(), {"R": 65536, "C": 1024}),
    ("mandelbrot-skew", lambda: _mandelbrot(), {"H": 50, "W": 20000}),
]


def _sum_rows():
    from _progs import make_sum_rows

    return make_sum_rows()


def _sum_cols():
    from repro.apps.sums import build_sum_cols

    return build_sum_cols()


def _mandelbrot():
    from repro.apps.mandelbrot import build_mandelbrot

    return build_mandelbrot()


@pytest.mark.parametrize("name,builder,params", WORKLOADS)
def test_score_vs_autotune(benchmark, name, builder, params):
    program = builder()
    pa = analyze_program(program, **params)
    ka = pa.kernel(0)

    tuned = benchmark.pedantic(
        autotune_mapping,
        args=(ka, TESLA_K20C),
        kwargs={"block_sizes": (8, 32, 64, 128, 256, 1024)},
        rounds=2,
        iterations=1,
    )

    scored = decide_mapping(ka, "multidim", TESLA_K20C, optimize=False)
    scored_time = estimate_kernel_cost(
        ka, scored.mapping, TESLA_K20C, pa.env
    ).total_us

    gap = scored_time / tuned.time_us
    print(
        f"\n{name}: score-selected {scored.mapping} = {scored_time:.0f}us; "
        f"autotuned {tuned.mapping} = {tuned.time_us:.0f}us; "
        f"gap {gap:.2f}x over {tuned.candidates} candidates"
    )
    # The tuner can't lose (it optimizes the judged objective)...
    assert tuned.time_us <= scored_time * 1.001
    # ...and the cheap score must stay competitive (the paper's region-A
    # claim): within 2x of the model optimum.
    assert gap < 2.0
