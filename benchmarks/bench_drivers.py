"""Benchmarks for the full iterative algorithm drivers.

These measure the reproduction's own end-to-end throughput (functional
execution + per-step cost estimation) on complete algorithms, and sanity-
check that the aggregate simulated GPU times keep the paper's orderings
when whole algorithms — not just single kernels — are compared.
"""

import numpy as np
import pytest

from repro.apps.drivers import (
    bfs_reference,
    lu_reconstruct,
    run_bfs,
    run_gaussian_elimination,
    run_lud,
    run_pagerank,
    run_pathfinder,
)


def test_bench_gaussian_full(benchmark, ):
    rng = np.random.default_rng(0)
    a = rng.random((24, 24)) + np.eye(24) * 24

    result = benchmark.pedantic(
        run_gaussian_elimination, args=(a,), rounds=2, iterations=1
    )
    assert np.allclose(np.tril(result.result, -1), 0.0, atol=1e-9)


def test_bench_lud_full(benchmark):
    rng = np.random.default_rng(1)
    a = rng.random((24, 24)) + np.eye(24) * 24

    result = benchmark.pedantic(run_lud, args=(a,), rounds=2, iterations=1)
    assert np.allclose(lu_reconstruct(result.result), a, atol=1e-8)


def test_bench_bfs_full(benchmark):
    rng = np.random.default_rng(2)
    from repro.apps.bfs import workload

    inputs = workload(rng, N=400, avg_degree=4)

    result = benchmark.pedantic(
        run_bfs, args=(inputs["graph"], 0, 400), rounds=2, iterations=1
    )
    assert np.array_equal(
        result.result, bfs_reference(inputs["graph"], 0, 400)
    )


def test_bench_pagerank_to_convergence(benchmark):
    rng = np.random.default_rng(3)
    from repro.apps.pagerank import workload

    inputs = workload(rng, N=200, avg_degree=6)

    result = benchmark.pedantic(
        run_pagerank,
        args=(inputs["graph"], 200, inputs["E"]),
        kwargs={"tolerance": 1e-9},
        rounds=2,
        iterations=1,
    )
    assert result.iterations < 200


def test_bench_pathfinder_full(benchmark):
    rng = np.random.default_rng(4)
    wall = rng.random((40, 5000)) * 10

    result = benchmark.pedantic(
        run_pathfinder, args=(wall,), rounds=2, iterations=1
    )
    assert result.iterations == 39


def test_full_algorithm_strategy_ordering(benchmark):
    """Aggregated over a whole BFS traversal, MultiDim still beats the 1D
    strategy that Rodinia's manual implementation corresponds to."""
    rng = np.random.default_rng(5)
    from repro.apps.bfs import workload

    inputs = workload(rng, N=300, avg_degree=5)
    multidim = benchmark.pedantic(
        run_bfs,
        args=(inputs["graph"], 0, 300),
        kwargs={"strategy": "multidim"},
        rounds=1,
        iterations=1,
    )
    oned = run_bfs(inputs["graph"], 0, 300, strategy="1d")
    assert np.array_equal(multidim.result, oned.result)
    assert multidim.simulated_us <= oned.simulated_us
