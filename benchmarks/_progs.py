"""Shared program builders for the benchmark suite."""

from repro.ir import Builder, F64


def make_sum_rows():
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))
