"""Search-scaling benchmark: reference vs pruned vs vectorized vs cached.

Quantifies the staged search's three wins across nest depths 1-5 and two
block-size grids:

* **pruning** — wall time and candidates-scored of the branch-and-bound
  walk against the exhaustive reference (same winner, byte-identical);
* **vectorization** — the NumPy batch engine evaluating the whole
  candidate matrix at once (byte-identical again), which is what makes
  depth-5 sweeps tractable — the exhaustive reference is skipped there
  (minutes per run);
* **memoization** — the cross-sweep cache hit rate when a shape sweep
  re-decides mappings for unchanged kernels.

Rows are written to ``BENCH_search_scaling.json`` at the repo root (same
one-row-per-measurement layout as the other ``BENCH_*`` artifacts).  Run
under pytest (``pytest benchmarks/bench_search_scaling.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_search_scaling.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import (
    analyze_program,
    clear_caches,
    search_mapping,
    search_mapping_reference,
)
from repro.analysis.cache import get_search_cache
from repro.config import BLOCK_SIZE_CANDIDATES
from repro.ir import Builder, F64
from repro.ir.builder import range_map

_OUT = Path(__file__).resolve().parents[1] / "BENCH_search_scaling.json"

#: Depth-3 speedup the pruned walk must deliver on the default grid.
MIN_SPEEDUP_DEPTH3 = 5.0
#: Depth-4 default-grid speedup the vectorized engine must hold over the
#: pruned walk (cold, uncached).  The engine measures >10x on the
#: benchmark machines; the gate leaves headroom for noisy runners.
MIN_VEC_SPEEDUP_DEPTH4 = 5.0
#: Hit rate the memo must reach on a sweep of unchanged kernels.
MIN_HIT_RATE = 0.90
#: The exhaustive reference is skipped at and beyond this depth (it
#: needs minutes per run there; the vectorized engine is the practical
#: oracle proxy, and its byte-identity to the reference is test-enforced
#: through depth 5 in tests/analysis/test_search_engines.py).
REFERENCE_MAX_DEPTH = 4


def _make_scale():
    b = Builder("scaleVec")
    v = b.vector("v", F64, length="N")
    return b.build(v.map(lambda x: x * 2.0))


def _make_sum_rows():
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def _make_msmbuilder():
    from repro.apps.msmbuilder import build_msmbuilder

    return build_msmbuilder()


def _make_batched():
    """Four parallel levels: batch x frame x cluster x feature distance."""
    b = Builder("batchedClustering")
    batches = b.size("B")
    frames = b.size("P")
    clusters = b.size("K")
    x = b.matrix("X", F64, rows="P", cols="D")
    cent = b.matrix("Cent", F64, rows="K", cols="D")
    scale = b.vector("scale", F64, length="B")
    out = range_map(
        batches,
        lambda bi: range_map(
            frames,
            lambda pi: range_map(
                clusters,
                lambda ki: x.row(pi).zip_with(
                    cent.row(ki), lambda a, c: (a - c) * (a - c)
                ).reduce("+") * scale[bi],
                index_name="ki",
            ),
            index_name="pi",
        ),
        index_name="bi",
    )
    return b.build(out)


def _make_ensembles():
    """Five parallel levels: ensemble x batch x frame x cluster x distance."""
    b = Builder("ensembleClustering")
    ensembles = b.size("E")
    batches = b.size("B")
    frames = b.size("P")
    clusters = b.size("K")
    x = b.matrix("X", F64, rows="P", cols="D")
    cent = b.matrix("Cent", F64, rows="K", cols="D")
    scale = b.vector("scale", F64, length="B")
    bias = b.vector("bias", F64, length="E")
    out = range_map(
        ensembles,
        lambda ei: range_map(
            batches,
            lambda bi: range_map(
                frames,
                lambda pi: range_map(
                    clusters,
                    lambda ki: x.row(pi).zip_with(
                        cent.row(ki), lambda a, c: (a - c) * (a - c)
                    ).reduce("+") * scale[bi] + bias[ei],
                    index_name="ki",
                ),
                index_name="pi",
            ),
            index_name="bi",
        ),
        index_name="ei",
    )
    return b.build(out)


#: depth -> (program builder, analysis sizes).
DEPTH_CASES = {
    1: (_make_scale, dict(N=1 << 20)),
    2: (_make_sum_rows, dict(R=8192, C=8192)),
    3: (_make_msmbuilder, dict(P=2048, K=100, D=100)),
    4: (_make_batched, dict(B=8, P=64, K=64, D=64)),
    5: (_make_ensembles, dict(E=4, B=8, P=64, K=64, D=64)),
}

#: grid label -> block-size candidates.
GRIDS = {
    "default": BLOCK_SIZE_CANDIDATES,
    "coarse": (1, 8, 64, 512),
}


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def run_scaling() -> List[Dict]:
    """Reference / pruned / vectorized / cached rows per (depth, grid)."""
    rows: List[Dict] = []
    for depth, (make, sizes) in sorted(DEPTH_CASES.items()):
        ka = analyze_program(make(), **sizes).kernel(0)
        args = (ka.depth, ka.constraints, ka.level_sizes())
        for grid_name, grid in GRIDS.items():
            ref = ref_ms = None
            if depth <= REFERENCE_MAX_DEPTH:
                ref = search_mapping_reference(*args, block_sizes=grid)
                ref_ms = _time_best(
                    lambda: search_mapping_reference(*args, block_sizes=grid),
                    repeats=1 if depth >= 3 else 3,
                )

            clear_caches()
            pruned = search_mapping(*args, block_sizes=grid, engine="pruned")
            vectorized = search_mapping(
                *args, block_sizes=grid, use_cache=False, engine="vectorized"
            )
            oracle = ref if ref is not None else pruned
            for engine_result in (pruned, vectorized):
                assert engine_result.mapping == oracle.mapping, (
                    depth, grid_name, engine_result.strategy,
                )
                assert engine_result.score == oracle.score
                assert engine_result.candidates_total == oracle.candidates_total
                assert (engine_result.candidates_feasible
                        == oracle.candidates_feasible)
            pruned_ms = _time_best(
                lambda: search_mapping(*args, block_sizes=grid,
                                       use_cache=False, engine="pruned"),
                repeats=3,
            )
            vec_ms = _time_best(
                lambda: search_mapping(*args, block_sizes=grid,
                                       use_cache=False, engine="vectorized"),
                repeats=3,
            )
            cached_ms = _time_best(
                lambda: search_mapping(*args, block_sizes=grid,
                                       engine="pruned"),
                repeats=3,
            )

            measured = [
                ("pruned", pruned_ms, pruned),
                ("vectorized", vec_ms, vectorized),
                ("cached", cached_ms, pruned),
            ]
            if ref is not None:
                measured.insert(0, ("reference", ref_ms, ref))
            for strategy, wall_ms, result in measured:
                rows.append(dict(
                    bench="search_scaling",
                    depth=depth,
                    grid=grid_name,
                    strategy=strategy,
                    wall_ms=round(wall_ms, 4),
                    speedup_vs_reference=(
                        round(ref_ms / wall_ms, 2)
                        if ref_ms is not None and wall_ms else None
                    ),
                    speedup_vs_pruned=(
                        round(pruned_ms / wall_ms, 2) if wall_ms else None
                    ),
                    candidates_total=result.candidates_total,
                    candidates_feasible=result.candidates_feasible,
                    candidates_scored=(
                        0 if strategy == "cached"
                        else result.candidates_scored
                    ),
                    nodes_pruned=result.nodes_pruned,
                    batch_shape=(
                        list(result.batch_shape)
                        if getattr(result, "batch_shape", None) is not None
                        else None
                    ),
                ))
    return rows


def run_cache_sweep(points: int = 10, repeats_per_point: int = 11) -> Dict:
    """A shape sweep that re-decides each point's mapping several times.

    Models how the figure runners behave: every sweep point is a new
    shape (cache miss), but repeated kernels within the point reuse the
    memo.  With 11 invocations per point that is 10 misses against 100
    hits — the acceptance bar is a >= 90% hit rate.
    """
    program = _make_sum_rows()
    clear_caches()
    for i in range(points):
        ka = analyze_program(
            program, R=1024 + 512 * i, C=4096
        ).kernel(0)
        for _ in range(repeats_per_point):
            search_mapping(ka.depth, ka.constraints, ka.level_sizes())
    stats = get_search_cache().stats()
    return dict(
        bench="search_cache_sweep",
        points=points,
        repeats_per_point=repeats_per_point,
        hits=stats.hits,
        misses=stats.misses,
        hit_rate=round(stats.hit_rate, 4),
    )


def _wall_by_key(rows: List[Dict]) -> Dict:
    return {
        (r["depth"], r["grid"], r["strategy"]): r["wall_ms"] for r in rows
    }


def _depth3_speedup(rows: List[Dict]) -> float:
    by_key = _wall_by_key(rows)
    return by_key[(3, "default", "reference")] / by_key[(3, "default", "pruned")]


def _depth4_vec_speedup(rows: List[Dict]) -> float:
    by_key = _wall_by_key(rows)
    return (by_key[(4, "default", "pruned")]
            / by_key[(4, "default", "vectorized")])


def _write(rows: List[Dict], sweep: Dict) -> None:
    _OUT.write_text(json.dumps(
        dict(rows=rows + [sweep]), indent=2) + "\n")


def test_bench_search_scaling_and_cache():
    rows = run_scaling()
    sweep = run_cache_sweep()
    _write(rows, sweep)

    speedup = _depth3_speedup(rows)
    vec_speedup = _depth4_vec_speedup(rows)
    print()
    for row in rows:
        print(
            f"depth {row['depth']} {row['grid']:<8} {row['strategy']:<10}"
            f" {row['wall_ms']:>10.3f} ms"
            f"  scored {row['candidates_scored']:>7}"
            f" / {row['candidates_total']:>7}"
        )
    print(f"depth-3 default-grid speedup: {speedup:.1f}x "
          f"(floor {MIN_SPEEDUP_DEPTH3}x)")
    print(f"depth-4 default-grid vectorized-vs-pruned: {vec_speedup:.1f}x "
          f"(floor {MIN_VEC_SPEEDUP_DEPTH4}x)")
    print(f"cache sweep hit rate: {sweep['hit_rate']:.1%} "
          f"(floor {MIN_HIT_RATE:.0%})")

    assert speedup >= MIN_SPEEDUP_DEPTH3
    assert vec_speedup >= MIN_VEC_SPEEDUP_DEPTH4
    assert sweep["hit_rate"] >= MIN_HIT_RATE


if __name__ == "__main__":
    test_bench_search_scaling_and_cache()
    print(f"wrote {_OUT}")
