"""Figure 12: Rodinia benchmarks vs hand-optimized CUDA and 1D mapping.

The ordering story must hold: MultiDim comparable to manual on the stencil
and compute apps, better than manual on Gaussian and BFS (the paper's
"experts make mistakes" examples), and worse on Pathfinder/LUD (fused
multi-iteration shared-memory kernels the compiler declines to infer).
"""


def test_fig12(experiment):
    result = experiment("fig12")
    rows = {r["app"]: r for r in result.rows}

    # We beat manual where the paper says we do.
    assert rows["gaussian"]["multidim"] < 1.0
    assert rows["bfs"]["multidim"] < 1.0

    # Manual wins on the fused-stencil apps.
    assert rows["pathfinder"]["multidim"] > 1.5
    assert rows["lud"]["multidim"] > 1.5

    # Comparable on the rest (paper: 24% average gap on 7 of 8).
    for app in ("nearestNeighbor", "hotspot", "mandelbrot", "srad"):
        assert rows[app]["multidim"] < 1.3

    # 1D collapses on every genuinely 2D app.
    for app in ("hotspot", "mandelbrot", "srad", "lud"):
        assert rows[app]["1d"] > 3
