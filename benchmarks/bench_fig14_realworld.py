"""Figure 14: real-world applications vs multi-core CPU and 1D mapping.

QPSCD HogWild! (random outer access), MSMBuilder trajectory clustering
(small nested domains), and Naive Bayes training (conflicting access
patterns across kernels), normalized to the multi-core reference.  The
paper's orderings: MultiDim beats CPU everywhere, 1D loses to the CPU on
QPSCD, and including the input transfer narrows but does not erase Naive
Bayes' win (Section VI-E).
"""


def test_fig14(experiment):
    result = experiment("fig14")
    rows = {r["app"]: r for r in result.rows}

    for app in ("qpscd", "msmbuilder", "naiveBayes"):
        assert rows[app]["multidim"] < 1.0, app
        assert rows[app]["multidim"] < rows[app]["1d"], app

    # the paper: 1D QPSCD is *worse* than the CPU
    assert rows["qpscd"]["1d"] > 1.0

    # transfer-inclusive Naive Bayes still beats the CPU
    assert rows["naiveBayes"]["multidim"] < rows[
        "naiveBayes+transfer"
    ]["multidim"] < 1.0
