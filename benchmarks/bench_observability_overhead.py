"""Observability overhead benchmark: disabled backends must be ~free.

The whole pipeline is permanently instrumented — spans around every
stage, counters at every cache/search/cost decision point.  That is only
acceptable if the *disabled* backends (the default) cost nothing
measurable.  This benchmark asserts the zero-overhead claim two ways:

* **estimated overhead** — microbenchmark the no-op span and counter
  calls, count how many instrumentation points one compile actually
  crosses (by running the same compile with recording backends), and
  assert ``calls x per-call cost < 5%`` of the disabled compile's wall
  time;
* **measured comparison** — record disabled vs capture-enabled compile
  wall times as data rows, so regressions in either backend show up in
  the artifact history.

Rows are written to ``BENCH_observability_overhead.json`` at the repo
root (same one-row-per-measurement layout as the other ``BENCH_*``
artifacts).  Run under pytest
(``pytest benchmarks/bench_observability_overhead.py -s``) or directly
(``PYTHONPATH=src python benchmarks/bench_observability_overhead.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import clear_caches
from repro.ir import Builder, F64
from repro.observability import capture, get_metrics, get_tracer
from repro.runtime.session import GpuSession

_OUT = Path(__file__).resolve().parents[1] / "BENCH_observability_overhead.json"

#: The acceptance bar: disabled observability adds less than this
#: fraction of compile wall time.
MAX_DISABLED_OVERHEAD = 0.05

_SIZES = dict(R=1024, C=1024)


def _make_sum_rows():
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def _compile_once(program) -> None:
    clear_caches()
    compiled = GpuSession().compile(program, **_SIZES)
    compiled.estimate_cost()


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _null_call_cost_us() -> Dict[str, float]:
    """Per-call cost of the disabled instrumentation primitives."""
    tracer = get_tracer()
    metrics = get_metrics()
    assert not tracer.enabled and not metrics.enabled
    n = 200_000

    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("bench", key=1) as span:
            span.set(value=2)
    span_us = (time.perf_counter() - start) / n * 1e6

    counter = metrics.counter("bench")
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
    counter_us = (time.perf_counter() - start) / n * 1e6
    return {"span_us": span_us, "counter_us": counter_us}


def _instrumentation_calls(program) -> Dict[str, int]:
    """How many spans/metric ops one compile actually crosses."""
    with capture() as obs:
        _compile_once(program)
    snap = obs.metrics.to_dict()
    metric_ops = sum(
        1 for _ in snap["counters"]
    ) + sum(h["count"] for h in snap["histograms"].values())
    return {
        "spans": len(obs.tracer.events()),
        "metric_ops": metric_ops,
    }


def run_overhead() -> List[Dict]:
    program = _make_sum_rows()
    _compile_once(program)  # warm imports and code paths

    disabled_ms = _time_best(lambda: _compile_once(program), repeats=5)

    def _traced():
        with capture():
            _compile_once(program)

    enabled_ms = _time_best(_traced, repeats=5)

    null_costs = _null_call_cost_us()
    calls = _instrumentation_calls(program)
    estimated_overhead_ms = (
        calls["spans"] * null_costs["span_us"]
        + calls["metric_ops"] * null_costs["counter_us"]
    ) / 1e3
    ratio = estimated_overhead_ms / disabled_ms

    return [
        {"mode": "disabled", "wall_ms": disabled_ms},
        {"mode": "capture", "wall_ms": enabled_ms},
        {
            "mode": "disabled-estimate",
            "null_span_us": null_costs["span_us"],
            "null_counter_us": null_costs["counter_us"],
            "spans_per_compile": calls["spans"],
            "metric_ops_per_compile": calls["metric_ops"],
            "estimated_overhead_ms": estimated_overhead_ms,
            "overhead_ratio": ratio,
            "ceiling": MAX_DISABLED_OVERHEAD,
        },
    ]


def _fleet_workload(n_requests: int = 8):
    from repro.service import CompileRequest, FleetConfig, local_fleet

    def run() -> None:
        clear_caches()
        fleet = local_fleet(
            2, None, fleet_config=FleetConfig(lru_capacity=0), workers=2
        )
        try:
            tickets = fleet.submit_many([
                CompileRequest(
                    app="sumRows", sizes={"R": 64 + 32 * i, "C": 32}
                )
                for i in range(n_requests)
            ])
            outcomes = [t.wait(timeout=300) for t in tickets]
            assert all(o.ok for o in outcomes)
        finally:
            fleet.close()

    return run


def run_fleet_overhead() -> List[Dict]:
    """The same estimate for the fleet path: router + service spans,
    request histograms, trace-id plumbing.  The disabled fleet path must
    stay under the same <5% ceiling as the bare compile path."""
    workload = _fleet_workload()
    workload()  # warm imports, memo code paths

    disabled_ms = _time_best(workload, repeats=3)

    def _traced():
        with capture():
            workload()

    enabled_ms = _time_best(_traced, repeats=3)

    with capture() as obs:
        workload()
    snap = obs.metrics.to_dict()
    calls = {
        "spans": len(obs.tracer.events()),
        "metric_ops": sum(1 for _ in snap["counters"]) + sum(
            h["count"] for h in snap["histograms"].values()
        ),
    }
    null_costs = _null_call_cost_us()
    estimated_overhead_ms = (
        calls["spans"] * null_costs["span_us"]
        + calls["metric_ops"] * null_costs["counter_us"]
    ) / 1e3
    ratio = estimated_overhead_ms / disabled_ms

    return [
        {"mode": "fleet-disabled", "wall_ms": disabled_ms},
        {"mode": "fleet-capture", "wall_ms": enabled_ms},
        {
            "mode": "fleet-disabled-estimate",
            "null_span_us": null_costs["span_us"],
            "null_counter_us": null_costs["counter_us"],
            "spans_per_workload": calls["spans"],
            "metric_ops_per_workload": calls["metric_ops"],
            "estimated_overhead_ms": estimated_overhead_ms,
            "overhead_ratio": ratio,
            "ceiling": MAX_DISABLED_OVERHEAD,
        },
    ]


def _write(rows: List[Dict], key: str = "rows") -> None:
    # The compile-path and fleet-path tests each own one section of the
    # artifact; merge so running either alone never drops the other.
    document: Dict = {}
    if _OUT.exists():
        try:
            document = json.loads(_OUT.read_text())
        except (OSError, ValueError):
            document = {}
    document[key] = rows
    _OUT.write_text(json.dumps(document, indent=2) + "\n")


def test_bench_observability_overhead():
    rows = run_overhead()
    _write(rows)

    by_mode = {r["mode"]: r for r in rows}
    estimate = by_mode["disabled-estimate"]
    print()
    print(f"disabled compile: {by_mode['disabled']['wall_ms']:.3f} ms")
    print(f"capture compile:  {by_mode['capture']['wall_ms']:.3f} ms")
    print(
        f"no-op span {estimate['null_span_us']:.3f} us x "
        f"{estimate['spans_per_compile']} spans + "
        f"no-op counter {estimate['null_counter_us']:.3f} us x "
        f"{estimate['metric_ops_per_compile']} ops"
        f" = {estimate['estimated_overhead_ms']:.4f} ms"
    )
    print(
        f"disabled overhead: {estimate['overhead_ratio']:.2%} of compile "
        f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
    )

    assert estimate["overhead_ratio"] < MAX_DISABLED_OVERHEAD


def test_bench_fleet_observability_overhead():
    rows = run_fleet_overhead()
    _write(rows, key="fleet_rows")

    by_mode = {r["mode"]: r for r in rows}
    estimate = by_mode["fleet-disabled-estimate"]
    print()
    print(
        f"fleet disabled workload: "
        f"{by_mode['fleet-disabled']['wall_ms']:.3f} ms"
    )
    print(
        f"fleet capture workload:  "
        f"{by_mode['fleet-capture']['wall_ms']:.3f} ms"
    )
    print(
        f"fleet-path disabled overhead: "
        f"{estimate['overhead_ratio']:.2%} of workload "
        f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
    )

    assert estimate["overhead_ratio"] < MAX_DISABLED_OVERHEAD


if __name__ == "__main__":
    test_bench_observability_overhead()
    test_bench_fleet_observability_overhead()
    print(f"wrote {_OUT}")
