"""Recipe-emission overhead benchmark: recording must be ~free.

Every compile now runs the reified pass pipeline and records a
:class:`~repro.optim.passes.recipe.KernelRecipe` — two state digests per
pipeline step plus the serialized input mapping.  That is only
acceptable if the recording is a small fraction of compile wall time.
This benchmark measures:

* the per-call cost of the primitives the recorder leans on
  (``PlanState.digest`` — a SHA-256 over the canonical decision dict —
  and ``Recipe.content_digest``);
* how many digest calls one compile actually makes (2 per pipeline step
  per kernel);
* the cost of assembling + serializing the program-level recipe from a
  compiled program, as a fraction of the compile itself, asserted under
  :data:`MAX_RECIPE_OVERHEAD`.

Rows are written to ``BENCH_recipe_overhead.json`` at the repo root
(same one-row-per-measurement layout as the other ``BENCH_*``
artifacts).  Run under pytest
(``pytest benchmarks/bench_recipe_overhead.py -s``) or directly
(``PYTHONPATH=src python benchmarks/bench_recipe_overhead.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import clear_caches
from repro.ir import Builder, F64
from repro.optim.passes.base import PlanState
from repro.optim.pipeline import default_pipeline, OptimizationFlags
from repro.runtime.session import GpuSession

_OUT = Path(__file__).resolve().parents[1] / "BENCH_recipe_overhead.json"

#: The acceptance bar: recipe assembly + serialization + content hash
#: adds less than this fraction of one cold compile's wall time.
MAX_RECIPE_OVERHEAD = 0.15

_SIZES = dict(R=1024, C=1024)


def _make_sum_rows():
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def _compile_once(program):
    clear_caches()
    return GpuSession().compile(program, **_SIZES)


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _digest_cost_us(compiled) -> Dict[str, float]:
    """Per-call cost of the two hashing primitives recipes lean on."""
    decision = compiled.decisions[0]
    state = PlanState.initial(
        decision.analysis, decision.mapping, compiled.device
    )
    n = 2_000
    start = time.perf_counter()
    for _ in range(n):
        state.digest()
    state_us = (time.perf_counter() - start) / n * 1e6

    recipe = compiled.recipe()
    start = time.perf_counter()
    for _ in range(n):
        recipe.content_digest()
    content_us = (time.perf_counter() - start) / n * 1e6
    return {"state_digest_us": state_us, "content_digest_us": content_us}


def run_recipe_overhead() -> List[Dict]:
    program = _make_sum_rows()
    compiled = _compile_once(program)  # warm imports and code paths

    compile_ms = _time_best(lambda: _compile_once(program), repeats=5)

    def _assemble():
        recipe = compiled.recipe()
        recipe.to_json()
        recipe.content_digest()

    assemble_ms = _time_best(_assemble, repeats=5)

    # 2 digests per pipeline step (pre + post) per kernel; the plan
    # digest reuses the last step's post digest cache-free.
    steps = len(default_pipeline(OptimizationFlags.default()))
    kernels = len(compiled.decisions)
    digest_calls = 2 * steps * kernels
    costs = _digest_cost_us(compiled)
    recording_ms = digest_calls * costs["state_digest_us"] / 1e3
    total_overhead_ms = recording_ms + assemble_ms
    ratio = total_overhead_ms / compile_ms

    return [
        {"mode": "compile", "wall_ms": compile_ms},
        {"mode": "recipe-assemble", "wall_ms": assemble_ms},
        {
            "mode": "recipe-estimate",
            "state_digest_us": costs["state_digest_us"],
            "content_digest_us": costs["content_digest_us"],
            "digest_calls_per_compile": digest_calls,
            "recording_ms": recording_ms,
            "total_overhead_ms": total_overhead_ms,
            "overhead_ratio": ratio,
            "ceiling": MAX_RECIPE_OVERHEAD,
        },
    ]


def _write(rows: List[Dict]) -> None:
    _OUT.write_text(json.dumps({"rows": rows}, indent=2) + "\n")


def test_bench_recipe_overhead():
    rows = run_recipe_overhead()
    _write(rows)

    by_mode = {r["mode"]: r for r in rows}
    estimate = by_mode["recipe-estimate"]
    print()
    print(f"cold compile:     {by_mode['compile']['wall_ms']:.3f} ms")
    print(f"recipe assembly:  {by_mode['recipe-assemble']['wall_ms']:.3f} ms")
    print(
        f"state digest {estimate['state_digest_us']:.3f} us x "
        f"{estimate['digest_calls_per_compile']} calls + assembly = "
        f"{estimate['total_overhead_ms']:.3f} ms "
        f"({estimate['overhead_ratio']:.2%} of compile)"
    )
    assert estimate["overhead_ratio"] < MAX_RECIPE_OVERHEAD, (
        f"recipe recording costs {estimate['overhead_ratio']:.2%} of a "
        f"compile (ceiling {MAX_RECIPE_OVERHEAD:.0%})"
    )


if __name__ == "__main__":
    test_bench_recipe_overhead()
