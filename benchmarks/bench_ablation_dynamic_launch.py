"""Ablation: static-only mapping vs dynamic launch adjustment.

Section IV-D: the static decision fixes dimensions and span kinds; block
sizes and span/split factors are re-derived at launch from actual sizes.
This ablation compiles at one representative shape and executes at a
skewed one, with and without the dynamic adjustment.
"""

import pytest

from repro import GpuSession
from repro.apps.mandelbrot import build_mandelbrot

COMPILE_SHAPE = {"H": 2048, "W": 2048}
RUNTIME_SHAPES = [
    pytest.param({"H": 50, "W": 20000}, id="wide-skew"),
    pytest.param({"H": 20000, "W": 50}, id="tall-skew"),
    pytest.param({"H": 2048, "W": 2048}, id="square"),
]


@pytest.mark.parametrize("runtime_shape", RUNTIME_SHAPES)
def test_dynamic_launch_ablation(benchmark, runtime_shape):
    program = build_mandelbrot()
    static = GpuSession(dynamic_launch=False).compile(
        program, **COMPILE_SHAPE
    )
    dynamic = GpuSession(dynamic_launch=True).compile(
        program, **COMPILE_SHAPE
    )

    static_us = static.estimate_time_us(**runtime_shape)
    dynamic_us = benchmark.pedantic(
        dynamic.estimate_time_us,
        kwargs=runtime_shape,
        rounds=2,
        iterations=1,
    )

    print(
        f"\nruntime {runtime_shape}: static {static_us:.0f}us, "
        f"dynamic {dynamic_us:.0f}us "
        f"({static_us / dynamic_us:.2f}x)"
    )
    # Adjustment never hurts materially, and helps on skewed shapes.
    assert dynamic_us <= static_us * 1.05
