"""Fleet load benchmark: saturation curves and fleet-wide coalescing.

Three claims, each measured and asserted:

* **fleet-wide coalescing** — identical concurrent requests submitted to
  the router collapse into ONE pipeline run across the whole fleet (the
  router's single-flight table coalesces them before any backend sees
  them);
* **cache tiering** — on the warm path the hot in-memory LRU tier beats
  the shared disk store, which beats a backend round trip;
* **throughput scaling** — the router turns backend-count into
  throughput.  Measured twice: a *dispatch-scaling* phase where backend
  cost is latency-bound (a fixed simulated pipeline time), so a
  3-backend fleet must sustain ~3x the requests per second of a
  1-backend fleet on any machine; and a *saturation* phase driving real
  HTTP round trips against 1 vs 3 subprocess servers with the router's
  own cache tiers disabled, sweeping client concurrency and recording
  requests/s with p50/p99 latency per point.  The subprocess curves
  only separate when the host actually has cores for the backends to
  run on, so the hard scaling floor applies to them on >= 4 cores
  (the dispatch-scaling floor applies everywhere);
* **self-healing** — a *chaos* section runs the fleet fault matrix
  (kill/hang/slow/partition) through the campaign harness and asserts
  every campaign heals: zero lost tickets, the killed-and-restarted
  backend is readmitted by the prober and serves traffic again, p99
  stays bounded;
* **hedging** — a *hedging* section replays a warm workload against a
  2-backend fleet whose primary stalls, once without hedging and once
  with, and asserts the hedged run improves p99 while duplicating ZERO
  pipeline executions (hedges are answered from the shared store).

Rows land in ``BENCH_fleet_load.json`` at the repo root (same
one-row-per-measurement layout as the other ``BENCH_*`` artifacts).

Run under pytest (``pytest benchmarks/bench_fleet_load.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_fleet_load.py``).
Set ``BENCH_FLEET_QUICK=1`` (the CI smoke job does) for a ~30 s slice:
smaller sweep, fewer requests, same assertions.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import clear_caches
from repro.service import (
    CompileRequest,
    CompileService,
    FleetConfig,
    ServiceConfig,
    local_fleet,
    spawn_http_fleet,
)
from repro.service.fleet import SERVED_BY_LRU, SERVED_BY_STORE
from repro.service.service import latency_summary

_ROOT = Path(__file__).resolve().parents[1]
_OUT = _ROOT / "BENCH_fleet_load.json"

QUICK = os.environ.get("BENCH_FLEET_QUICK", "") not in ("", "0")

#: Identical concurrent requests that must collapse into one pipeline run.
FANOUT = 16 if not QUICK else 8

#: Distinct programs the scaling sweep cycles over (pre-compiled into the
#: shared store, so the measured path is warm end to end).
DISTINCT = 24 if not QUICK else 8

#: Client-side concurrency levels for the saturation curve.
CONCURRENCY_SWEEP = (1, 4, 8, 16) if not QUICK else (1, 4)

#: Requests each client worker issues per sweep point.
PER_WORKER = 30 if not QUICK else 10

#: Peak 3-vs-1-backend throughput floors.  The dispatch-scaling phase
#: (latency-bound backends) must scale on any host; the subprocess
#: saturation curves need real cores to separate.
MIN_DISPATCH_SCALING = 2.0
MIN_HTTP_SCALING = 1.15
HTTP_SCALING_MIN_CORES = 4

#: Simulated per-request pipeline time for the dispatch-scaling phase.
SIMULATED_PIPELINE_S = 0.02

BACKEND_FLEETS = (1, 3)


def distinct_requests(n: int) -> List[CompileRequest]:
    return [
        CompileRequest(app="sumRows", sizes={"R": 64 + 32 * i, "C": 32})
        for i in range(n)
    ]


def bench_coalescing(cache_dir: str) -> Dict:
    """FANOUT identical concurrent submits -> one dispatch, one run."""
    clear_caches()
    gate = threading.Event()
    calls = []

    def gated(req, digest):
        calls.append(digest)
        gate.wait(timeout=120)
        return service_template._default_compile(req, digest)

    fleet = local_fleet(
        3,
        cache_dir,
        fleet_config=FleetConfig(lru_capacity=8),
        compile_fn=gated,
        workers=2,
    )
    service_template = next(iter(fleet.backends.values())).service
    try:
        request = distinct_requests(1)[0]
        tickets = [fleet.submit(request) for _ in range(FANOUT)]
        roles = [t.role for t in tickets]
        gate.set()
        outcomes = [t.wait(timeout=300) for t in tickets]
        assert all(o.ok for o in outcomes)
        stats = fleet.stats()
        return {
            "phase": "fleet-coalescing",
            "submitted": FANOUT,
            "pipeline_runs": len(calls),
            "dispatched": stats["misses"],
            "coalesced": stats["coalesced"],
            "roles": {role: roles.count(role) for role in set(roles)},
        }
    finally:
        gate.set()
        fleet.close()


def bench_cache_tiers(cache_dir: str) -> Dict:
    """Warm-path latency per tier: hot LRU vs disk store vs backend."""
    clear_caches()
    fleet = local_fleet(
        2, cache_dir, fleet_config=FleetConfig(lru_capacity=64), workers=2
    )
    try:
        request = distinct_requests(1)[0]
        cold = fleet.submit(request).wait(timeout=300)
        assert cold.status == "miss"

        def sample(expected_tier: str, repeats: int = 30) -> Dict:
            latencies = []
            for _ in range(repeats):
                outcome = fleet.submit(request).wait(timeout=60)
                assert outcome.served_by == expected_tier, outcome.served_by
                latencies.append(outcome.latency_ms)
                if expected_tier == SERVED_BY_STORE:
                    fleet.lru.clear()  # keep forcing the disk tier
            return latency_summary(sorted(latencies))

        lru = sample(SERVED_BY_LRU)
        fleet.lru.clear()
        store = sample(SERVED_BY_STORE)
        return {
            "phase": "cache-tiers",
            "cold_ms": cold.latency_ms,
            "lru_hit_ms": lru,
            "store_hit_ms": store,
        }
    finally:
        fleet.close()


def bench_dispatch_scaling() -> List[Dict]:
    """Backend-count -> throughput with latency-bound backend work.

    Every request is a distinct digest and every cache tier is off, so
    each one must be dispatched; the backend "pipeline" is a fixed
    sleep (latency, not CPU), so total throughput is bounded by worker
    slots across the fleet — 3 backends expose 3x the slots of 1, and
    the router must actually fill them.
    """
    from repro.service.store import CompileArtifact

    def slow_compile(request, digest):
        time.sleep(SIMULATED_PIPELINE_S)
        return CompileArtifact(
            digest=digest,
            program="simulated",
            strategy="multidim",
            device="Tesla K20c",
            cost={"total_us": 1.0, "kernels": []},
        )

    clients = 12
    per_client = 16 if not QUICK else 8
    rows: List[Dict] = []
    for backends in BACKEND_FLEETS:
        fleet = local_fleet(
            backends,
            None,  # no store: every request must reach a backend
            fleet_config=FleetConfig(lru_capacity=0, dispatchers=16),
            compile_fn=slow_compile,
            workers=2,
        )
        try:
            latencies: List[float] = []
            errors: List[str] = []
            lock = threading.Lock()

            def worker(index: int) -> None:
                local = []
                for i in range(per_client):
                    request = CompileRequest(
                        app="sumRows",
                        sizes={"R": 64 + index * 1000 + i, "C": 32},
                    )
                    t0 = time.perf_counter()
                    outcome = fleet.submit(request).wait(timeout=300)
                    local.append((time.perf_counter() - t0) * 1e3)
                    if not outcome.ok:
                        with lock:
                            errors.append(outcome.error.message)
                with lock:
                    latencies.extend(local)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            wall_s = time.perf_counter() - start
            assert not errors, errors[:3]
            total = clients * per_client
            summary = latency_summary(sorted(latencies))
            rows.append({
                "phase": "dispatch-scaling",
                "backends": backends,
                "worker_slots": backends * 2,
                "simulated_pipeline_ms": SIMULATED_PIPELINE_S * 1e3,
                "concurrency": clients,
                "requests": total,
                "wall_s": wall_s,
                "rps": total / wall_s,
                "p50_ms": summary["p50"],
                "p99_ms": summary["p99"],
            })
        finally:
            fleet.close()
    return rows


def _measure_point(fleet, requests, concurrency: int) -> Dict:
    """Closed-loop load: each worker owns a disjoint digest slice (no
    accidental coalescing), issues PER_WORKER requests, all latencies
    recorded."""
    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        mine = requests[index::concurrency] or [requests[index % len(requests)]]
        local = []
        for i in range(PER_WORKER):
            request = mine[i % len(mine)]
            t0 = time.perf_counter()
            outcome = fleet.submit(request).wait(timeout=300)
            local.append((time.perf_counter() - t0) * 1e3)
            if not outcome.ok:
                with lock:
                    errors.append(outcome.error.message)
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    wall_s = time.perf_counter() - start
    assert not errors, errors[:3]
    total = concurrency * PER_WORKER
    summary = latency_summary(sorted(latencies))
    return {
        "concurrency": concurrency,
        "requests": total,
        "wall_s": wall_s,
        "rps": total / wall_s,
        "p50_ms": summary["p50"],
        "p99_ms": summary["p99"],
    }


def bench_scaling(cache_dir: str, scratch: Path) -> List[Dict]:
    """Saturation curves: 1 vs N subprocess backends, warm store path.

    The shared store is pre-populated, the router's LRU and disk tiers
    are disabled, so every request is a real HTTP round trip answered
    from the backend's warm store — the curve measures fleet serving
    capacity, not pipeline speed.
    """
    clear_caches()
    requests = distinct_requests(DISTINCT)
    warmer = CompileService(ServiceConfig(workers=4, cache_dir=cache_dir))
    try:
        for request in requests:
            assert warmer.compile(request).ok
    finally:
        warmer.close()

    rows: List[Dict] = []
    for backends in BACKEND_FLEETS:
        fleet = spawn_http_fleet(
            backends,
            cache_dir,
            str(scratch / f"logs-{backends}"),
            fleet_config=FleetConfig(
                lru_capacity=0, dispatchers=32, queue_limit=8192
            ),
            workers=2,
        )
        fleet.store = None  # router must not answer from disk itself
        try:
            # One throwaway point warms sockets and server threads.
            _measure_point(fleet, requests, CONCURRENCY_SWEEP[0])
            for concurrency in CONCURRENCY_SWEEP:
                point = _measure_point(fleet, requests, concurrency)
                point["phase"] = "saturation"
                point["backends"] = backends
                rows.append(point)
            stats = fleet.stats()
            assert stats["errors"] == 0
            assert stats["reroutes"] == 0
        finally:
            fleet.close()
    return rows


class _SlowBackend:
    """Stalls every dispatch — the shape hedging exists to mask."""

    def __init__(self, inner, delay_s: float):
        self.inner = inner
        self.name = inner.name
        self.delay_s = delay_s

    def compile(self, request):
        time.sleep(self.delay_s)
        return self.inner.compile(request)

    def alive(self):
        return self.inner.alive()

    def mark_dead(self):
        self.inner.mark_dead()

    def mark_alive(self):
        self.inner.mark_alive()

    def probe(self):
        return self.inner.probe()

    def close(self):
        self.inner.close()


def bench_chaos() -> Dict:
    """Fleet fault matrix through the chaos campaign harness."""
    from repro.resilience.fleet_chaos import run_fleet_chaos_matrix

    result = run_fleet_chaos_matrix(
        wave=4 if QUICK else 6, hang_s=0.1, slow_s=0.02
    )
    return {
        "ok": result.ok,
        "cells": [cell.to_dict() for cell in result.cells],
    }


def bench_hedging(cache_dir: str) -> Dict:
    """Warm workload, stalled primary: p99 with and without hedging.

    Both fleets share one artifact store, so the hedge is answered from
    the store on the secondary — the ``executions`` counters prove the
    hedge duplicated zero pipeline work.
    """
    from repro.service.store import CompileArtifact

    clear_caches()
    stall_s = 0.08
    hedge_delay_s = 0.01
    n = 6 if QUICK else 12

    def instant(request, digest):
        return CompileArtifact(
            digest=digest,
            program="hedge-bench",
            strategy="multidim",
            device="Tesla K20c",
            cost={"total_us": 1.0, "kernels": []},
        )

    def build(hedge: bool):
        fleet = local_fleet(
            2,
            cache_dir,
            fleet_config=FleetConfig(
                lru_capacity=0,
                probe_interval_s=0,
                hedge_delay_s=hedge_delay_s if hedge else None,
                backoff_base_s=0.001,
                backoff_max_s=0.01,
            ),
            compile_fn=instant,
            workers=2,
        )
        fleet.store = None  # force dispatch; backends share the disk tier
        return fleet

    def executions(fleet) -> int:
        return sum(
            getattr(b, "inner", b).service.executions
            for b in fleet.backends.values()
        )

    def victim_requests(fleet) -> tuple:
        victim = sorted(fleet.backends)[0]
        picked = []
        candidate = 0
        while len(picked) < n:
            request = CompileRequest(
                app="sumRows", sizes={"R": 64 + 32 * candidate, "C": 32}
            )
            if fleet.ring.node_for(request.digest()) == victim:
                picked.append(request)
            candidate += 1
        return victim, picked

    def run(hedge: bool) -> Dict:
        fleet = build(hedge)
        try:
            victim, requests = victim_requests(fleet)
            # Wave 1 (cold): populates the shared store and marks the
            # digests hedgeable.
            for request in requests:
                assert fleet.submit(request).wait(timeout=300).ok
            executed_cold = executions(fleet)
            # Stall the primary every request routes to.
            fleet.backends[victim] = _SlowBackend(
                fleet.backends[victim], stall_s
            )
            latencies = []
            for request in requests:
                t0 = time.perf_counter()
                outcome = fleet.submit(request).wait(timeout=300)
                latencies.append((time.perf_counter() - t0) * 1e3)
                assert outcome.ok
            stats = fleet.stats()
            return {
                "hedged": hedge,
                "stall_ms": stall_s * 1e3,
                "hedge_delay_ms": hedge_delay_s * 1e3 if hedge else None,
                "requests": n,
                "latency_ms": latency_summary(sorted(latencies)),
                "hedges": stats["hedges"],
                "hedge_wins": stats["hedge_wins"],
                "duplicate_executions": executions(fleet) - executed_cold,
            }
        finally:
            fleet.close()

    baseline = run(hedge=False)
    hedged = run(hedge=True)
    return {"baseline": baseline, "hedged": hedged}


def bench_instrumented(cache_dir: str) -> Dict:
    """The fleet under full observability: spans, metrics, exemplars.

    Runs a distinct-request workload through a local fleet with tracing
    and metrics capturing, then records what the instrumentation
    produced — per-request trace ids, the merged latency histogram with
    its exemplars, and the control-plane event volume.  This is the
    artifact row proving the PR's observability surfaces carry real
    data under load, not just in unit fixtures.
    """
    from repro.observability import capture
    from repro.observability.aggregate import histogram_quantile
    from repro.observability.events import get_event_log

    clear_caches()
    n = 8 if QUICK else 16
    with capture() as obs:
        fleet = local_fleet(
            2, cache_dir, fleet_config=FleetConfig(lru_capacity=8),
            workers=2,
        )
        try:
            start_seq = get_event_log().snapshot()["next_seq"]
            t0 = time.perf_counter()
            tickets = fleet.submit_many(distinct_requests(n))
            outcomes = [t.wait(timeout=300) for t in tickets]
            wall_s = time.perf_counter() - t0
            assert all(o.ok for o in outcomes)
            traced = sum(1 for o in outcomes if o.trace_id)
            merged = fleet.aggregated_metrics()["fleet"]
            events = get_event_log().snapshot(since=start_seq - 1)
        finally:
            fleet.close()
    latency = merged["histograms"].get("fleet.request_ms") or {}
    return {
        "phase": "instrumented",
        "requests": n,
        "rps": n / wall_s,
        "traced_requests": traced,
        "span_events": len(obs.tracer.events()),
        "histograms": len(merged["histograms"]),
        "exemplars": len(latency.get("exemplars") or {}),
        "fleet_p99_ms": histogram_quantile(latency, 0.99),
        "control_plane_events": len(events["events"]),
    }


def run_benchmark() -> Dict:
    rows: List[Dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as scratch:
        scratch_path = Path(scratch)
        rows.append(bench_coalescing(str(scratch_path / "cache-a")))
        rows.append(bench_cache_tiers(str(scratch_path / "cache-b")))
        rows.extend(bench_dispatch_scaling())
        rows.extend(
            bench_scaling(str(scratch_path / "cache-c"), scratch_path)
        )
        rows.append(bench_instrumented(str(scratch_path / "cache-e")))
        chaos = bench_chaos()
        hedging = bench_hedging(str(scratch_path / "cache-d"))
    return {"rows": rows, "chaos": chaos, "hedging": hedging}


def _write(result: Dict) -> None:
    _OUT.write_text(
        json.dumps(dict(quick=QUICK, **result), indent=2) + "\n"
    )


def test_bench_fleet_load():
    result = run_benchmark()
    _write(result)
    rows = result["rows"]

    coalescing = next(r for r in rows if r["phase"] == "fleet-coalescing")
    tiers = next(r for r in rows if r["phase"] == "cache-tiers")
    dispatch = [r for r in rows if r["phase"] == "dispatch-scaling"]
    curve = [r for r in rows if r["phase"] == "saturation"]

    print()
    print(
        f"coalescing: {coalescing['submitted']} identical requests -> "
        f"{coalescing['pipeline_runs']} pipeline run(s), "
        f"{coalescing['coalesced']} coalesced"
    )
    print(
        f"tiers: cold {tiers['cold_ms']:.2f} ms, "
        f"lru p50 {tiers['lru_hit_ms']['p50']:.3f} ms, "
        f"store p50 {tiers['store_hit_ms']['p50']:.3f} ms"
    )
    dispatch_rps = {row["backends"]: row["rps"] for row in dispatch}
    for row in dispatch:
        print(
            f"dispatch-scaling: backends={row['backends']} "
            f"({row['worker_slots']} slots) {row['rps']:8.1f} req/s "
            f"p50 {row['p50_ms']:.2f} ms p99 {row['p99_ms']:.2f} ms"
        )
    dispatch_scaling = dispatch_rps[3] / dispatch_rps[1]
    print(
        f"dispatch scaling 3-vs-1 backends: {dispatch_scaling:.2f}x "
        f"(floor {MIN_DISPATCH_SCALING}x)"
    )
    peaks: Dict[int, float] = {}
    for point in curve:
        peaks[point["backends"]] = max(
            peaks.get(point["backends"], 0.0), point["rps"]
        )
        print(
            f"saturation: backends={point['backends']} "
            f"c={point['concurrency']:>2} {point['rps']:8.1f} req/s "
            f"p50 {point['p50_ms']:.2f} ms p99 {point['p99_ms']:.2f} ms"
        )
    cores = os.cpu_count() or 1
    http_scaling = peaks[3] / peaks[1]
    print(
        f"http peak scaling 3-vs-1 backends: {http_scaling:.2f}x on "
        f"{cores} core(s) (floor {MIN_HTTP_SCALING}x when >= "
        f"{HTTP_SCALING_MIN_CORES} cores)"
    )

    chaos = result["chaos"]
    for cell in chaos["cells"]:
        print(
            f"chaos: fleet/{cell['kind']:<9} -> {cell['outcome']} "
            f"(lost {cell['lost']}/{cell['requests']}, "
            f"readmitted={cell['readmitted']}, "
            f"served_after_heal={cell['victim_served_after_heal']}, "
            f"p99 {cell['p99_ms']:.1f} ms)"
        )
    instrumented = next(r for r in rows if r["phase"] == "instrumented")
    print(
        f"instrumented: {instrumented['requests']} requests "
        f"{instrumented['rps']:.1f} req/s, "
        f"{instrumented['traced_requests']} traced, "
        f"{instrumented['span_events']} spans, "
        f"{instrumented['exemplars']} exemplar(s), "
        f"fleet p99<={instrumented['fleet_p99_ms']:g} ms"
    )
    hedging = result["hedging"]
    baseline, hedged = hedging["baseline"], hedging["hedged"]
    print(
        f"hedging: stalled-primary p99 "
        f"{baseline['latency_ms']['p99']:.1f} ms unhedged -> "
        f"{hedged['latency_ms']['p99']:.1f} ms hedged "
        f"({hedged['hedges']} hedge(s), {hedged['hedge_wins']} win(s), "
        f"{hedged['duplicate_executions']} duplicate execution(s))"
    )

    assert coalescing["pipeline_runs"] == 1
    assert coalescing["dispatched"] == 1
    assert coalescing["coalesced"] == FANOUT - 1
    assert tiers["lru_hit_ms"]["p50"] <= tiers["store_hit_ms"]["p50"]
    assert tiers["store_hit_ms"]["p50"] < tiers["cold_ms"]
    assert dispatch_scaling >= MIN_DISPATCH_SCALING
    if cores >= HTTP_SCALING_MIN_CORES:
        assert http_scaling >= MIN_HTTP_SCALING
    else:
        # Subprocess backends time-share the cores that exist; without
        # real parallelism the curves can only show the fleet holds its
        # single-backend throughput, not exceed it.
        assert http_scaling >= 0.6

    # Self-healing: every campaign heals with zero lost tickets, and the
    # killed-then-restarted backend is serving again.
    assert chaos["ok"], chaos
    kill = next(c for c in chaos["cells"] if c["kind"] == "kill")
    assert kill["outcome"] == "healed"
    assert kill["lost"] == 0
    assert kill["readmitted"]
    assert kill["victim_served_after_heal"] >= 1

    # Instrumented fleet: every request got a trace id, the merged
    # latency histogram carries at least one exemplar to jump from.
    assert instrumented["traced_requests"] == instrumented["requests"]
    assert instrumented["span_events"] > 0
    assert instrumented["exemplars"] >= 1

    # Hedging: better tail latency under a stalled primary, zero
    # duplicated pipeline work.
    assert hedged["hedges"] >= 1 and hedged["hedge_wins"] >= 1
    assert hedged["duplicate_executions"] == 0
    assert (
        hedged["latency_ms"]["p99"] < baseline["latency_ms"]["p99"] * 0.75
    )


if __name__ == "__main__":
    test_bench_fleet_load()
    print(f"wrote {_OUT}")
