"""Figure 16: dynamic-allocation optimization ablation.

sumWeightedRows/Cols with (a) per-thread device malloc, (b) preallocation
with the fixed row-major layout, (c) preallocation with mapping-directed
layout.  Paper values: malloc costs 16.2x/20.8x; the wrong layout costs
sumWeightedCols another 5.3x while sumWeightedRows is layout-insensitive.
"""


def test_fig16(experiment):
    result = experiment("fig16")
    rows = {r["kernel"]: r for r in result.rows}

    # malloc is an order of magnitude for both kernels
    assert 10 < rows["sumWeightedRows"]["malloc"] < 40
    assert 10 < rows["sumWeightedCols"]["malloc"] < 40

    # the layout only matters for the column-major variant
    assert rows["sumWeightedRows"]["prealloc_only"] < 1.2
    assert rows["sumWeightedCols"]["prealloc_only"] > 3
