"""Figure 7: prior fixed strategies as points in our mapping space.

Verifies the DOP equivalences the paper derives: thread-block/thread has
DOP = I * min(J, MAX_BLOCK_SIZE); warp-based has DOP = I * min(J,
WARP_SIZE).
"""


def test_fig07(experiment):
    result = experiment("fig7")
    for row in result.rows:
        assert row["dop"] == row["expected_dop"], row
