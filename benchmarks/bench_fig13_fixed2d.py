"""Figure 13: fixed two-dimensional strategies vs MultiDim on (R)/(C)
traversal variants of Gaussian, Hotspot, Mandelbrot, and SRAD.

The paper's claim: (R) variants perform similarly across strategies (within
~1.6x) while (C) variants slow the fixed strategies down 1.5-9.6x because
they cannot re-assign the coalescing dimension.
"""


def test_fig13(experiment):
    result = experiment("fig13")

    for row in result.rows:
        if row["order"] == "R":
            assert row["thread-block/thread"] < 1.7, row
            assert row["warp-based"] < 1.7, row
        else:
            assert row["thread-block/thread"] > 1.5, row
            assert row["warp-based"] > 1.5, row

    worst = max(
        max(r["thread-block/thread"], r["warp-based"])
        for r in result.rows
        if r["order"] == "C"
    )
    assert 3 < worst < 15  # paper's band: 1.5x-9.6x
