"""Figure 17: mapping score vs simulated performance scatter.

Every candidate mapping for Mandelbrot on a skewed (50, 20K) output is
scored by the constraint system and timed by the simulator.  Region A
(high score, best performance) must contain the selected mapping; region B
(warp-based) performs poorly; region C (false negatives: low score, good
performance) is expected and tolerated, as in the paper.
"""

import re


def test_fig17(experiment):
    result = experiment("fig17")

    chosen = float(
        re.search(r"chosen mapping time ([0-9.]+)x", result.notes).group(1)
    )
    warp = float(re.search(r"warp-based ([0-9.]+)x", result.notes).group(1))

    assert chosen < 1.5  # region A
    assert warp > 2.0    # region B

    # high-score samples all perform well (no false positives)
    top = [r for r in result.rows if r["score"] > 0.9]
    assert top and all(r["time_norm"] < 3 for r in top)

    # false negatives exist (region C): some low-score samples are fast
    low = [r for r in result.rows if r["score"] < 0.5]
    assert any(r["time_norm"] < 2 for r in low)
