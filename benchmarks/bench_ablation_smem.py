"""Ablation: shared-memory prefetching for imperfect nests (Section V-B).

The workload is an imperfect nest with *large* outer-level reads: per-row
scaling of a matrix by a combination of two million-element vectors::

    out[i][j] = m[i][j] * (u[i] + v[i])

The vector reads execute once per (i, j) thread (redundantly, as generated
code does) and their footprint exceeds L2, so staging them through shared
memory genuinely removes traffic — the effect the optimization exists for.
(On small outer data the L2 model already absorbs the redundancy, which is
why the paper pairs this optimization with the imperfect-nest detection
rather than applying it blindly.)
"""

import pytest

from repro.analysis import analyze_program
from repro.gpusim import TESLA_K20C, decide_mapping, estimate_kernel_cost
from repro.ir import Builder, F64
from repro.optim import OptimizationFlags, build_plan

PARAMS = {"R": 1 << 20, "C": 64}


def test_smem_prefetch_ablation(benchmark):
    from repro.ir.builder import let, range_map

    b = Builder("rowScale")
    r = b.size("R")
    m = b.matrix("m", F64, rows="R", cols="C")
    u = b.vector("u", F64, length="R")
    v = b.vector("v", F64, length="R")
    program = b.build(
        range_map(
            r,
            lambda i: let(
                u[i] + v[i],
                lambda scale: m.row(i).map(lambda e: e * scale),
                name="scale",
            ),
            index_name="i",
        )
    )

    pa = analyze_program(program, **PARAMS)
    ka = pa.kernel(0)
    decision = decide_mapping(ka, "multidim", TESLA_K20C, optimize=False)
    mapping = decision.mapping

    with_smem = build_plan(
        ka, mapping, TESLA_K20C, OptimizationFlags(True, True, True)
    )
    without = build_plan(
        ka, mapping, TESLA_K20C, OptimizationFlags(True, True, False)
    )
    assert with_smem.smem_prefetch  # u and/or v selected for staging

    cost_on = benchmark.pedantic(
        estimate_kernel_cost,
        args=(ka, mapping, TESLA_K20C, pa.env, with_smem),
        rounds=3,
        iterations=1,
    )
    cost_off = estimate_kernel_cost(ka, mapping, TESLA_K20C, pa.env, without)

    print(
        f"\nrowScale smem prefetch: on {cost_on.total_us:.0f}us "
        f"({cost_on.traffic_bytes / 1e6:.0f} MB), "
        f"off {cost_off.total_us:.0f}us "
        f"({cost_off.traffic_bytes / 1e6:.0f} MB)"
    )
    # staging removes the redundant outer-level vector traffic
    assert cost_on.traffic_bytes < cost_off.traffic_bytes * 0.95
    assert cost_on.total_us < cost_off.total_us
