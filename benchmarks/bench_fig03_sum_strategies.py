"""Figure 3: sumCols/sumRows under fixed mapping strategies.

Regenerates the motivating study: three matrix shapes with a constant
element count, four mapping strategies, execution time normalized to
MultiDim.  The paper reports up to 58x differences; the reproduction's
cost model lands in the 10-25x band with the same winners and losers.
"""


def test_fig03(experiment):
    result = experiment("fig3")

    rows = {(r["kernel"], r["shape"]): r for r in result.rows}

    # MultiDim is flat across shapes (the paper normalizes to it).
    times = [r["multidim_ms"] for r in result.rows]
    assert max(times) / min(times) < 1.3

    # 1D collapses exactly where the paper says it does.
    assert rows[("sumCols", "[64K,1K]")]["1d"] > 5
    assert rows[("sumRows", "[1K,64K]")]["1d"] > 5

    # Fixed 2D strategies cannot coalesce sumCols.
    for shape in ("[64K,1K]", "[8K,8K]", "[1K,64K]"):
        assert rows[("sumCols", shape)]["thread-block/thread"] > 5
        assert rows[("sumCols", shape)]["warp-based"] > 5

    # warp-based matches MultiDim on sumRows (its home turf).
    assert rows[("sumRows", "[1K,64K]")]["warp-based"] < 1.5
