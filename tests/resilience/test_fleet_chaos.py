"""Fleet chaos campaigns: kill/hang/slow/partition, zero lost tickets.

The campaign harness is the test subject here — its assertions (no lost
tickets, prober readmission, victim serving post-heal, bounded p99) are
the PR's acceptance criteria, so these tests run real campaigns and
assert the harness classifies them ``healed``, plus unit tests for the
:class:`ChaosBackend` fault application itself.
"""

import pytest

from repro.errors import ServiceError
from repro.resilience.faults import (
    FLEET_FAULT_KINDS,
    FLEET_FAULT_MATRIX,
    FaultPlan,
    inject_faults,
)
from repro.resilience.fleet_chaos import (
    ChaosBackend,
    FleetChaosCell,
    run_fleet_chaos_campaign,
    run_fleet_chaos_matrix,
)


class InnerStub:
    """Minimal backend for ChaosBackend unit tests."""

    def __init__(self, name="inner"):
        self.name = name
        self.compiles = 0

    def compile(self, request):
        self.compiles += 1
        return f"outcome-{self.compiles}"

    def alive(self):
        return True

    def probe(self):
        return {"ok": True}

    def close(self):
        pass


class TestChaosBackend:
    def test_transparent_without_a_plan(self):
        backend = ChaosBackend(InnerStub())
        assert backend.compile(None) == "outcome-1"
        assert backend.alive()
        assert backend.probe() == {"ok": True}

    def test_kill_persists_until_restart(self):
        inner = InnerStub()
        backend = ChaosBackend(inner)
        plan = FaultPlan.single("fleet", "kill", at=1, times=1)
        with inject_faults(plan):
            with pytest.raises(ServiceError):
                backend.compile(None)
            # The fault fired once, but the killed state persists for
            # every later dispatch AND for probes.
            with pytest.raises(ServiceError):
                backend.compile(None)
            with pytest.raises(ServiceError):
                backend.probe()
            assert not backend.alive()
        assert inner.compiles == 0  # nothing reached the real backend
        backend.restart()
        assert backend.alive()
        assert backend.compile(None) == "outcome-1"
        assert backend.served_since_restart == 1

    def test_partition_is_a_bounded_window(self):
        backend = ChaosBackend(InnerStub())
        plan = FaultPlan.single("fleet", "partition", at=1, times=2)
        with inject_faults(plan):
            with pytest.raises(ServiceError):
                backend.compile(None)
            with pytest.raises(ServiceError):
                backend.compile(None)
            # The window closed: traffic flows again, no restart needed.
            assert backend.compile(None) == "outcome-1"

    def test_slow_serves_correctly_after_the_stall(self):
        backend = ChaosBackend(InnerStub(), slow_s=0.01)
        plan = FaultPlan.single("fleet", "slow", at=1, times=1)
        with inject_faults(plan):
            assert backend.compile(None) == "outcome-1"

    def test_hang_stalls_then_fails(self):
        import time

        backend = ChaosBackend(InnerStub(), hang_s=0.05)
        plan = FaultPlan.single("fleet", "hang", at=1, times=1)
        with inject_faults(plan):
            t0 = time.perf_counter()
            with pytest.raises(ServiceError):
                backend.compile(None)
            assert time.perf_counter() - t0 >= 0.05

    def test_mark_dead_is_router_side_and_probe_ignores_it(self):
        backend = ChaosBackend(InnerStub())
        backend.mark_dead()
        assert not backend.alive()
        # The probe asks the backend itself — this is what readmission
        # after a restart relies on.
        assert backend.probe() == {"ok": True}
        backend.mark_alive()
        assert backend.alive()


class TestCampaigns:
    @pytest.mark.parametrize("kind", FLEET_FAULT_KINDS)
    def test_every_kind_heals(self, kind):
        cell = run_fleet_chaos_campaign(
            kind, seed=0, wave=4, hang_s=0.05, slow_s=0.02
        )
        assert cell.ok, cell.describe()
        assert cell.outcome == "healed"
        assert cell.lost == 0
        assert cell.fired
        assert cell.readmitted
        assert cell.victim_served_after_heal >= 1
        assert cell.p99_ms <= cell.p99_bound_ms

    def test_kill_campaign_restarted_backend_serves_within_budget(self):
        """Satellite regression: a killed-and-restarted backend receives
        traffic again within the readmission budget (a few probe
        intervals), with zero lost tickets along the way."""
        cell = run_fleet_chaos_campaign(
            "kill", seed=1, wave=4, readmit_timeout_s=5.0
        )
        assert cell.outcome == "healed", cell.describe()
        assert cell.readmitted
        assert cell.victim_served_after_heal >= 1
        assert cell.lost == 0

    def test_campaigns_are_seed_deterministic(self):
        a = run_fleet_chaos_campaign("partition", seed=3, wave=3)
        b = run_fleet_chaos_campaign("partition", seed=3, wave=3)
        assert a.outcome == b.outcome == "healed"
        assert a.requests == b.requests
        assert a.reroutes == b.reroutes

    def test_unknown_kind_is_typed(self):
        with pytest.raises(ServiceError):
            run_fleet_chaos_campaign("meteor")

    def test_matrix_covers_all_kinds_and_reports(self, tmp_path):
        result = run_fleet_chaos_matrix(
            wave=3, out_dir=str(tmp_path), hang_s=0.05, slow_s=0.02
        )
        assert [c.kind for c in result.cells] == list(FLEET_FAULT_KINDS)
        assert result.ok, result.describe()
        # Healthy campaigns write no failure reports.
        assert list(tmp_path.iterdir()) == []

    def test_failing_cell_writes_a_report(self, tmp_path, monkeypatch):
        import repro.resilience.fleet_chaos as fc

        def bad_campaign(kind, **kwargs):
            return FleetChaosCell(
                kind=kind, outcome="lost-tickets", lost=2, requests=4
            )

        monkeypatch.setattr(fc, "run_fleet_chaos_campaign", bad_campaign)
        result = fc.run_fleet_chaos_matrix(
            kinds=["kill"], out_dir=str(tmp_path)
        )
        assert not result.ok
        report = tmp_path / "fleet-chaos-kill.json"
        assert report.exists()
        import json

        data = json.loads(report.read_text())
        assert data["outcome"] == "lost-tickets"
        assert data["lost"] == 2


class TestMatrixShape:
    def test_fleet_matrix_is_the_kind_tuple(self):
        assert FLEET_FAULT_MATRIX == tuple(
            ("fleet", kind) for kind in FLEET_FAULT_KINDS
        )


class TestCampaignEvents:
    def test_fault_campaign_records_matching_events(self):
        """Acceptance: an injected chaos fault produces structured
        control-plane events that the cell records and asserts on."""
        from repro.resilience.fleet_chaos import CAMPAIGN_EXPECTED_EVENTS

        cell = run_fleet_chaos_campaign("kill", seed=0, wave=4)
        assert cell.ok, cell.describe()
        for kind in CAMPAIGN_EXPECTED_EVENTS["kill"]:
            assert cell.events.get(kind, 0) >= 1, cell.events
        assert "events" in cell.to_dict()

    def test_slow_fault_expects_no_control_plane_events(self):
        # "slow" is latency-only: nothing trips, nothing reroutes, so a
        # reroute event here would itself be a bug.
        from repro.resilience.fleet_chaos import CAMPAIGN_EXPECTED_EVENTS

        assert CAMPAIGN_EXPECTED_EVENTS["slow"] == ()
        cell = run_fleet_chaos_campaign("slow", seed=0, wave=4, slow_s=0.02)
        assert cell.ok, cell.describe()
        assert cell.outcome == "healed"

    def test_expected_events_cover_every_kind(self):
        from repro.resilience.fleet_chaos import CAMPAIGN_EXPECTED_EVENTS

        assert set(CAMPAIGN_EXPECTED_EVENTS) == set(FLEET_FAULT_KINDS)
