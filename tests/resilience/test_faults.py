"""Deterministic fault injection: plans, schedules, and the replay reset."""

import pytest

from repro.errors import InjectedFaultError
from repro.resilience.faults import (
    FAULT_MATRIX,
    FLEET_FAULT_KINDS,
    FLEET_FAULT_MATRIX,
    KINDS,
    PIPELINE_STAGES,
    STAGES,
    FaultPlan,
    FaultSpec,
    active_plan,
    inject_faults,
    maybe_inject,
)


class TestFaultSpec:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="nosuchstage")

    def test_kind_must_apply_to_stage(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="analysis", kind="nan")
        with pytest.raises(ValueError):
            FaultSpec(stage="simulator", kind="corrupt")

    def test_fires_at_window(self):
        spec = FaultSpec(stage="search", at=2, times=2)
        assert [spec.fires_at(i) for i in range(1, 6)] == [
            False, True, True, False, False,
        ]

    def test_times_zero_fires_forever(self):
        spec = FaultSpec(stage="search", at=3, times=0)
        assert not spec.fires_at(2)
        assert all(spec.fires_at(i) for i in range(3, 50))

    def test_round_trip(self):
        spec = FaultSpec(stage="memo", kind="stale", at=4, times=2)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultMatrix:
    def test_matrix_covers_every_pipeline_stage(self):
        assert {stage for stage, _ in FAULT_MATRIX} == set(PIPELINE_STAGES)

    def test_matrix_kinds_are_valid(self):
        for stage, kind in FAULT_MATRIX + FLEET_FAULT_MATRIX:
            assert kind in KINDS
            FaultSpec(stage=stage, kind=kind)  # must not raise

    def test_exception_applies_everywhere(self):
        exception_stages = {s for s, k in FAULT_MATRIX if k == "exception"}
        assert exception_stages == set(PIPELINE_STAGES)
        FaultSpec(stage="fleet", kind="exception")  # must not raise

    def test_fleet_matrix_is_disjoint_from_pipeline_matrix(self):
        # ``repro chaos`` (pipeline) and ``repro fleet chaos`` iterate
        # disjoint matrices: a fleet fault needs a running fleet to fire.
        assert set(STAGES) - set(PIPELINE_STAGES) == {"fleet"}
        assert {stage for stage, _ in FLEET_FAULT_MATRIX} == {"fleet"}
        assert {kind for _, kind in FLEET_FAULT_MATRIX} == set(
            FLEET_FAULT_KINDS
        )
        assert not set(FLEET_FAULT_MATRIX) & set(FAULT_MATRIX)


class TestFaultPlan:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        assert maybe_inject("analysis") is None

    def test_exception_kind_raises_with_stage(self):
        plan = FaultPlan.single("analysis", "exception")
        with inject_faults(plan):
            with pytest.raises(InjectedFaultError) as info:
                maybe_inject("analysis")
        assert info.value.stage == "analysis"
        assert plan.fired == [("analysis", "exception", 1)]

    def test_data_kind_returned_not_raised(self):
        plan = FaultPlan.single("memo", "corrupt")
        with inject_faults(plan):
            spec = maybe_inject("memo")
        assert spec is not None and spec.kind == "corrupt"

    def test_fires_on_nth_invocation_only(self):
        plan = FaultPlan.single("search", "deadline", at=3)
        with inject_faults(plan):
            assert maybe_inject("search") is None
            assert maybe_inject("search") is None
            assert maybe_inject("search") is not None
            assert maybe_inject("search") is None

    def test_reinstall_resets_counters(self):
        """The replay guarantee: the same plan over the same call sequence
        fires identically every time it is (re)installed."""
        plan = FaultPlan.single("search", "deadline", at=2)

        def drive():
            fired = []
            for _ in range(4):
                fired.append(maybe_inject("search") is not None)
            return fired

        with inject_faults(plan):
            first = drive()
        with inject_faults(plan):
            second = drive()
        assert first == second == [False, True, False, False]

    def test_nested_install_restores_previous(self):
        outer = FaultPlan.single("analysis")
        inner = FaultPlan.single("codegen")
        with inject_faults(outer):
            with inject_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_random_plan_is_seed_deterministic(self):
        assert (
            FaultPlan.random(seed=7).to_dict()
            == FaultPlan.random(seed=7).to_dict()
        )
        assert (
            FaultPlan.random(seed=7).to_dict()
            != FaultPlan.random(seed=8).to_dict()
        )

    def test_plan_round_trip(self):
        plan = FaultPlan.random(seed=3, count=4)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.specs == plan.specs
        assert clone.seed == plan.seed

    def test_describe_lists_specs(self):
        plan = FaultPlan.single("memo", "stale", at=2)
        assert "memo/stale@2" in plan.describe()
        assert FaultPlan().describe() == "fault plan: empty"
