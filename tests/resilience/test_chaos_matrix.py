"""The full fault matrix through the pipeline: every cell must be green.

This is the acceptance gate the ISSUE names: for every valid
(stage, kind) pair the pipeline either degrades with a bit-identical
result or raises a typed error with a replayable report — never a bare
traceback, never a silently wrong result.
"""

from repro.analysis.cache import clear_caches
from repro.resilience.chaos import GOOD_OUTCOMES, run_chaos_matrix
from repro.resilience.faults import FAULT_MATRIX


class TestChaosMatrix:
    def test_full_matrix_is_green(self, sum_rows_program):
        clear_caches()
        result = run_chaos_matrix(
            sum_rows_program, sizes={"R": 12, "C": 8}
        )
        assert len(result.cells) == len(FAULT_MATRIX)
        bad = [c.describe() for c in result.cells if not c.ok]
        assert result.ok, "chaos violations:\n" + "\n".join(bad)

    def test_matrix_exercises_both_resilience_modes(self, sum_rows_program):
        clear_caches()
        result = run_chaos_matrix(
            sum_rows_program, sizes={"R": 12, "C": 8}
        )
        outcomes = {c.outcome for c in result.cells}
        # Some stages degrade (search, optimizer, memo), some escape as
        # typed reported errors (analysis, codegen, interpreter, ...).
        assert "degraded" in outcomes
        assert "typed-error" in outcomes
        assert outcomes <= set(GOOD_OUTCOMES)

    def test_typed_errors_carry_reports_and_artifacts(
        self, tmp_path, sum_rows_program
    ):
        clear_caches()
        result = run_chaos_matrix(
            sum_rows_program,
            pairs=[("analysis", "exception"), ("codegen", "exception")],
            sizes={"R": 12, "C": 8},
            out_dir=str(tmp_path),
        )
        assert result.ok
        for cell in result.cells:
            assert cell.outcome == "typed-error"
            assert cell.report is not None
            assert cell.artifact_path is not None

    def test_fault_firing_is_recorded(self, sum_rows_program):
        clear_caches()
        result = run_chaos_matrix(
            sum_rows_program,
            pairs=[("search", "exception")],
            sizes={"R": 12, "C": 8},
        )
        (cell,) = result.cells
        assert cell.fired
        assert cell.outcome == "degraded"
