"""Replayable failure reports: build, persist, load, and re-execute."""

import json

import pytest

from repro.errors import InjectedFaultError, ReproError
from repro.resilience.faults import FaultPlan, inject_faults
from repro.resilience.reports import (
    REPORT_VERSION,
    FailureReport,
    load_failure_report,
    replay_failure_report,
    write_failure_report,
)
from repro.runtime.session import GpuSession


def _failing_compile(program, stage="analysis", report_dir=None):
    """Compile under an injected fault; returns the escaping exception."""
    with inject_faults(FaultPlan.single(stage, "exception")):
        session = GpuSession(report_dir=report_dir)
        with pytest.raises(InjectedFaultError) as info:
            session.compile(program, R=16, C=8)
    return info.value


class TestFailureReports:
    def test_escaping_error_carries_report(self, sum_rows_program):
        exc = _failing_compile(sum_rows_program)
        report = exc.failure_report
        assert report.stage == "analysis"
        assert report.error_type == "InjectedFaultError"
        assert report.program_ir is not None
        assert report.fault_plan is not None
        assert report.sizes == {"R": 16, "C": 8}

    def test_report_dir_writes_artifact(self, tmp_path, sum_rows_program):
        exc = _failing_compile(
            sum_rows_program, report_dir=str(tmp_path)
        )
        path = exc.failure_report_path
        assert path is not None
        payload = json.loads(open(path).read())
        assert payload["version"] == REPORT_VERSION
        assert payload["stage"] == "analysis"

    def test_write_load_round_trip(self, tmp_path, sum_rows_program):
        report = _failing_compile(sum_rows_program).failure_report
        path = write_failure_report(report, str(tmp_path))
        loaded = load_failure_report(path)
        assert loaded.to_dict() == report.to_dict()

    def test_unsupported_version_rejected(self):
        with pytest.raises(ReproError):
            FailureReport.from_dict({"version": 999, "stage": "analysis"})

    def test_describe_mentions_stage_and_plan(self, sum_rows_program):
        report = _failing_compile(sum_rows_program).failure_report
        text = report.describe()
        assert "analysis" in text
        assert "fault plan" in text


class TestReplay:
    def test_replay_reproduces_injected_failure(
        self, tmp_path, sum_rows_program
    ):
        """The acceptance bar: a persisted report re-executes the same
        pipeline and reproduces the same typed error deterministically."""
        report = _failing_compile(sum_rows_program).failure_report
        path = write_failure_report(report, str(tmp_path))
        outcome = replay_failure_report(load_failure_report(path))
        assert outcome.reproduced
        assert outcome.error_type == "InjectedFaultError"

    def test_replay_is_deterministic(self, sum_rows_program):
        report = _failing_compile(sum_rows_program).failure_report
        first = replay_failure_report(report)
        second = replay_failure_report(report)
        assert first.reproduced and second.reproduced
        assert first.error_message == second.error_message

    def test_replay_interpreter_stage(self, sum_rows_program):
        import dataclasses

        program = dataclasses.replace(
            sum_rows_program, size_hints={"R": 8, "C": 8}
        )
        with inject_faults(FaultPlan.single("interpreter", "exception")):
            session = GpuSession()
            compiled = session.compile(program, R=8, C=8)
            from repro.difftest.oracle import make_inputs

            inputs = make_inputs(compiled.program, seed=0)
            with pytest.raises(InjectedFaultError) as info:
                compiled.run(seed=0, **inputs)
        outcome = replay_failure_report(info.value.failure_report)
        assert outcome.reproduced

    def test_replay_without_ir_is_honest(self):
        report = FailureReport(
            stage="analysis",
            error_type="AnalysisError",
            error_message="synthetic",
        )
        outcome = replay_failure_report(report)
        assert not outcome.reproduced
        assert "no serialized program" in outcome.detail


class TestTraceTruncation:
    def test_long_campaign_report_declares_truncation(self, sum_rows_program):
        # A compile that fails after >100 trace events must say how much
        # of the tail was dropped instead of silently looking complete.
        from repro.observability import capture, get_tracer

        with capture():
            tracer = get_tracer()
            for index in range(150):
                with tracer.span(f"warmup-{index}"):
                    pass
            exc = _failing_compile(sum_rows_program)
        report = exc.failure_report
        assert report.trace is not None
        assert len(report.trace) == 100
        assert report.trace_truncated is True
        assert report.trace_dropped_events > 0
        assert "dropped" in report.describe()

    def test_short_trace_is_not_truncated(self, sum_rows_program):
        from repro.observability import capture

        with capture():
            exc = _failing_compile(sum_rows_program)
        report = exc.failure_report
        assert report.trace_truncated is False
        assert report.trace_dropped_events == 0
        assert "dropped" not in report.describe()

    def test_truncation_round_trips_through_artifact(
        self, tmp_path, sum_rows_program
    ):
        from repro.observability import capture, get_tracer
        from repro.resilience.reports import load_failure_report

        with capture():
            tracer = get_tracer()
            for index in range(120):
                with tracer.span(f"warmup-{index}"):
                    pass
            exc = _failing_compile(sum_rows_program)
        path = write_failure_report(exc.failure_report, str(tmp_path))
        loaded = load_failure_report(path)
        assert loaded.trace_truncated is True
        assert loaded.trace_dropped_events == (
            exc.failure_report.trace_dropped_events
        )
        document = json.loads(open(path).read())
        assert document["truncated"] is True
        assert document["dropped_events"] > 0
