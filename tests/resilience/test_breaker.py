"""Circuit breaker state machine: every transition, zero sleeps.

The breaker's clock is injectable, so open-state cooldowns advance by
mutating a fake clock — the whole suite runs in milliseconds.  The
router-level tests at the bottom drive the same transitions through
``FleetRouter.probe_backends`` with the deterministic fault injector
deciding which probes fail, proving the dispatch/probe plumbing feeds
the breaker the way the unit tests assume.
"""

import pytest

from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_CODES,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, reset_timeout_s=10.0, clock=clock
    )


class TestClosedState:
    def test_starts_closed_and_available(self, breaker):
        assert breaker.state == BREAKER_CLOSED
        assert breaker.available()
        assert breaker.consecutive_failures == 0

    def test_failures_below_threshold_stay_closed(self, breaker):
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == BREAKER_CLOSED
        assert breaker.consecutive_failures == 2
        assert breaker.available()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        # Closing an already-closed breaker is not a readmission.
        assert breaker.record_success() is False
        assert breaker.consecutive_failures == 0
        # The count restarts: two more failures still don't trip it.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_begin_probe_is_a_no_op_while_closed(self, breaker):
        assert breaker.begin_probe() is False
        assert breaker.state == BREAKER_CLOSED


class TestTripping:
    def test_threshold_consecutive_failures_trip_it_open(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        # Exactly the tripping failure reports True.
        assert breaker.record_failure() is True
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_count == 1

    def test_open_breaker_unavailable_until_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.available()
        clock.advance(9.9)
        assert not breaker.available()
        clock.advance(0.2)  # past reset_timeout_s
        assert breaker.available()

    def test_failure_while_open_restarts_the_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.0)
        # A late failure (a last-resort dispatch that also failed) is
        # not a new trip, but it does push the half-open probe back.
        assert breaker.record_failure() is False
        assert breaker.opened_count == 1
        clock.advance(9.0)
        assert not breaker.available()
        clock.advance(1.1)
        assert breaker.available()


class TestHalfOpen:
    def trip(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)

    def test_begin_probe_needs_the_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.begin_probe() is False  # still cooling down
        clock.advance(10.1)
        assert breaker.begin_probe() is True
        assert breaker.state == BREAKER_HALF_OPEN

    def test_closed_to_open_to_half_open_to_closed(self, breaker, clock):
        """The readmission path: the PR's headline state walk."""
        self.trip(breaker, clock)
        assert breaker.begin_probe() is True
        # The successful probe readmits: record_success reports it.
        assert breaker.record_success() is True
        assert breaker.state == BREAKER_CLOSED
        assert breaker.available()
        # Fully healthy again: the failure count restarted.
        assert breaker.record_failure() is False
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_failure_reopens(self, breaker, clock):
        self.trip(breaker, clock)
        assert breaker.begin_probe() is True
        # One failed trial re-opens immediately (no threshold count).
        assert breaker.record_failure() is True
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_count == 2
        # And the cooldown restarted from the re-open.
        assert not breaker.available()
        clock.advance(10.1)
        assert breaker.available()

    def test_half_open_is_available_for_dispatch(self, breaker, clock):
        self.trip(breaker, clock)
        breaker.begin_probe()
        assert breaker.available()


class TestReporting:
    def test_describe_snapshot(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        snap = breaker.describe()
        assert snap["state"] == BREAKER_OPEN
        assert snap["opened_count"] == 1
        assert snap["closed_count"] == 0
        assert snap["open_age_s"] == pytest.approx(4.0)
        breaker.record_success()
        snap = breaker.describe()
        assert snap["state"] == BREAKER_CLOSED
        assert snap["closed_count"] == 1
        assert snap["open_age_s"] is None

    def test_state_codes_cover_every_state(self):
        assert BREAKER_STATE_CODES == {
            BREAKER_CLOSED: 0,
            BREAKER_HALF_OPEN: 1,
            BREAKER_OPEN: 2,
        }

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)


class TestRouterDrivenTransitions:
    """The same walk, driven through the router's probe plumbing with
    the deterministic fault injector deciding which probes fail."""

    def make_router(self, clock):
        from repro.resilience.fleet_chaos import ChaosBackend
        from repro.service.fleet import FleetConfig, FleetRouter
        from repro.service.service import CompileService, ServiceConfig

        service = CompileService(
            ServiceConfig(cache_dir=None, memo_persistence=False),
            compile_fn=lambda req, digest: None,
        )
        from repro.service.fleet import LocalBackend

        victim = ChaosBackend(LocalBackend("b0", service))
        router = FleetRouter(
            [victim],
            FleetConfig(
                probe_interval_s=0.0,  # no thread: tests drive probes
                breaker_failure_threshold=2,
                breaker_reset_timeout_s=5.0,
                clock=clock,
            ),
        )
        return router, victim

    def test_probe_failures_trip_and_probe_success_readmits(self, clock):
        router, victim = self.make_router(clock)
        try:
            breaker = router._breakers["b0"]
            assert router.probe_backends() == {"b0": True}

            # Deterministic fault: the victim dies (kill persists until
            # restart), so probes start failing.
            victim._killed = True
            assert router.probe_backends() == {"b0": False}
            assert breaker.state == BREAKER_CLOSED  # 1 of 2 failures
            assert router.probe_backends() == {"b0": False}
            assert breaker.state == BREAKER_OPEN  # tripped
            assert not victim.alive()  # trip marked it dead
            assert router.stats()["breaker_opened"] == 1

            # Cooling down: the prober skips the backend entirely.
            probes_before = router.stats()["probes"]
            assert router.probe_backends() == {"b0": False}
            assert router.stats()["probes"] == probes_before

            # Cooldown elapses -> half-open trial; still dead -> reopen.
            clock.advance(5.1)
            assert router.probe_backends() == {"b0": False}
            assert breaker.state == BREAKER_OPEN
            assert breaker.opened_count == 2

            # Restart the backend; the next eligible probe readmits it.
            victim.restart()
            clock.advance(5.1)
            assert router.probe_backends() == {"b0": True}
            assert breaker.state == BREAKER_CLOSED
            assert victim.alive()
            assert router.stats()["readmissions"] >= 1
            stats = router.stats()["backends"]["b0"]
            assert stats["breaker"]["state"] == BREAKER_CLOSED
            assert stats["alive"] is True
        finally:
            router.close()
