"""Jittered-backoff retry and file-backed campaign checkpoints."""

import json

import pytest

from repro.errors import AnalysisError, ReproError
from repro.resilience.retry import (
    Checkpoint,
    backoff_delays,
    retry_with_backoff,
)


class TestBackoffDelays:
    def test_seed_deterministic(self):
        assert backoff_delays(5, seed=3) == backoff_delays(5, seed=3)
        assert backoff_delays(5, seed=3) != backoff_delays(5, seed=4)

    def test_delays_within_growing_caps(self):
        delays = backoff_delays(6, base_delay=0.05, max_delay=2.0, seed=0)
        for attempt, delay in enumerate(delays):
            assert 0.0 <= delay <= min(2.0, 0.05 * (2 ** attempt))


class TestRetryWithBackoff:
    def test_succeeds_after_transient_failures(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise AnalysisError("transient")
            return "done"

        assert retry_with_backoff(
            flaky, retries=3, sleep=slept.append
        ) == "done"
        assert len(calls) == 3
        assert slept == list(backoff_delays(3)[:2])

    def test_final_error_propagates_typed(self):
        slept = []

        def dead():
            raise AnalysisError("permanent")

        with pytest.raises(AnalysisError):
            retry_with_backoff(dead, retries=2, sleep=slept.append)
        assert len(slept) == 2  # retries count re-tries, not attempts

    def test_non_retryable_error_escapes_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise KeyError("not a pipeline error")

        with pytest.raises(KeyError):
            retry_with_backoff(wrong, retries=5, sleep=lambda _: None)
        assert len(calls) == 1

    def test_on_retry_observes_schedule(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise AnalysisError("transient")
            return True

        assert retry_with_backoff(
            flaky,
            retries=4,
            sleep=lambda _: None,
            on_retry=lambda attempt, exc, delay: seen.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert seen == [(1, "AnalysisError"), (2, "AnalysisError")]


class TestCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = Checkpoint(path, key={"seed": 1})
        assert checkpoint.load() is None
        checkpoint.save({"next_index": 7})
        assert checkpoint.load() == {"next_index": 7}

    def test_key_mismatch_discards_state(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        Checkpoint(path, key={"seed": 1}).save({"next_index": 7})
        assert Checkpoint(path, key={"seed": 2}).load() is None

    def test_corrupt_file_downgrades_to_none(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        assert Checkpoint(str(path), key={}).load() is None

    def test_version_mismatch_discards_state(self, tmp_path):
        path = tmp_path / "ckpt.json"
        payload = {"version": 999, "key": {}, "state": {"next_index": 1}}
        path.write_text(json.dumps(payload))
        assert Checkpoint(str(path), key={}).load() is None

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        checkpoint = Checkpoint(str(path), key={})
        checkpoint.save({"next_index": 1})
        assert path.exists()
        checkpoint.clear()
        assert not path.exists()
        checkpoint.clear()  # idempotent


class TestCampaignResume:
    """run_campaign checkpoint/retry (the difftest loop wiring)."""

    @staticmethod
    def _ok_report(spec):
        from repro.difftest.oracle import OracleReport

        return OracleReport(program_name=spec.describe(), spec=spec)

    def test_crash_is_retried_then_recorded(self):
        from repro.difftest.runner import run_campaign

        attempts = {}

        def check(spec):
            key = spec.describe()
            attempts[key] = attempts.get(key, 0) + 1
            raise AnalysisError("always dead")

        result = run_campaign(
            seed=0, budget=1, include_templates=False,
            check=check, retries=2, sleep=lambda _: None,
        )
        # Not killed: the crash became a recorded failure after retries.
        assert result.checked == 1
        assert len(result.failures) == 1
        (record,) = result.failures
        assert record.report.failures[0].stage == "crash"
        assert "AnalysisError" in record.report.failures[0].message
        assert list(attempts.values()) == [3]  # 1 try + 2 retries

    def test_transient_crash_recovers_silently(self):
        from repro.difftest.runner import run_campaign

        calls = []

        def check(spec):
            calls.append(spec)
            if len(calls) == 1:
                raise AnalysisError("transient")
            return self._ok_report(spec)

        result = run_campaign(
            seed=0, budget=2, include_templates=False,
            check=check, retries=1, sleep=lambda _: None,
        )
        assert result.ok
        assert result.checked == 2

    def test_interrupted_campaign_resumes_from_checkpoint(self, tmp_path):
        from repro.difftest.runner import run_campaign

        path = str(tmp_path / "campaign.json")
        first_run = []

        def dies_at_third(spec):
            first_run.append(spec)
            if len(first_run) == 3:
                raise RuntimeError("simulated interruption")
            return self._ok_report(spec)

        with pytest.raises(RuntimeError):
            run_campaign(
                seed=0, budget=5, include_templates=False,
                check=dies_at_third, checkpoint_path=path,
            )

        second_run = []

        def works(spec):
            second_run.append(spec)
            return self._ok_report(spec)

        result = run_campaign(
            seed=0, budget=5, include_templates=False,
            check=works, checkpoint_path=path,
        )
        assert result.checked == 5
        # The two completed specs were not re-checked.
        assert len(second_run) == 3
        # Completion clears the checkpoint.
        assert not (tmp_path / "campaign.json").exists()

    def test_checkpoint_preserves_recorded_failures(self, tmp_path):
        from repro.difftest.runner import run_campaign

        path = str(tmp_path / "campaign.json")
        state = {"first": None, "others": 0}

        def check(spec):
            name = spec.describe()
            if state["first"] is None:
                state["first"] = name
            if name == state["first"]:
                raise AnalysisError("dies every time")
            state["others"] += 1
            if state["others"] == 2:
                raise RuntimeError("simulated interruption")
            return self._ok_report(spec)

        with pytest.raises(RuntimeError):
            run_campaign(
                seed=0, budget=4, include_templates=False,
                check=check, checkpoint_path=path,
                retries=1, sleep=lambda _: None,
            )

        result = run_campaign(
            seed=0, budget=4, include_templates=False,
            check=lambda spec: self._ok_report(spec),
            checkpoint_path=path,
        )
        assert result.checked == 4
        # The crash-failure recorded before the interruption survived it.
        assert len(result.failures) == 1
        assert result.failures[0].report.failures[0].stage == "crash"

    def test_different_parameters_ignore_stale_checkpoint(self, tmp_path):
        from repro.difftest.runner import run_campaign

        path = str(tmp_path / "campaign.json")

        def dies_last(spec, _counter=[]):
            _counter.append(spec)
            if len(_counter) == 2:
                raise RuntimeError("boom")
            return self._ok_report(spec)

        with pytest.raises(RuntimeError):
            run_campaign(
                seed=0, budget=2, include_templates=False,
                check=dies_last, checkpoint_path=path,
            )

        # A different seed is a different campaign: starts from spec 0.
        calls = []
        result = run_campaign(
            seed=1, budget=2, include_templates=False,
            check=lambda spec: (calls.append(spec), self._ok_report(spec))[1],
            checkpoint_path=path,
        )
        assert result.checked == 2
        assert len(calls) == 2


class TestExperimentsResume:
    """write_experiments_md checkpoint/retry (the figures sweep wiring)."""

    class _Fake:
        def __init__(self, title):
            self.title = title

        def render(self):
            return f"# {self.title}\n\nheader\nrow-{self.title}"

    def _install_registry(self, monkeypatch, fail_once_on=None):
        import repro.figures.runner as runner

        state = {"failed": False}

        def make(eid):
            def fn(device=None):
                if eid == fail_once_on and not state["failed"]:
                    state["failed"] = True
                    raise AnalysisError(f"{eid} transient")
                return self._Fake(eid)
            return fn

        registry = {"expA": make("expA"), "expB": make("expB")}
        monkeypatch.setattr(runner, "EXPERIMENTS", registry)
        return state

    def test_sweep_resumes_after_crash(self, tmp_path, monkeypatch):
        from repro.figures.runner import write_experiments_md

        self._install_registry(monkeypatch, fail_once_on="expB")
        out = tmp_path / "EXP.md"
        ckpt = str(tmp_path / "sweep.json")

        with pytest.raises(AnalysisError):
            write_experiments_md(str(out), checkpoint_path=ckpt)
        assert not out.exists()  # a partial sweep never writes the file
        saved = json.loads((tmp_path / "sweep.json").read_text())
        assert "expA" in saved["state"]["sections"]

        write_experiments_md(str(out), checkpoint_path=ckpt)
        text = out.read_text()
        assert "row-expA" in text and "row-expB" in text
        assert not (tmp_path / "sweep.json").exists()

    def test_sweep_retries_transient_failure(self, tmp_path, monkeypatch):
        from repro.figures.runner import write_experiments_md

        state = self._install_registry(monkeypatch, fail_once_on="expA")
        out = tmp_path / "EXP.md"
        write_experiments_md(
            str(out), retries=1, sleep=lambda _: None
        )
        assert state["failed"]
        assert "row-expA" in out.read_text()
