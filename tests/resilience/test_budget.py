"""Budgeted execution: node budgets, deadlines, and graceful fallback."""

import time

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.scoring import hard_feasible
from repro.analysis.search import search_mapping, search_mapping_reference
from repro.errors import BudgetExhaustedError
from repro.resilience.budget import CLOCK_STRIDE, Budget


class FakeClock:
    """An injectable monotonic clock advanced by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBudget:
    def test_default_budget_never_exhausts(self):
        budget = Budget().start()
        for _ in range(10_000):
            assert budget.spend()
        assert not budget.exhausted()
        assert not budget.bounded

    def test_node_budget_exhausts_exactly(self):
        budget = Budget(max_nodes=10).start()
        for _ in range(10):
            assert budget.spend()
        assert not budget.exhausted()
        assert not budget.spend()
        assert budget.exhausted()
        assert budget.nodes_spent == 11

    def test_deadline_sampled_at_clock_stride(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock).start()
        clock.now = 5.0  # deadline long past, but the clock is amortized
        for _ in range(CLOCK_STRIDE - 1):
            assert budget.spend()
        assert not budget.spend()  # the stride-th spend samples the clock
        assert budget.exhausted()

    def test_exhausted_samples_clock_immediately(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock).start()
        assert not budget.exhausted()
        clock.now = 1.5
        assert budget.exhausted()

    def test_fresh_copies_limits_not_spend(self):
        budget = Budget(max_nodes=5).start()
        for _ in range(6):
            budget.spend()
        assert budget.exhausted()
        child = budget.fresh()
        assert child.max_nodes == 5
        assert child.nodes_spent == 0
        assert not child.exhausted()

    def test_force_expire(self):
        budget = Budget().start()
        budget.force_expire()
        assert budget.exhausted()
        assert not budget.spend()

    def test_check_raises_typed_error(self):
        budget = Budget(max_nodes=0).start()
        budget.spend()
        with pytest.raises(BudgetExhaustedError):
            budget.check("unit test")

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline_s=-1.0)
        with pytest.raises(ValueError):
            Budget(max_nodes=-1)


class TestBudgetedSearch:
    def test_exhausted_budget_degrades_to_feasible_fallback(self):
        cset = ConstraintSet()
        sizes = (32, 32, 32)
        result = search_mapping(
            3, cset, sizes, use_cache=False, budget=Budget(max_nodes=50)
        )
        assert result.degraded
        assert result.strategy == "fallback"
        assert result.degraded_reason
        assert hard_feasible(result.mapping, cset, sizes)

    def test_depth4_search_bounded_time_under_budget(self):
        """The acceptance bar: a depth-4 search with an exhausted budget
        returns the fallback in bounded time instead of enumerating the
        exponential candidate space."""
        cset = ConstraintSet()
        sizes = (16, 16, 16, 16)
        start = time.perf_counter()
        result = search_mapping(
            4, cset, sizes, use_cache=False, budget=Budget(max_nodes=100)
        )
        elapsed = time.perf_counter() - start
        assert result.degraded
        assert hard_feasible(result.mapping, cset, sizes)
        assert elapsed < 1.0, (
            f"budgeted depth-4 search took {elapsed:.2f}s; the budget "
            "is not bounding the walk"
        )

    def test_ample_budget_matches_unbudgeted_search(self):
        cset = ConstraintSet()
        sizes = (64, 64)
        unbudgeted = search_mapping(2, cset, sizes, use_cache=False)
        budgeted = search_mapping(
            2, cset, sizes, use_cache=False,
            budget=Budget(max_nodes=10_000_000),
        )
        assert not budgeted.degraded
        assert budgeted.mapping == unbudgeted.mapping
        assert budgeted.score == unbudgeted.score

    def test_reference_search_also_degrades(self):
        cset = ConstraintSet()
        sizes = (32, 32, 32)
        result = search_mapping_reference(
            3, cset, sizes, budget=Budget(max_nodes=50)
        )
        assert result.degraded
        assert hard_feasible(result.mapping, cset, sizes)

    def test_degraded_result_not_cached(self):
        from repro.analysis.cache import clear_caches, get_search_cache

        clear_caches()
        cset = ConstraintSet()
        sizes = (32, 32, 32)
        degraded = search_mapping(
            3, cset, sizes, budget=Budget(max_nodes=10)
        )
        assert degraded.degraded
        assert len(get_search_cache()) == 0
        full = search_mapping(3, cset, sizes)
        assert not full.degraded
        clear_caches()
