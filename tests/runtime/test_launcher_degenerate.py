"""Degenerate launches: empty domains, size 1, oversized, infeasible.

``adjust_at_launch`` re-derives block sizes at runtime; these tests pin
the behavior at the edges of that re-derivation — a degenerate domain
launches one block, an impossible geometry raises a typed
:class:`~repro.errors.LaunchError`, never an ``IndexError``.
"""

import pytest

from repro.analysis import analyze_program
from repro.analysis.scoring import hard_feasible
from repro.analysis.search import search_mapping
from repro.errors import LaunchError
from repro.runtime.launcher import adjust_at_launch

from tests.conftest import make_sum_rows


@pytest.fixture(scope="module")
def kernel():
    ka = analyze_program(make_sum_rows(), R=256, C=256).kernel(0)
    mapping = search_mapping(
        ka.depth, ka.constraints, ka.level_sizes(), use_cache=False
    ).mapping
    return ka, mapping


class TestDegenerateLaunches:
    def test_empty_domain_launches_one_block(self, kernel):
        ka, mapping = kernel
        adjusted = adjust_at_launch(mapping, ka.constraints, (0, 8))
        # The empty level was clamped to one element: still feasible.
        assert hard_feasible(adjusted, ka.constraints, (1, 8))
        assert adjusted.num_levels == mapping.num_levels

    def test_all_empty_domain(self, kernel):
        ka, mapping = kernel
        adjusted = adjust_at_launch(mapping, ka.constraints, (0, 0))
        assert hard_feasible(adjusted, ka.constraints, (1, 1))

    def test_size_one_domain(self, kernel):
        ka, mapping = kernel
        adjusted = adjust_at_launch(mapping, ka.constraints, (1, 1))
        assert hard_feasible(adjusted, ka.constraints, (1, 1))

    def test_oversized_domain(self, kernel):
        ka, mapping = kernel
        sizes = (1 << 20, 1 << 16)
        adjusted = adjust_at_launch(mapping, ka.constraints, sizes)
        assert hard_feasible(adjusted, ka.constraints, sizes)
        # Structure is preserved: dims and span kinds never change.
        for old, new in zip(mapping.levels, adjusted.levels):
            assert old.dim == new.dim
            assert type(old.span) is type(new.span)

    def test_wrong_arity_raises_typed_error(self, kernel):
        ka, mapping = kernel
        with pytest.raises(LaunchError):
            adjust_at_launch(mapping, ka.constraints, (64,))
        with pytest.raises(LaunchError):
            adjust_at_launch(mapping, ka.constraints, (64, 64, 64))

    def test_negative_size_raises_typed_error(self, kernel):
        ka, mapping = kernel
        with pytest.raises(LaunchError):
            adjust_at_launch(mapping, ka.constraints, (-1, 64))

    def test_no_feasible_geometry_raises_typed_error(self, kernel):
        """A block-size grid with no valid entry must raise LaunchError,
        not fall off the end of the candidate loop with an IndexError."""
        ka, mapping = kernel
        with pytest.raises(LaunchError) as info:
            adjust_at_launch(
                mapping, ka.constraints, (64, 64), block_sizes=(4096,)
            )
        assert "no feasible launch geometry" in str(info.value)
