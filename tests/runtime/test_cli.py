"""Tests for the command-line interface."""

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K20c" in out
        assert "DOP window [26624" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "sumRows" in out and "pagerank" in out

    def test_map(self, capsys):
        assert main(["map", "sumRows", "R=1024", "C=4096"]) == 0
        out = capsys.readouterr().out
        assert "mapping: L0[" in out
        assert "[hard/local]" in out
        assert "occupancy" in out

    def test_map_with_strategy(self, capsys):
        assert main(["map", "sumRows", "--strategy", "1d"]) == 0
        out = capsys.readouterr().out
        assert "[seq]" in out

    def test_cuda(self, capsys):
        assert main(["cuda", "sumRows", "R=256", "C=256"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out

    def test_cuda_with_host(self, capsys):
        assert main(["cuda", "sumRows", "R=256", "C=256", "--host"]) == 0
        out = capsys.readouterr().out
        assert "int main()" in out

    def test_cuda_to_file(self, tmp_path, capsys):
        target = tmp_path / "k.cu"
        assert main(
            ["cuda", "sumRows", "R=64", "C=64", "-o", str(target)]
        ) == 0
        assert "__global__" in target.read_text()

    def test_figures_single(self, capsys):
        assert main(["figures", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_experiments_written(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        assert main(["experiments", "-o", str(target)]) == 0
        text = target.read_text()
        assert "Figure 3" in text and "Figure 17" in text

    def test_unknown_app(self, capsys):
        assert main(["map", "nosuchapp"]) == 2
        err = capsys.readouterr().err
        assert "unknown app" in err

    def test_bad_size_binding(self, capsys):
        assert main(["map", "sumRows", "R:64"]) == 2
        err = capsys.readouterr().err
        assert "k=v" in err

    def test_report(self, capsys):
        assert main(["report", "sumCols", "R=65536", "C=1024"]) == 0
        out = capsys.readouterr().out
        assert "# Compilation report: sumCols" in out
        assert "Why this mapping" in out
        assert "```cuda" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(
            ["report", "sumRows", "R=256", "C=256", "-o", str(target)]
        ) == 0
        assert "Simulated cost" in target.read_text()
