"""Tests for the command-line interface."""

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K20c" in out
        assert "DOP window [26624" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "sumRows" in out and "pagerank" in out

    def test_map(self, capsys):
        assert main(["map", "sumRows", "R=1024", "C=4096"]) == 0
        out = capsys.readouterr().out
        assert "mapping: L0[" in out
        assert "[hard/local]" in out
        assert "occupancy" in out

    def test_map_with_strategy(self, capsys):
        assert main(["map", "sumRows", "--strategy", "1d"]) == 0
        out = capsys.readouterr().out
        assert "[seq]" in out

    def test_cuda(self, capsys):
        assert main(["cuda", "sumRows", "R=256", "C=256"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out

    def test_cuda_with_host(self, capsys):
        assert main(["cuda", "sumRows", "R=256", "C=256", "--host"]) == 0
        out = capsys.readouterr().out
        assert "int main()" in out

    def test_cuda_to_file(self, tmp_path, capsys):
        target = tmp_path / "k.cu"
        assert main(
            ["cuda", "sumRows", "R=64", "C=64", "-o", str(target)]
        ) == 0
        assert "__global__" in target.read_text()

    def test_figures_single(self, capsys):
        assert main(["figures", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_experiments_written(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        assert main(["experiments", "-o", str(target)]) == 0
        text = target.read_text()
        assert "Figure 3" in text and "Figure 17" in text

    def test_unknown_app(self, capsys):
        assert main(["map", "nosuchapp"]) == 2
        err = capsys.readouterr().err
        assert "unknown app" in err

    def test_bad_size_binding(self, capsys):
        assert main(["map", "sumRows", "R:64"]) == 2
        err = capsys.readouterr().err
        assert "k=v" in err

    def test_report(self, capsys):
        assert main(["report", "sumCols", "R=65536", "C=1024"]) == 0
        out = capsys.readouterr().out
        assert "# Compilation report: sumCols" in out
        assert "Why this mapping" in out
        assert "```cuda" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(
            ["report", "sumRows", "R=256", "C=256", "-o", str(target)]
        ) == 0
        assert "Simulated cost" in target.read_text()


class TestObservabilityCli:
    def test_trace_writes_perfetto_loadable_file(self, tmp_path, capsys):
        import json

        from repro.observability import validate_chrome_trace

        target = tmp_path / "trace.json"
        assert main(["trace", "sumCols", "R=64", "C=64", "-o", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Perfetto" in out
        with open(target) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []
        stages = {
            e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        # The issue's acceptance bar: at least six distinct pipeline stages.
        assert len(stages) >= 6
        assert {"compile", "search", "codegen", "interpret"} <= stages

    def test_trace_app_name_is_case_insensitive(self, tmp_path):
        target = tmp_path / "trace.json"
        assert main(["trace", "sumcols", "-o", str(target)]) == 0
        assert target.exists()

    def test_trace_detail_adds_search_events(self, tmp_path):
        import json

        from repro.analysis.cache import clear_caches

        compact = tmp_path / "compact.json"
        detail = tmp_path / "detail.json"
        # A warm memo would skip the tree walk (no per-subtree events to
        # emit), so both runs start from a cold cache.
        clear_caches()
        assert main(["trace", "sumCols", "R=64", "C=64",
                     "-o", str(compact)]) == 0
        clear_caches()
        assert main(["trace", "sumCols", "R=64", "C=64", "--detail",
                     "-o", str(detail)]) == 0
        with open(compact) as handle:
            compact_names = {
                e["name"] for e in json.load(handle)["traceEvents"]
            }
        with open(detail) as handle:
            detail_names = {
                e["name"] for e in json.load(handle)["traceEvents"]
            }
        assert "search.visit" in detail_names
        assert "search.visit" not in compact_names

    def test_trace_writes_provenance_artifact(self, tmp_path, capsys):
        from repro.observability.provenance import load_provenance

        trace = tmp_path / "trace.json"
        prov_path = tmp_path / "prov.json"
        assert main(["trace", "sumCols", "R=64", "C=64", "-o", str(trace),
                     "--provenance", str(prov_path)]) == 0
        prov = load_provenance(str(prov_path))
        assert prov.program == "sumCols"
        assert prov.kernels

    def test_stats_renders_counters(self, tmp_path, capsys):
        assert main(["stats", "sumCols", "R=64", "C=64"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "compile.runs" in out
        assert "stage_ms." in out

    def test_stats_json(self, capsys):
        import json

        assert main(["stats", "sumCols", "R=64", "C=64", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["compile.runs"] == 1
        assert "histograms" in data

    def test_explain_renders_saved_artifact(self, tmp_path, capsys):
        prov_path = tmp_path / "prov.json"
        assert main(["trace", "sumCols", "R=64", "C=64",
                     "-o", str(tmp_path / "t.json"),
                     "--provenance", str(prov_path)]) == 0
        capsys.readouterr()
        assert main(["explain", str(prov_path)]) == 0
        out = capsys.readouterr().out
        assert "Mapping provenance: sumCols" in out
        assert "winner:" in out

    def test_explain_bad_artifact_is_config_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["explain", str(bad)]) == 2
        assert main(["explain", str(tmp_path / "missing.json")]) == 2

    def test_chaos_trace_flag(self, tmp_path, capsys):
        import json

        from repro.observability import validate_chrome_trace

        target = tmp_path / "chaos-trace.json"
        assert main(["chaos", "sumCols", "--stage", "codegen",
                     "--trace", str(target)]) == 0
        with open(target) as handle:
            assert validate_chrome_trace(json.load(handle)) == []

    def test_difftest_trace_flag(self, tmp_path, capsys):
        import json

        from repro.observability import validate_chrome_trace

        target = tmp_path / "difftest-trace.json"
        assert main(["difftest", "--budget", "2", "--seed", "7",
                     "--trace", str(target)]) == 0
        with open(target) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "difftest.campaign" in names
