"""Tests for the runtime layer: buffers, dynamic launch, sessions."""

import numpy as np
import pytest

from repro.errors import RuntimeConfigError
from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import Dim, Span, SpanAll, Split
from repro.gpusim.device import TESLA_K20C
from repro.optim import OptimizationFlags
from repro.runtime import BufferManager, GpuSession, adjust_at_launch


class TestBufferManager:
    def test_alloc_free_tracking(self):
        mgr = BufferManager()
        mgr.alloc("a", 1000)
        mgr.alloc("b", 500)
        assert mgr.current_bytes == 1500
        mgr.free("a")
        assert mgr.current_bytes == 500
        assert mgr.peak_bytes == 1500

    def test_double_alloc_rejected(self):
        mgr = BufferManager()
        mgr.alloc("a", 10)
        with pytest.raises(RuntimeConfigError):
            mgr.alloc("a", 10)

    def test_free_unknown(self):
        with pytest.raises(RuntimeConfigError):
            BufferManager().free("nope")

    def test_negative_size(self):
        with pytest.raises(RuntimeConfigError):
            BufferManager().alloc("a", -1)

    def test_transfer_time_has_latency_floor(self):
        mgr = BufferManager(TESLA_K20C)
        tiny = mgr.transfer_time_us(8)
        assert tiny >= TESLA_K20C.pcie_latency_us
        big = mgr.transfer_time_us(6e9)
        assert big == pytest.approx(TESLA_K20C.pcie_latency_us + 1e6, rel=0.01)


class TestDynamicLaunch:
    def test_preserves_dims_and_span_kinds(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=1024, C=1024)
        ka = pa.kernel(0)
        static = ka.select_mapping().mapping
        adjusted = adjust_at_launch(
            static, ka.constraints, [50, 20000], TESLA_K20C.dop_window()
        )
        for before, after in zip(static.levels, adjusted.levels):
            assert before.dim == after.dim
            # span *kind* preserved (factors may change)
            assert isinstance(after.span, type(before.span)) or (
                isinstance(before.span, (Span, Split))
                and isinstance(after.span, (Span, Split, SpanAll))
            )

    def test_retunes_block_sizes_for_skewed_runtime_size(
        self, sum_rows_program
    ):
        """Figure 17's dynamic adjustment: a static decision at square
        sizes still performs well on skewed runtime sizes."""
        pa = analyze_program(sum_rows_program, R=4096, C=4096)
        ka = pa.kernel(0)
        static = ka.select_mapping().mapping
        adjusted = adjust_at_launch(
            static, ka.constraints, [50, 200000], TESLA_K20C.dop_window()
        )
        # the adjusted mapping must still satisfy hard constraints
        from repro.analysis.scoring import hard_feasible

        assert hard_feasible(adjusted, ka.constraints, (50, 200000))

    def test_respects_dop_window(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=4096, C=4096)
        ka = pa.kernel(0)
        static = ka.select_mapping().mapping
        adjusted = adjust_at_launch(
            static, ka.constraints, [40, 128], TESLA_K20C.dop_window()
        )
        dop = adjusted.dop([40, 128])
        # low-size case: ControlDOP pushes DOP up via Split when possible
        assert dop >= static.with_level(0, static.level(0)).dop([40, 128])


class TestGpuSession:
    def test_compile_run_estimate(self, sum_rows_program, rng):
        session = GpuSession()
        compiled = session.compile(sum_rows_program, R=64, C=32)
        data = rng.random((64, 32))
        out = compiled.run(m=data, R=64, C=32)
        assert np.allclose(out, data.sum(axis=1))
        assert compiled.estimate_time_us() > 0
        assert "__global__" in compiled.cuda_source

    def test_estimate_at_other_sizes(self, sum_rows_program):
        session = GpuSession()
        compiled = session.compile(sum_rows_program, R=1024, C=1024)
        small = compiled.estimate_time_us(R=256, C=256)
        large = compiled.estimate_time_us(R=8192, C=8192)
        assert large > small

    def test_strategy_selection(self, sum_cols_program):
        multidim = GpuSession(strategy="multidim").compile(
            sum_cols_program, R=65536, C=1024
        )
        oned = GpuSession(strategy="1d").compile(
            sum_cols_program, R=65536, C=1024
        )
        assert oned.estimate_time_us() > multidim.estimate_time_us()

    def test_flags_disable_prealloc(self, sum_weighted_cols_program):
        session = GpuSession(
            flags=OptimizationFlags(prealloc=False, layout_opt=False,
                                    shared_memory=False)
        )
        compiled = session.compile(sum_weighted_cols_program, R=512, C=512)
        cost = compiled.estimate_cost()
        assert cost.kernels[0].malloc_us > 0

    def test_describe_lists_kernels(self, sum_rows_program):
        compiled = GpuSession().compile(sum_rows_program, R=64, C=64)
        text = compiled.describe()
        assert "kernel 0" in text

    def test_transfer_accounting(self, sum_rows_program):
        compiled = GpuSession().compile(sum_rows_program, R=64, C=64)
        cost = compiled.estimate_cost(
            include_transfer=True, input_bytes=1e6
        )
        assert cost.transfer_us > 0

    def test_multi_kernel_session(self):
        from repro.apps.naive_bayes import build_naive_bayes

        compiled = GpuSession().compile(
            build_naive_bayes(), DOCS=4096, WORDS=2048
        )
        assert len(compiled.decisions) == 2
        mappings = compiled.mappings()
        assert mappings[0].level(1).dim == Dim.X
        assert mappings[1].level(0).dim == Dim.X


class TestErrorPaths:
    def test_unknown_strategy_raises(self, sum_rows_program):
        from repro.errors import MappingError

        with pytest.raises(MappingError, match="unknown strategy"):
            GpuSession(strategy="magic").compile(
                sum_rows_program, R=64, C=64
            )

    def test_every_error_subclasses_repro_error(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or (
                    obj is errors.ReproError
                )


class TestCrossDeviceRegistry:
    def test_fig3_runs_on_c2050(self):
        from repro.figures import run_experiment
        from repro.gpusim import TESLA_C2050

        result = run_experiment("fig3", device=TESLA_C2050)
        rows = {(r["kernel"], r["shape"]): r for r in result.rows}
        assert rows[("sumCols", "[64K,1K]")]["1d"] > 3
