"""Coverage for small supporting components: writer, env, app helpers."""

import numpy as np
import pytest

from repro.apps import ALL_APPS, merge_params
from repro.codegen.writer import SourceWriter
from repro.interp.env import Env


class TestSourceWriter:
    def test_block_structure(self):
        w = SourceWriter()
        w.line("int x = 0;")
        w.open("if (x)")
        w.line("x++;")
        w.close()
        text = w.text()
        assert text == "int x = 0;\nif (x) {\n    x++;\n}\n"

    def test_nested_indent(self):
        w = SourceWriter(indent="  ")
        w.open("a")
        w.open("b")
        w.line("c;")
        w.close()
        w.close()
        assert "    c;" in w.text()

    def test_close_suffix(self):
        w = SourceWriter()
        w.open("do")
        w.close(" while (0);")
        assert "} while (0);" in w.text()

    def test_blank_line(self):
        w = SourceWriter()
        w.line("a;")
        w.line()
        w.line("b;")
        assert w.text() == "a;\n\nb;\n"


class TestEnv:
    def test_lookup_walks_chain(self):
        outer = Env()
        outer.bind("x", 1)
        inner = outer.child()
        assert inner.lookup("x") == 1

    def test_shadowing(self):
        outer = Env()
        outer.bind("x", 1)
        inner = outer.child()
        inner.bind("x", 2)
        assert inner.lookup("x") == 2
        assert outer.lookup("x") == 1

    def test_contains(self):
        outer = Env()
        outer.bind("x", 1)
        inner = outer.child()
        assert "x" in inner
        assert "y" not in inner

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            Env().lookup("nope")


class TestMergeParams:
    def test_overrides_win(self):
        app = ALL_APPS["sumRows"]
        merged = merge_params(app, {"R": 7})
        assert merged["R"] == 7
        assert merged["C"] == app.default_params["C"]

    def test_defaults_untouched(self):
        app = ALL_APPS["sumRows"]
        before = dict(app.default_params)
        merge_params(app, {"R": 7})
        assert app.default_params == before


class TestProgramCostDescribe:
    def test_kernel_cost_describe_has_all_lines(self):
        from repro.gpusim import simulate_program
        from tests.conftest import make_sum_rows

        cost = simulate_program(make_sum_rows(), "multidim", R=256, C=256)
        text = cost.kernels[0].describe()
        assert text.count("\n") >= 9
