"""Cross-engine byte-identity and engine-selection contract.

The three search engines — the exhaustive reference, the pruned walk,
and the vectorized batch engine — must pick the *byte-identical* winner
for any input: same mapping, same exact score, same DOP, same candidate
counts, and (under ``keep_all``) the same ranked candidate list in the
same order.  These tests replay the checked-in difftest corpus plus a
fresh generator sample through all three engines, then pin the
auto-selection rules (small space -> plain loop, batch-capable -> the
candidate matrix, opaque constraints -> reference fallback) and the
``REPRO_SEARCH_ENGINE`` / ``engine=`` overrides.
"""

import os
import random

import pytest

from repro.analysis import analyze_program, clear_caches
from repro.analysis.constraints import Constraint, ConstraintSet, CoalesceDimX
from repro.analysis.search import (
    count_candidates,
    resolve_engine,
    search_mapping,
    search_mapping_reference,
)
from repro.analysis.vectorized import (
    BatchUnsupported,
    search_mapping_vectorized,
)
from repro.config import SEARCH_ENGINE_ENV, SEARCH_SMALL_SPACE_CANDIDATES
from repro.difftest import ProgramGenerator, load_corpus
from repro.difftest.generator import build_program
from repro.errors import SearchError

from .test_search_equivalence import GRID_BY_DEPTH, random_cset

CORPUS_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "integration", "corpus",
    "seed_corpus.json",
)


def _assert_byte_identical(ref, other, context=""):
    """Everything the result contract pins, including keep_all ordering."""
    assert str(other.mapping) == str(ref.mapping), context
    assert other.score == ref.score, context
    assert other.dop == ref.dop, context
    assert other.candidates_total == ref.candidates_total, context
    assert other.candidates_feasible == ref.candidates_feasible, context
    assert other.candidates_scored == ref.candidates_scored, context
    assert other.candidates_skipped == ref.candidates_skipped, context
    assert len(other.all_scored) == len(ref.all_scored), context
    for a, b in zip(ref.all_scored, other.all_scored):
        assert str(b.mapping) == str(a.mapping), context
        assert b.score == a.score, context
        assert b.dop == a.dop, context


def _check_kernel_across_engines(ka, context):
    args = (ka.depth, ka.constraints, ka.level_sizes())
    ref = search_mapping_reference(*args, keep_all=True)
    # Every generated constraint family carries a batch predicate; the
    # vectorized engine must accept the whole corpus, not quietly
    # degrade.
    vec = search_mapping_vectorized(*args, keep_all=True)
    _assert_byte_identical(ref, vec, f"{context} [vectorized]")
    pruned = search_mapping(
        *args, keep_all=True, use_cache=False, engine="pruned"
    )
    _assert_byte_identical(ref, pruned, f"{context} [pruned]")


def test_difftest_corpus_byte_identity():
    """All three engines agree on every checked-in corpus kernel."""
    specs = load_corpus(CORPUS_PATH)
    assert len(specs) >= 20
    checked = 0
    for spec in specs:
        pa = analyze_program(build_program(spec))
        for index, ka in enumerate(pa.kernels):
            _check_kernel_across_engines(
                ka, f"corpus {spec.describe()} kernel {index}"
            )
            checked += 1
    assert checked >= len(specs)


def test_generator_sample_byte_identity():
    """A fresh generator sample agrees across engines too."""
    generator = ProgramGenerator(seed=20260808)
    checked = 0
    while checked < 8:
        spec = generator.random_spec()
        try:
            pa = analyze_program(build_program(spec))
        except Exception:
            continue  # unbuildable specs are the oracle's concern
        for index, ka in enumerate(pa.kernels):
            _check_kernel_across_engines(
                ka, f"generated {spec.describe()} kernel {index}"
            )
            checked += 1


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_randomized_vectorized_equivalence(depth):
    """Randomized constraint sets: vectorized == reference, bit for bit."""
    rng = random.Random(97 * depth)
    grid = GRID_BY_DEPTH[depth]
    for trial in range(6 if depth <= 2 else 3):
        cset = random_cset(rng, depth)
        sizes = [rng.choice([1, 7, 32, 100, 4096]) for _ in range(depth)]
        tie_seed = rng.randint(0, 10_000)
        keep = trial % 2 == 0
        context = f"depth={depth} trial={trial} sizes={sizes}"
        try:
            ref = search_mapping_reference(
                depth, cset, sizes, block_sizes=grid, seed=tie_seed,
                keep_all=keep,
            )
        except SearchError:
            with pytest.raises(SearchError):
                search_mapping_vectorized(
                    depth, cset, sizes, block_sizes=grid, seed=tie_seed,
                    keep_all=keep,
                )
            continue
        vec = search_mapping_vectorized(
            depth, cset, sizes, block_sizes=grid, seed=tie_seed,
            keep_all=keep,
        )
        _assert_byte_identical(ref, vec, context)


def test_depth5_coarse_grid_equivalence():
    """Depth-5 spaces (intractable before) still match the oracle."""
    from repro.analysis.constraints import AvoidDivergence

    cset = ConstraintSet()
    cset.add(CoalesceDimX(False, "local", "c", level=4, weight=5.0))
    cset.add(AvoidDivergence(False, "global", "d", levels=(0, 1), weight=1.0))
    sizes = (4, 8, 16, 64, 256)
    grid = (1, 16, 256)
    ref = search_mapping_reference(5, cset, sizes, block_sizes=grid,
                                   keep_all=True)
    vec = search_mapping_vectorized(5, cset, sizes, block_sizes=grid,
                                    keep_all=True)
    _assert_byte_identical(ref, vec, "depth-5 coarse grid")


# -- engine selection ------------------------------------------------------


def _small_space_inputs():
    cset = ConstraintSet()
    cset.add(CoalesceDimX(False, "local", "c", level=0, weight=5.0))
    return 1, cset, (1000,)


def _large_space_inputs():
    cset = ConstraintSet()
    cset.add(CoalesceDimX(False, "local", "c", level=2, weight=5.0))
    return 3, cset, (64, 64, 4096)


def test_auto_selects_exhaustive_for_small_spaces():
    depth, cset, sizes = _small_space_inputs()
    assert count_candidates(depth, cset) <= SEARCH_SMALL_SPACE_CANDIDATES
    result = search_mapping(depth, cset, sizes, use_cache=False)
    assert result.strategy == "exhaustive"
    assert result.batch_shape is None


def test_auto_selects_vectorized_for_large_spaces():
    depth, cset, sizes = _large_space_inputs()
    assert count_candidates(depth, cset) > SEARCH_SMALL_SPACE_CANDIDATES
    result = search_mapping(depth, cset, sizes, use_cache=False)
    assert result.strategy == "vectorized"
    assert result.batch_shape == (result.candidates_total, depth)


def test_env_var_overrides_auto(monkeypatch):
    depth, cset, sizes = _large_space_inputs()
    monkeypatch.setenv(SEARCH_ENGINE_ENV, "pruned")
    result = search_mapping(depth, cset, sizes, use_cache=False)
    assert result.strategy == "pruned"
    # An explicit engine= beats the environment.
    result = search_mapping(
        depth, cset, sizes, use_cache=False, engine="vectorized"
    )
    assert result.strategy == "vectorized"


def test_unknown_engine_rejected():
    with pytest.raises(SearchError, match="engine"):
        resolve_engine("quantum")
    depth, cset, sizes = _small_space_inputs()
    with pytest.raises(SearchError, match="engine"):
        search_mapping(depth, cset, sizes, engine="quantum")


def test_opaque_constraint_falls_back():
    """A constraint without a batch predicate degrades, never errors."""

    class Opaque(Constraint):
        def satisfied_by(self, mapping, level_sizes):
            return True

    depth, cset, sizes = _large_space_inputs()
    cset.add(Opaque(False, "global", "opaque"))
    with pytest.raises(BatchUnsupported):
        search_mapping_vectorized(depth, cset, sizes)
    # Forcing the batch engine falls through to the reference walk
    # (opaque constraints need per-candidate evaluation).
    result = search_mapping(
        depth, cset, sizes, use_cache=False, engine="vectorized"
    )
    assert result.strategy == "reference-fallback"
    result = search_mapping(depth, cset, sizes, use_cache=False)
    assert result.strategy == "reference-fallback"


def test_engine_is_part_of_cache_key():
    depth, cset, sizes = _large_space_inputs()
    clear_caches()
    vec = search_mapping(depth, cset, sizes, engine="vectorized")
    pruned = search_mapping(depth, cset, sizes, engine="pruned")
    # Same winner, distinct memo entries: the pruned request must not be
    # served the vectorized result's telemetry.
    assert not pruned.cache_hit
    assert pruned.strategy == "pruned"
    again = search_mapping(depth, cset, sizes, engine="vectorized")
    assert again.cache_hit and again.strategy == "vectorized"
    assert str(vec.mapping) == str(pruned.mapping)


def test_batch_telemetry_recorded():
    """batch_shape flows into telemetry and the metrics registry."""
    from repro.observability import capture

    depth, cset, sizes = _large_space_inputs()
    with capture() as obs:
        result = search_mapping(depth, cset, sizes, use_cache=False,
                                engine="vectorized")
    data = result.telemetry()
    assert data["strategy"] == "vectorized"
    assert data["batch_shape"] == [result.candidates_total, depth]
    histograms = obs.metrics.to_dict()["histograms"]
    assert histograms["search.batch.candidates"]["count"] >= 1
