"""Tests for the Algorithm-1 search and ControlDOP."""

import pytest

from repro.analysis.analyzer import analyze_kernel, analyze_program
from repro.analysis.constraints import ConstraintSet, SpanAllRequired
from repro.analysis.dop import DopWindow, control_dop
from repro.analysis.mapping import (
    Dim,
    LevelMapping,
    Mapping,
    Span,
    SpanAll,
    Split,
)
from repro.analysis.search import enumerate_candidates, search_mapping
from repro.analysis.shapes import SizeEnv
from repro.errors import SearchError


def lm(dim, size, span):
    return LevelMapping(dim, size, span)


class TestDopWindow:
    def test_k20c_values(self):
        """Section IV-D: MIN_DOP = 13 SMs x 2048; MAX = 100x."""
        from repro.gpusim.device import TESLA_K20C

        window = TESLA_K20C.dop_window()
        assert window.min_dop == 13 * 2048 == 26624
        assert window.max_dop == 100 * 26624

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DopWindow(min_dop=100, max_dop=10)


class TestControlDop:
    def test_low_dop_splits_span_all(self):
        m = Mapping((lm(Dim.Y, 1, Span(1)), lm(Dim.X, 64, SpanAll())))
        # DOP = 100 * 64 = 6400 < 26624 -> split
        out = control_dop(m, [100, 100000], DopWindow(), {1: True})
        assert isinstance(out.level(1).span, Split)
        assert out.dop([100, 100000]) >= 6400

    def test_dynamic_level_never_split(self):
        m = Mapping((lm(Dim.Y, 1, Span(1)), lm(Dim.X, 64, SpanAll())))
        out = control_dop(m, [100, 100000], DopWindow(), {1: False})
        assert isinstance(out.level(1).span, SpanAll)

    def test_high_dop_coarsens_span1(self):
        m = Mapping((lm(Dim.X, 256, Span(1)),))
        size = 10**9
        out = control_dop(m, [size], DopWindow(), {})
        span = out.level(0).span
        assert isinstance(span, Span) and span.n > 1
        assert out.dop([size]) <= DopWindow().max_dop * 2

    def test_in_window_untouched(self):
        m = Mapping((lm(Dim.X, 256, Span(1)),))
        out = control_dop(m, [100000], DopWindow(), {})
        assert out is m

    def test_split_capped_by_iterations(self):
        # Splitting beyond per-block iterations is useless.
        m = Mapping((lm(Dim.X, 64, SpanAll()),))
        out = control_dop(m, [128], DopWindow(), {0: True})
        span = out.level(0).span
        if isinstance(span, Split):
            assert span.k <= 2  # only 2 iterations per thread to split


class TestEnumeration:
    def test_respects_forced_span_all(self):
        cset = ConstraintSet()
        cset.add(SpanAllRequired(True, "local", "", level=1, reason="sync"))
        for m in enumerate_candidates(2, cset):
            assert isinstance(m.level(1).span, SpanAll)

    def test_block_products_capped(self):
        cset = ConstraintSet()
        for m in enumerate_candidates(2, cset, block_sizes=(256, 1024)):
            assert m.threads_per_block() <= 1024

    def test_dims_distinct(self):
        cset = ConstraintSet()
        for m in enumerate_candidates(3, cset, block_sizes=(4,)):
            dims = [lvl.dim for lvl in m.levels]
            assert len(set(dims)) == 3

    def test_space_size_reasonable(self):
        """Brute force stays tractable for 1-3 levels (Section IV-D)."""
        cset = ConstraintSet()
        counts = [
            sum(1 for _ in enumerate_candidates(depth, cset))
            for depth in (1, 2, 3)
        ]
        assert counts[0] < 100
        assert counts[2] < 100_000


class TestSearch:
    def test_sum_rows_mapping(self, sum_rows_program):
        ka = analyze_program(sum_rows_program, R=1024, C=65536).kernel(0)
        result = ka.select_mapping()
        m = result.mapping
        # inner (sequential access) level on dim x, Span(all) for the
        # reduce; outer on another dim.
        assert m.level(1).dim == Dim.X
        assert isinstance(m.level(1).span, (SpanAll, Split))
        assert m.level(1).block_size % 32 == 0

    def test_sum_cols_mapping(self, sum_cols_program):
        ka = analyze_program(sum_cols_program, R=65536, C=1024).kernel(0)
        m = ka.select_mapping().mapping
        assert m.level(0).dim == Dim.X  # outer index is the sequential one
        assert m.level(0).block_size % 32 == 0

    def test_deterministic_given_seed(self, sum_rows_program):
        ka = analyze_program(sum_rows_program, R=1024, C=1024).kernel(0)
        a = search_mapping(ka.depth, ka.constraints, ka.level_sizes(), seed=1)
        b = search_mapping(ka.depth, ka.constraints, ka.level_sizes(), seed=1)
        assert a.mapping == b.mapping

    def test_keep_all_collects_candidates(self, sum_rows_program):
        ka = analyze_program(sum_rows_program, R=256, C=256).kernel(0)
        result = ka.select_mapping(keep_all=True)
        assert len(result.all_scored) == result.candidates_feasible
        assert result.candidates_feasible > 100

    def test_best_score_is_max(self, sum_rows_program):
        ka = analyze_program(sum_rows_program, R=256, C=256).kernel(0)
        result = ka.select_mapping(keep_all=True)
        assert result.score == max(s.score for s in result.all_scored)

    def test_size_mismatch_raises(self, sum_rows_program):
        ka = analyze_program(sum_rows_program, R=256, C=256).kernel(0)
        with pytest.raises(SearchError):
            search_mapping(ka.depth, ka.constraints, [256])

    def test_dop_controlled(self, sum_rows_program):
        from repro.gpusim.device import TESLA_K20C

        ka = analyze_program(sum_rows_program, R=10**6, C=64).kernel(0)
        window = TESLA_K20C.dop_window()
        result = ka.select_mapping(window=window)
        dop = result.mapping.dop(ka.level_sizes())
        assert dop <= window.max_dop * 2  # coarsening is approximate


class TestScoring:
    def test_infeasible_returns_none(self, sum_rows_program):
        from repro.analysis.scoring import score_mapping

        ka = analyze_program(sum_rows_program, R=64, C=64).kernel(0)
        bad = Mapping((lm(Dim.Y, 1, Span(1)), lm(Dim.X, 64, Span(1))))
        # level 1 must be Span(all) (reduce) -> infeasible
        assert score_mapping(bad, ka.constraints, [64, 64]) is None

    def test_score_sums_satisfied_weights(self, sum_rows_program):
        from repro.analysis.scoring import satisfied_constraints, score_mapping

        ka = analyze_program(sum_rows_program, R=64, C=64).kernel(0)
        m = Mapping((lm(Dim.Y, 1, Span(1)), lm(Dim.X, 64, SpanAll())))
        score = score_mapping(m, ka.constraints, [64, 64])
        parts = satisfied_constraints(m, ka.constraints, [64, 64])
        assert score == pytest.approx(
            sum(getattr(c, "weight", 0.0) for c in parts)
        )
