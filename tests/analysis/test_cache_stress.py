"""Concurrency stress for the search memo.

``evict_where`` iterates the entry table while other threads mutate it;
this pins the snapshot-under-lock design: no ``RuntimeError: dictionary
changed size during iteration``, no deadlock, no overflow past
``maxsize``, and sane hit/miss accounting under contention.
"""

import threading

from repro.analysis.cache import SearchCache


class TestCacheBasics:
    def test_invalidate_present_and_absent(self):
        cache = SearchCache(maxsize=8)
        cache.put(("k",), 1)
        assert cache.invalidate(("k",))
        assert not cache.invalidate(("k",))
        assert cache.get(("k",)) is None

    def test_invalidate_distinguishes_stored_none(self):
        cache = SearchCache(maxsize=8)
        cache.put(("k",), None)
        assert cache.invalidate(("k",))

    def test_evict_where_counts_drops(self):
        cache = SearchCache(maxsize=16)
        for i in range(10):
            cache.put(("k", i), i)
        dropped = cache.evict_where(lambda key, value: value % 2 == 0)
        assert dropped == 5
        assert len(cache) == 5
        assert cache.get(("k", 1)) == 1
        assert cache.get(("k", 2)) is None


class TestCacheStress:
    THREADS = 8
    ITERATIONS = 400

    def test_concurrent_mutation_during_eviction_sweeps(self):
        cache = SearchCache(maxsize=64)
        stop = threading.Event()
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(self.ITERATIONS):
                    key = ("stress", worker, i % 40)
                    cache.put(key, i)
                    cache.get(key)
                    cache.get(("stress", (worker + 1) % self.THREADS, i % 40))
                    if i % 7 == 0:
                        cache.invalidate(key)
                    if i % 23 == 0:
                        cache.evict_where(
                            lambda k, v: isinstance(v, int) and v % 3 == 0
                        )
                    if i % 97 == 0:
                        cache.stats()
            except Exception as exc:  # noqa: BLE001 - the test's whole point
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "stress test deadlocked"
        assert not errors, f"concurrent mutation raised: {errors[:3]}"
        assert len(cache) <= cache.maxsize
        stats = cache.stats()
        assert stats.hits + stats.misses > 0

    def test_concurrent_clear_and_put(self):
        cache = SearchCache(maxsize=32)
        errors = []

        def writer() -> None:
            try:
                for i in range(self.ITERATIONS):
                    cache.put(("w", i % 50), i)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def clearer() -> None:
            try:
                for _ in range(self.ITERATIONS // 10):
                    cache.clear()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(cache) <= cache.maxsize


class TestSnapshotLoad:
    """snapshot()/load() back the service's cross-restart memo: whatever
    ``invalidate``/``evict_where`` dropped must be absent from the next
    snapshot, so both persistence layers share one invalidation path."""

    def test_round_trip(self):
        source = SearchCache(maxsize=16)
        for i in range(10):
            source.put(("k", i), i * i)
        target = SearchCache(maxsize=16)
        assert target.load(source.snapshot()) == 10
        for i in range(10):
            assert target.get(("k", i)) == i * i

    def test_snapshot_reflects_eviction(self):
        cache = SearchCache(maxsize=16)
        for i in range(10):
            cache.put(("k", i), i)
        cache.evict_where(lambda key, value: value % 2 == 0)
        cache.invalidate(("k", 1))
        snapshot = dict(cache.snapshot())
        assert set(snapshot.values()) == {3, 5, 7, 9}

    def test_load_respects_maxsize(self):
        source = SearchCache(maxsize=64)
        for i in range(40):
            source.put(("k", i), i)
        target = SearchCache(maxsize=8)
        target.load(source.snapshot())
        assert len(target) <= 8
        # LRU semantics: the most recently snapshotted entries survive.
        assert target.get(("k", 39)) == 39

    def test_load_preserves_stored_none(self):
        source = SearchCache(maxsize=8)
        source.put(("k",), None)
        target = SearchCache(maxsize=8)
        target.load(source.snapshot())
        assert target.invalidate(("k",)), "stored None must round-trip"

    def test_concurrent_snapshot_load_during_eviction_sweeps(self):
        cache = SearchCache(maxsize=64)
        mirror = SearchCache(maxsize=64)
        errors = []

        def writer() -> None:
            try:
                for i in range(400):
                    cache.put(("w", i % 80), i)
                    if i % 13 == 0:
                        cache.evict_where(
                            lambda k, v: isinstance(v, int) and v % 2 == 0
                        )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def persister() -> None:
            try:
                for _ in range(100):
                    mirror.load(cache.snapshot())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=persister))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "deadlocked"
        assert not errors, f"concurrent snapshot/load raised: {errors[:3]}"
        assert len(cache) <= cache.maxsize
        assert len(mirror) <= mirror.maxsize
