"""Tests for memory-access analysis: linear forms and access collection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Builder, F64
from repro.ir.builder import let, let_vec, random_index, range_map
from repro.ir.expr import BinOp, Const, Param, RandomIndex, Var
from repro.ir.types import I64
from repro.analysis.access import (
    LinearForm,
    collect_accesses,
    inline_scalar_binds,
    linear_form,
)
from repro.analysis.shapes import SizeEnv


IDX = frozenset({"i", "j"})


def lf(expr, env=None):
    return linear_form(expr, IDX, env or SizeEnv())


class TestLinearForm:
    def test_constant(self):
        form = lf(Const(5))
        assert form.is_pure_constant and form.const == 5

    def test_index(self):
        form = lf(Var("i", I64))
        assert form.coeff("i") == 1.0

    def test_affine_combination(self):
        # i*C + j with C = 100
        env = SizeEnv(values={"C": 100})
        expr = BinOp(
            "+", BinOp("*", Var("i", I64), Param("C", I64)), Var("j", I64)
        )
        form = lf(expr, env)
        assert form.coeff("i") == 100.0
        assert form.coeff("j") == 1.0

    def test_subtraction_and_negation(self):
        from repro.ir.expr import UnOp

        expr = BinOp("-", Var("i", I64), Var("j", I64))
        form = lf(expr)
        assert form.coeff("j") == -1.0
        neg = lf(UnOp("-", Var("i", I64)))
        assert neg.coeff("i") == -1.0

    def test_index_product_is_opaque(self):
        expr = BinOp("*", Var("i", I64), Var("j", I64))
        form = lf(expr)
        assert form.opaque_deps == {"i", "j"}
        assert form.coeff("i") == 0.0

    def test_min_max_clamp_transparent(self):
        """Stencil boundary clamps keep the affine structure."""
        expr = BinOp("max", BinOp("-", Var("i", I64), Const(1)), Const(0))
        form = lf(expr)
        assert form.coeff("i") == 1.0
        assert not form.opaque_deps

    def test_min_of_constants(self):
        assert lf(BinOp("min", Const(3), Const(7))).const == 3

    def test_random_is_opaque_per_iteration(self):
        form = lf(RandomIndex(Const(100)))
        assert form.has_random
        assert form.opaque_deps == IDX

    def test_division_blurs(self):
        expr = BinOp("//", Var("i", I64), Const(2))
        form = lf(expr)
        assert "i" in form.opaque_deps

    def test_depends_on(self):
        form = LinearForm(coeffs=(("i", 2.0),), opaque_deps=frozenset({"j"}))
        assert form.depends_on("i") and form.depends_on("j")
        assert not form.depends_on("k")

    def test_plus_merges_and_cancels(self):
        a = LinearForm(coeffs=(("i", 2.0),))
        b = LinearForm(coeffs=(("i", -2.0), ("j", 1.0)))
        merged = a.plus(b)
        assert merged.coeff("i") == 0.0
        assert merged.coeff("j") == 1.0

    def test_scaled(self):
        form = LinearForm(coeffs=(("i", 2.0),), const=3.0).scaled(4.0)
        assert form.coeff("i") == 8.0 and form.const == 12.0

    def test_bindings_resolve_let_bound_scalars(self):
        bindings = {"r": LinearForm(opaque_deps=frozenset({"i"}),
                                    has_random=True)}
        form = linear_form(
            BinOp("+", Var("r", I64), Var("j", I64)),
            IDX, SizeEnv(), bindings,
        )
        assert form.has_random and form.coeff("j") == 1.0


class TestCollectAccesses:
    def test_sum_rows_sites(self, sum_rows_program):
        env = SizeEnv(values={"R": 64, "C": 32})
        summary = collect_accesses(sum_rows_program.result, env)
        m_reads = [s for s in summary.sites if s.array_key == "m"]
        assert len(m_reads) == 1
        assert m_reads[0].sequential_levels() == [1]

    def test_sum_cols_sequential_in_outer(self, sum_cols_program):
        env = SizeEnv(values={"R": 64, "C": 32})
        summary = collect_accesses(sum_cols_program.result, env)
        m_reads = [s for s in summary.sites if s.array_key == "m"]
        assert m_reads[0].sequential_levels() == [0]

    def test_synthetic_output_for_map_reduce(self, sum_rows_program):
        env = SizeEnv(values={"R": 64, "C": 32})
        summary = collect_accesses(sum_rows_program.result, env)
        outs = [s for s in summary.sites if s.array_key == "__out__"]
        assert len(outs) == 1
        assert outs[0].kind == "write" and outs[0].level == 0

    def test_exec_count_uses_stack_sizes(self, sum_rows_program):
        env = SizeEnv(values={"R": 64, "C": 32})
        summary = collect_accesses(sum_rows_program.result, env)
        m_read = next(s for s in summary.sites if s.array_key == "m")
        assert m_read.exec_count(env) == 64 * 32

    def test_footprint_capped_by_array(self):
        b = Builder("gather")
        xs = b.vector("xs", F64, length="N")
        idx_arr = b.vector("ids", I64, length="M")
        out = idx_arr.map(lambda e: xs[e.cast(I64)])
        prog = b.build(out)
        env = SizeEnv.for_program(prog, N=10, M=100000)
        summary = collect_accesses(prog.result, env)
        xs_read = next(s for s in summary.sites if s.array_key == "xs")
        # gather through ids: opaque, footprint capped at 10 elements
        assert xs_read.footprint_bytes(env) == 10 * 8

    def test_loop_invariant_hoisting(self):
        """An access not involving the inner index is charged at the
        outermost level it depends on."""
        from repro.ir.expr import ArrayRead
        from repro.ir.patterns import Map
        from repro.ir.types import ArrayType

        i, j = Var("i", I64), Var("j", I64)
        v_param = Param("v", ArrayType(F64, 1))
        inner = Map(Param("C", I64), j, ArrayRead(v_param, (i,)))
        outer = Map(Param("R", I64), i, inner)
        env = SizeEnv(values={"R": 8, "C": 16})
        summary = collect_accesses(outer, env)
        site = next(s for s in summary.sites if s.array_key == "v")
        assert site.level == 0
        assert site.exec_count(env) == 8  # once per row, not per element

    def test_random_access_not_hoisted(self):
        b = Builder("r")
        n = b.size("N")
        xs = b.vector("xs", F64, length="N")
        out = range_map(
            n, lambda s: xs[random_index(n).cast(I64)], index_name="s"
        )
        prog = b.build(out)
        env = SizeEnv(values={"N": 50})
        summary = collect_accesses(prog.result, env)
        site = next(s for s in summary.sites if s.array_key == "xs")
        assert site.level == 0
        assert site.axis_forms[0].has_random


class TestIntermediates:
    def test_let_vec_creates_flexible_array(self, sum_weighted_cols_program):
        env = SizeEnv(values={"R": 16, "C": 8})
        summary = collect_accesses(sum_weighted_cols_program.result, env)
        flex = summary.flexible_arrays()
        assert len(flex) == 1

    def test_intermediate_gains_leading_axes(self, sum_weighted_cols_program):
        env = SizeEnv(values={"R": 16, "C": 8})
        summary = collect_accesses(sum_weighted_cols_program.result, env)
        key = summary.flexible_arrays()[0]
        sites = summary.for_array(key)
        assert all(len(s.axis_forms) == 2 for s in sites)
        assert all(s.shape == (8, 16) for s in sites)  # (cols, rows)

    def test_alloc_site_recorded(self, sum_weighted_cols_program):
        env = SizeEnv(values={"R": 16, "C": 8})
        summary = collect_accesses(sum_weighted_cols_program.result, env)
        assert len(summary.allocs) == 1
        assert summary.allocs[0].alloc_count(env) == 8  # one per column
        assert summary.allocs[0].elems_per_alloc == 16

    def test_no_alloc_outside_patterns(self, sum_rows_program):
        env = SizeEnv(values={"R": 16, "C": 8})
        summary = collect_accesses(sum_rows_program.result, env)
        assert summary.allocs == []


class TestInlineScalarBinds:
    def test_pure_scalar_inlined(self):
        b = Builder("il")
        m = b.matrix("m", F64, rows="R", cols="C")
        from repro.ir.builder import EH

        out = m.map_rows(
            lambda row: let(
                EH(Const(0)) + 0, lambda base: row.map_reduce(lambda e: e)
            )
        )
        prog = b.build(out)
        root = inline_scalar_binds(prog.result)
        from repro.ir.expr import Bind
        from repro.ir.traversal import find_instances

        assert find_instances(root, Bind) == []

    def test_random_bind_kept(self):
        b = Builder("il2")
        n = b.size("N")
        xs = b.vector("xs", F64, length="N")
        out = range_map(
            n,
            lambda s: let(random_index(n), lambda r: xs[r.cast(I64)]),
            index_name="s",
        )
        prog = b.build(out)
        root = inline_scalar_binds(prog.result)
        from repro.ir.expr import Bind
        from repro.ir.traversal import find_instances

        assert len(find_instances(root, Bind)) == 1

    def test_array_bind_kept(self, sum_weighted_cols_program):
        root = inline_scalar_binds(sum_weighted_cols_program.result)
        from repro.ir.expr import Bind
        from repro.ir.traversal import find_instances

        binds = find_instances(root, Bind)
        assert len(binds) == 1  # the materialized zipWith


# -- property-based -------------------------------------------------------

coeff_strategy = st.integers(min_value=-100, max_value=100)


@given(a=coeff_strategy, b=coeff_strategy, c=coeff_strategy)
@settings(max_examples=50)
def test_linear_form_add_commutes(a, b, c):
    f1 = LinearForm(coeffs=(("i", float(a)),), const=float(c))
    f2 = LinearForm(coeffs=(("i", float(b)), ("j", 1.0)))
    left = f1.plus(f2)
    right = f2.plus(f1)
    assert left.coeff("i") == right.coeff("i")
    assert left.coeff("j") == right.coeff("j")
    assert left.const == right.const


@given(a=coeff_strategy, scale=st.integers(min_value=-10, max_value=10))
@settings(max_examples=50)
def test_linear_form_scale_distributes(a, scale):
    f = LinearForm(coeffs=(("i", float(a)),), const=2.0)
    assert f.scaled(float(scale)).coeff("i") == a * scale
