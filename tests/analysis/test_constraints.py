"""Tests for constraint generation and the Table II taxonomy."""

import pytest

from repro.config import MIN_BLOCK_SIZE, WARP_SIZE
from repro.ir import Builder, F64
from repro.analysis.analyzer import analyze_kernel
from repro.analysis.constraints import (
    BlockSizeFloor,
    CoalesceDimX,
    NoWastedThreads,
    SpanAllRequired,
    generate_constraints,
)
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll, Split
from repro.analysis.shapes import SizeEnv


def analyze(program, **sizes):
    return analyze_kernel(program.result, SizeEnv.for_program(program, **sizes))


class TestTaxonomy:
    """Table II: constraints classify on (hard/soft) x (local/global)."""

    def test_hard_local_span_all(self, sum_rows_program):
        ka = analyze(sum_rows_program, R=64, C=64)
        hards = [c for c in ka.constraints.hard if isinstance(c, SpanAllRequired)]
        assert len(hards) == 1
        assert hards[0].scope == "local" and hards[0].level == 1

    def test_soft_local_coalesce(self, sum_rows_program):
        ka = analyze(sum_rows_program, R=64, C=64)
        coalesce = [
            c for c in ka.constraints.soft if isinstance(c, CoalesceDimX)
        ]
        assert any(c.level == 1 and c.array_key == "m" for c in coalesce)
        assert all(not c.hard and c.scope == "local" for c in coalesce)

    def test_soft_global_block_floor(self, sum_rows_program):
        ka = analyze(sum_rows_program, R=64, C=64)
        floors = [c for c in ka.constraints.soft if isinstance(c, BlockSizeFloor)]
        assert len(floors) == 1 and floors[0].scope == "global"


class TestSpanAllSemantics:
    def test_satisfied_by_span_all(self):
        c = SpanAllRequired(True, "local", "", level=0, reason="sync")
        m_all = Mapping((LevelMapping(Dim.X, 32, SpanAll()),))
        m_one = Mapping((LevelMapping(Dim.X, 32, Span(1)),))
        assert c.satisfied_by(m_all, (100,))
        assert not c.satisfied_by(m_one, (100,))

    def test_split_allowed_only_for_sync(self):
        m_split = Mapping((LevelMapping(Dim.X, 32, Split(2)),))
        sync = SpanAllRequired(True, "local", "", level=0, reason="sync")
        dyn = SpanAllRequired(True, "local", "", level=0, reason="dynamic")
        assert sync.satisfied_by(m_split, (100,))
        assert not dyn.satisfied_by(m_split, (100,))

    def test_span_all_levels_merges_reasons(self, sum_rows_program):
        ka = analyze(sum_rows_program, R=64, C=64)
        levels = ka.constraints.span_all_levels()
        assert levels == {1: True}  # sync reason -> splittable

    def test_dynamic_reason_blocks_splitting(self):
        from repro.apps.pagerank import build_pagerank

        prog = build_pagerank()
        ka = analyze(prog, N=100, E=1000)
        levels = ka.constraints.span_all_levels()
        assert levels[1] is False  # sync AND dynamic -> not splittable


class TestCoalesceSatisfaction:
    def test_requires_dim_x_and_warp_multiple(self):
        c = CoalesceDimX(False, "local", "", level=0, weight=1.0)
        good = Mapping((LevelMapping(Dim.X, WARP_SIZE, Span(1)),))
        wrong_dim = Mapping(
            (LevelMapping(Dim.Y, WARP_SIZE, Span(1)),
             LevelMapping(Dim.X, 1, Span(1)))
        )
        small_block = Mapping((LevelMapping(Dim.X, 16, Span(1)),))
        assert c.satisfied_by(good, (100,))
        assert not c.satisfied_by(wrong_dim, (100, 100))
        assert not c.satisfied_by(small_block, (100,))

    def test_sequential_level_never_satisfies(self):
        from repro.analysis.mapping import seq_level

        c = CoalesceDimX(False, "local", "", level=1, weight=1.0)
        m = Mapping((LevelMapping(Dim.X, 32, Span(1)), seq_level()))
        assert not c.satisfied_by(m, (10, 10))


class TestWeights:
    def test_fig8_deeper_pattern_dominates(self):
        """Figure 8: an access executed I*J times outweighs one executed I
        times, steering the dimension assignment to the inner pattern."""
        b = Builder("fig8")
        n1 = b.size("I")
        n2 = b.size("J")
        arr1d = b.vector("array1D", F64, length="I")
        arr2d = b.matrix("array2D", F64, rows="I", cols="J")
        from repro.ir.builder import let, range_map

        out = range_map(
            n1,
            lambda i: let(
                arr1d[i],
                lambda a: arr2d.row(i).map_reduce(lambda e: e + a),
            ),
            index_name="i",
        )
        prog = b.build(out)
        ka = analyze(prog, I=1000, J=1000)
        coalesce = {
            (c.level, c.array_key): c.weight
            for c in ka.constraints.soft
            if isinstance(c, CoalesceDimX)
        }
        w_outer = coalesce[(0, "array1D")]
        w_inner = coalesce[(1, "array2D")]
        assert w_inner > w_outer
        # the ratio should be about J (modulo the cache discount)
        assert w_inner / w_outer > 10

    def test_branch_probability_discounts(self):
        b = Builder("br")
        xs = b.vector("xs", F64, length="N")
        out = xs.map(lambda e: (e > 0).where(e * 2, 0.0, prob=0.25))
        prog = b.build(out)
        ka = analyze(prog, N=1000)
        # the xs read itself is unconditional; branch discount applies to
        # accesses under the Select, of which there are none here, so just
        # check the collection ran and produced a weight.
        assert ka.constraints.max_score() > 0

    def test_small_array_discounted(self, sum_weighted_cols_program):
        """A cache-resident vector must not tie with the huge matrix."""
        ka = analyze(sum_weighted_cols_program, R=8192, C=8192)
        weights = {
            (c.level, c.array_key): c.weight
            for c in ka.constraints.soft
            if isinstance(c, CoalesceDimX)
        }
        assert weights[(0, "m")] > weights[(1, "v")]

    def test_flexible_arrays_impose_nothing(self, sum_weighted_cols_program):
        ka = analyze(sum_weighted_cols_program, R=64, C=64)
        arrays = {
            c.array_key
            for c in ka.constraints.soft
            if isinstance(c, CoalesceDimX)
        }
        # the materialized temp never appears
        flexible = ka.accesses.flexible_arrays()
        assert not (arrays & set(flexible))


class TestDescribe:
    def test_describe_mentions_kinds(self, sum_rows_program):
        ka = analyze(sum_rows_program, R=64, C=64)
        text = ka.constraints.describe()
        assert "[hard/local]" in text
        assert "[soft/global]" in text
