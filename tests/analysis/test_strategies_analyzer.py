"""Tests for fixed strategies (Fig. 7) and the analyzer facade."""

import pytest

from repro.errors import MappingError
from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import Dim, Seq, Span, SpanAll
from repro.analysis.strategies import (
    FIXED_STRATEGIES,
    fixed_strategy,
    one_d,
    thread_block_thread,
    warp_based,
)


class TestOneD:
    def test_only_level0_parallel(self):
        m = one_d([1000, 500, 20])
        assert m.level(0).parallel and m.level(0).dim == Dim.X
        assert not m.level(1).parallel
        assert not m.level(2).parallel

    def test_dop_ignores_inner_levels(self):
        m = one_d([1000, 500])
        assert m.dop([1000, 500]) == 1000

    def test_needs_a_level(self):
        with pytest.raises(MappingError):
            one_d([])


class TestThreadBlockThread:
    def test_fig7a_parameters(self):
        """Fig 7a: level0 [DimY, 1, Span(1)], level1 [DimX, J-block,
        Span(all)]."""
        m = thread_block_thread([4096, 100000])
        assert m.level(0).dim == Dim.Y and m.level(0).block_size == 1
        assert isinstance(m.level(0).span, Span)
        assert m.level(1).dim == Dim.X and m.level(1).block_size == 1024
        assert isinstance(m.level(1).span, SpanAll)

    def test_small_inner_clamps_block(self):
        m = thread_block_thread([4096, 100])
        assert m.level(1).block_size == 64  # pow2 <= 100

    def test_flat_pattern_degrades_to_1d(self):
        m = thread_block_thread([4096])
        assert m.level(0).dim == Dim.X

    def test_third_level_sequential(self):
        m = thread_block_thread([10, 10, 10])
        assert isinstance(m.level(2).span, Seq)


class TestWarpBased:
    def test_fig7b_parameters(self):
        """Fig 7b: level0 [DimY, 16, Span(1)], level1 [DimX, 32,
        Span(all)]."""
        m = warp_based([4096, 100000])
        assert m.level(0).dim == Dim.Y and m.level(0).block_size == 16
        assert m.level(1).dim == Dim.X and m.level(1).block_size == 32
        assert isinstance(m.level(1).span, SpanAll)

    def test_block_is_512_threads(self):
        assert warp_based([10, 10]).threads_per_block() == 512


class TestRegistry:
    def test_three_strategies(self):
        assert set(FIXED_STRATEGIES) == {
            "1d", "thread-block/thread", "warp-based"
        }

    def test_lookup(self):
        m = fixed_strategy("warp-based", [10, 10])
        assert m.level(1).block_size == 32

    def test_unknown(self):
        with pytest.raises(MappingError, match="unknown strategy"):
            fixed_strategy("magic", [10, 10])


class TestAnalyzerFacade:
    def test_single_kernel_program(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=32, C=16)
        assert len(pa) == 1
        assert pa.kernel(0).depth == 2
        assert pa.kernel(0).level_sizes() == [32, 16]

    def test_multi_kernel_program(self):
        from repro.apps.naive_bayes import build_naive_bayes

        pa = analyze_program(build_naive_bayes(), DOCS=4096, WORDS=2048)
        assert len(pa) == 2
        # the two kernels prefer opposite dimension assignments
        m1 = pa.kernel(0).select_mapping().mapping
        m2 = pa.kernel(1).select_mapping().mapping
        assert m1.level(1).dim == Dim.X  # row-wise: inner sequential
        assert m2.level(0).dim == Dim.X  # col-wise: outer sequential

    def test_size_overrides(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=100, C=7)
        assert pa.kernel(0).level_sizes() == [100, 7]

    def test_strategy_mapping_helper(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=100, C=7)
        m = pa.kernel(0).strategy_mapping("1d")
        assert not m.level(1).parallel
