"""Property-based tests of the search: for randomized constraint sets and
sizes, the selected mapping always satisfies every hard constraint and
respects the candidate-space rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MAX_BLOCK_SIZE
from repro.analysis.constraints import (
    BlockSizeFloor,
    CoalesceDimX,
    ConstraintSet,
    SpanAllRequired,
)
from repro.analysis.dop import DopWindow
from repro.analysis.mapping import SpanAll, Split
from repro.analysis.scoring import hard_feasible
from repro.analysis.search import search_mapping

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=10**6), min_size=1, max_size=3
)


def random_cset(draw_levels, span_all_levels, coalesce_levels, weights):
    cset = ConstraintSet()
    for level in span_all_levels:
        if level < draw_levels:
            cset.add(
                SpanAllRequired(
                    True, "local", f"L{level} sync", level=level,
                    reason="sync",
                )
            )
    for level, weight in zip(coalesce_levels, weights):
        if level < draw_levels:
            cset.add(
                CoalesceDimX(
                    False, "local", f"L{level} coalesce", level=level,
                    weight=weight,
                )
            )
    cset.add(BlockSizeFloor(False, "global", "floor", weight=1.0))
    return cset


@given(
    sizes=sizes_strategy,
    span_all=st.sets(st.integers(min_value=0, max_value=2), max_size=2),
    coalesce=st.lists(st.integers(min_value=0, max_value=2), max_size=2),
    weights=st.lists(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        min_size=2, max_size=2,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_search_respects_hard_constraints(
    sizes, span_all, coalesce, weights, seed
):
    levels = len(sizes)
    cset = random_cset(levels, span_all, coalesce, weights)
    result = search_mapping(levels, cset, sizes, seed=seed,
                            block_sizes=(1, 32, 256))
    mapping = result.mapping
    assert hard_feasible(mapping, cset, sizes)
    assert mapping.threads_per_block() <= MAX_BLOCK_SIZE
    # forced Span(all) levels end up Span(all) or a Split refinement
    for level in span_all:
        if level < levels:
            assert isinstance(mapping.level(level).span, (SpanAll, Split))


@given(
    sizes=sizes_strategy,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_search_dop_controlled(sizes, seed):
    levels = len(sizes)
    cset = random_cset(levels, set(), [], [])
    window = DopWindow(min_dop=1024, max_dop=10**6)
    result = search_mapping(
        levels, cset, sizes, window=window, seed=seed,
        block_sizes=(1, 32, 256),
    )
    dop = result.mapping.dop(sizes)
    total = 1
    for s in sizes:
        total *= s
    # DOP cannot exceed the domain, and stays within ~2x of the window cap
    # (ControlDOP's coarsening is integral).
    assert dop <= max(total, 1024 * 2)
    # ControlDOP applies a single Span(1)->Span(n) replacement (Algorithm
    # 1), so one level can absorb at most its own size.  Either the DOP
    # lands near the cap, or the chosen level was fully coarsened and a
    # single application could do no more.
    from repro.analysis.mapping import Span

    fully_coarsened = any(
        isinstance(lm.span, Span) and lm.span.n >= size
        for lm, size in zip(result.mapping.levels, sizes)
    )
    assert dop <= window.max_dop * 2.1 or fully_coarsened


@given(seed_a=st.integers(0, 100), seed_b=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_scores_independent_of_seed(seed_a, seed_b):
    """Seeds only break exact ties: the best score itself is stable."""
    cset = random_cset(2, {1}, [0], [5.0])
    a = search_mapping(2, cset, [1000, 1000], seed=seed_a)
    b = search_mapping(2, cset, [1000, 1000], seed=seed_b)
    assert a.score == b.score
