"""Tests for mapping parameters, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MAX_BLOCK_SIZE
from repro.errors import MappingError
from repro.analysis.mapping import (
    DIM_MAX_THREADS,
    Dim,
    LevelMapping,
    Mapping,
    Seq,
    Span,
    SpanAll,
    Split,
    seq_level,
)


def lm(dim=Dim.X, size=32, span=None):
    return LevelMapping(dim, size, span or Span(1))


class TestSpanTypes:
    def test_span_validation(self):
        with pytest.raises(MappingError):
            Span(0)

    def test_split_validation(self):
        with pytest.raises(MappingError):
            Split(1)

    def test_str_forms(self):
        assert str(Span(3)) == "span(3)"
        assert str(SpanAll()) == "span(all)"
        assert str(Split(4)) == "split(4)"
        assert str(Seq()) == "seq"


class TestLevelMapping:
    def test_seq_level_constraints(self):
        with pytest.raises(MappingError):
            LevelMapping(Dim.X, 1, Seq())
        with pytest.raises(MappingError):
            LevelMapping(None, 2, Seq())
        assert not seq_level().parallel

    def test_parallel_needs_dim(self):
        with pytest.raises(MappingError):
            LevelMapping(None, 32, Span(1))

    def test_block_size_positive(self):
        with pytest.raises(MappingError):
            LevelMapping(Dim.X, 0, Span(1))


class TestMappingValidation:
    def test_duplicate_dims_rejected(self):
        with pytest.raises(MappingError):
            Mapping((lm(Dim.X), lm(Dim.X)))

    def test_block_limit(self):
        with pytest.raises(MappingError):
            Mapping((lm(Dim.X, 1024), lm(Dim.Y, 2)))

    def test_dim_thread_limits(self):
        with pytest.raises(MappingError):
            Mapping((lm(Dim.Z, 128),))  # z limited to 64

    def test_needs_at_least_one_level(self):
        with pytest.raises(MappingError):
            Mapping(())


class TestGeometry:
    def test_threads_per_block(self):
        m = Mapping((lm(Dim.X, 32), lm(Dim.Y, 16)))
        assert m.threads_per_block() == 512

    def test_blocks_per_level_span1(self):
        m = Mapping((lm(Dim.X, 32),))
        assert m.blocks_per_level([100]) == [4]  # ceil(100/32)

    def test_blocks_per_level_span_n(self):
        m = Mapping((lm(Dim.X, 32, Span(2)),))
        assert m.blocks_per_level([128]) == [2]

    def test_blocks_span_all_and_split(self):
        m = Mapping((lm(Dim.X, 32, SpanAll()), lm(Dim.Y, 4, Split(3))))
        assert m.blocks_per_level([1000, 1000]) == [1, 3]

    def test_seq_contributes_one_block(self):
        m = Mapping((lm(Dim.X, 32), seq_level()))
        assert m.blocks_per_level([64, 99]) == [2, 1]

    def test_size_count_mismatch(self):
        m = Mapping((lm(Dim.X, 32),))
        with pytest.raises(MappingError):
            m.blocks_per_level([1, 2])

    def test_level_of_dim(self):
        m = Mapping((lm(Dim.Y, 4), lm(Dim.X, 32)))
        assert m.level_of_dim(Dim.X) == 1
        assert m.level_of_dim(Dim.Z) is None


class TestDop:
    def test_span1_full_parallelism(self):
        m = Mapping((lm(Dim.X, 32),))
        assert m.dop([1000]) == 1000

    def test_span_n_divides(self):
        m = Mapping((lm(Dim.X, 32, Span(4)),))
        assert m.dop([1000]) == 250

    def test_span_all_counts_block_size(self):
        """The paper: Span(all) contributes its block size, not the loop
        size, making DOP insensitive to the 1000-default."""
        m = Mapping((lm(Dim.X, 64, SpanAll()),))
        assert m.dop([100000]) == 64

    def test_split_multiplies(self):
        m = Mapping((lm(Dim.X, 64, Split(3)),))
        assert m.dop([100000]) == 192

    def test_seq_contributes_one(self):
        m = Mapping((lm(Dim.X, 32), seq_level()))
        assert m.dop([128, 999]) == 128

    def test_fig7_thread_block_thread(self):
        """DOP = I * min(J, 1024) for the Copperhead-style mapping."""
        m = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(1)),
                LevelMapping(Dim.X, 1024, SpanAll()),
            )
        )
        assert m.dop([4096, 100000]) == 4096 * 1024
        assert m.dop([4096, 100]) == 4096 * 100

    def test_fig7_warp_based(self):
        """DOP = I * min(J, 32) for the warp-based mapping."""
        m = Mapping(
            (
                LevelMapping(Dim.Y, 16, Span(1)),
                LevelMapping(Dim.X, 32, SpanAll()),
            )
        )
        assert m.dop([4096, 100000]) == 4096 * 32


class TestThreadIterations:
    def test_span(self):
        m = Mapping((lm(Dim.X, 32, Span(5)),))
        assert m.thread_iterations(0, 1000) == 5

    def test_span_all(self):
        m = Mapping((lm(Dim.X, 32, SpanAll()),))
        assert m.thread_iterations(0, 100) == 4  # ceil(100/32)

    def test_split(self):
        m = Mapping((lm(Dim.X, 32, Split(2)),))
        assert m.thread_iterations(0, 128) == 2

    def test_seq(self):
        m = Mapping((lm(Dim.X, 32), seq_level()))
        assert m.thread_iterations(1, 77) == 77


class TestMisc:
    def test_needs_combiner(self):
        assert Mapping((lm(Dim.X, 32, Split(2)),)).needs_combiner()
        assert not Mapping((lm(Dim.X, 32, SpanAll()),)).needs_combiner()

    def test_with_level(self):
        m = Mapping((lm(Dim.X, 32), lm(Dim.Y, 4)))
        m2 = m.with_level(1, LevelMapping(Dim.Y, 8, Span(1)))
        assert m2.level(1).block_size == 8
        assert m.level(1).block_size == 4  # original unchanged


# -- property-based tests -------------------------------------------------

valid_block_sizes = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256])
sizes_strategy = st.integers(min_value=1, max_value=10**6)


@given(bx=valid_block_sizes, by=valid_block_sizes, size0=sizes_strategy,
       size1=sizes_strategy)
@settings(max_examples=60)
def test_total_threads_cover_domain_span1(bx, by, size0, size1):
    """With Span(1) everywhere, launched threads >= domain points."""
    if bx * by > MAX_BLOCK_SIZE:
        return
    m = Mapping((lm(Dim.X, bx), lm(Dim.Y, by)))
    assert m.total_threads([size0, size1]) >= size0 * size1


@given(n=st.integers(min_value=1, max_value=64), size=sizes_strategy)
@settings(max_examples=60)
def test_span_n_reduces_dop_monotonically(n, size):
    m1 = Mapping((lm(Dim.X, 32, Span(1)),))
    mn = Mapping((lm(Dim.X, 32, Span(n)),))
    assert mn.dop([size]) <= m1.dop([size])


@given(bx=valid_block_sizes, size=sizes_strategy)
@settings(max_examples=60)
def test_iterations_times_threads_cover_domain(bx, size):
    """blocks * block_size * per-thread iterations covers the domain for
    every span type."""
    for span in (Span(1), Span(3), SpanAll(), Split(2)):
        m = Mapping((LevelMapping(Dim.X, bx, span),))
        blocks = m.blocks_per_level([size])[0]
        iters = m.thread_iterations(0, size)
        assert blocks * bx * iters >= size
