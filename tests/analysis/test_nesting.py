"""Tests for nest extraction and level structure."""

import pytest

from repro.errors import AnalysisError
from repro.ir import Builder, F64
from repro.ir.builder import let, let_vec, range_map
from repro.analysis.nesting import build_nest, extract_kernels, outermost_patterns
from repro.analysis.shapes import SizeEnv


class TestLevels:
    def test_two_level_nest(self, sum_rows_program):
        nest = build_nest(
            sum_rows_program.result, SizeEnv(values={"R": 64, "C": 32})
        )
        assert nest.depth == 2
        assert nest.level_sizes() == [64, 32]

    def test_level_zero_is_outermost(self, sum_rows_program):
        nest = build_nest(sum_rows_program.result)
        assert nest.levels[0].patterns[0].pattern is sum_rows_program.result

    def test_three_level_nest(self):
        from repro.apps.msmbuilder import build_msmbuilder

        prog = build_msmbuilder()
        nest = build_nest(prog.result, SizeEnv(values={"P": 4, "K": 3, "D": 2}))
        assert nest.depth == 3
        assert nest.level_sizes() == [4, 3, 2]

    def test_enclosing_chain(self, sum_rows_program):
        nest = build_nest(sum_rows_program.result)
        inner = nest.levels[1].patterns[0]
        assert inner.enclosing == (sum_rows_program.result,)
        assert inner.enclosing_index_names == {
            sum_rows_program.result.index.name
        }


class TestSpanAllTriggers:
    def test_reduce_needs_sync(self, sum_rows_program):
        nest = build_nest(sum_rows_program.result)
        assert nest.levels[1].needs_span_all
        assert not nest.levels[0].needs_span_all

    def test_dynamic_size_trigger(self):
        from repro.apps.pagerank import build_pagerank

        prog = build_pagerank()
        nest = build_nest(prog.result, SizeEnv.for_program(prog, N=100))
        inner = nest.levels[1]
        assert any(p.launch_dynamic for p in inner.patterns)
        assert inner.needs_span_all

    def test_pure_map_nest_has_no_trigger(self):
        from repro.apps.mandelbrot import build_mandelbrot

        prog = build_mandelbrot()
        nest = build_nest(prog.result, SizeEnv(values={"H": 4, "W": 4}))
        assert not nest.levels[0].needs_span_all
        assert not nest.levels[1].needs_span_all


class TestImperfectNests:
    def test_perfect_nest(self):
        from repro.apps.mandelbrot import build_mandelbrot

        prog = build_mandelbrot()
        nest = build_nest(prog.result)
        assert not nest.has_outer_body_work(0)

    def test_imperfect_nest_detected(self, sum_weighted_cols_program):
        # the zipWith temp write at level 0's body counts as outer work
        # only when accesses sit outside the innermost pattern; here the
        # nest is 2-deep with a mid-level materialization.
        nest = build_nest(sum_weighted_cols_program.result)
        assert nest.depth == 2

    def test_outer_reads_make_level_imperfect(self):
        from repro.apps.qpscd import build_qpscd

        prog = build_qpscd()
        from repro.analysis.access import inline_scalar_binds

        nest = build_nest(inline_scalar_binds(prog.result))
        # y[r] is read at level 0, outside the inner reduce
        assert nest.has_outer_body_work(0)


class TestKernelExtraction:
    def test_single_kernel(self, sum_rows_program):
        kernels = extract_kernels(sum_rows_program)
        assert len(kernels) == 1

    def test_two_kernel_program(self):
        from repro.apps.naive_bayes import build_naive_bayes

        kernels = extract_kernels(build_naive_bayes())
        assert len(kernels) == 2

    def test_gaussian_has_fan1_and_fan2(self):
        from repro.apps.gaussian import build_gaussian

        kernels = extract_kernels(build_gaussian("R"))
        assert len(kernels) == 2
        assert {k.depth for k in kernels} == {1, 2}

    def test_no_patterns_raises(self):
        from repro.ir.patterns import Program
        from repro.ir.expr import Const

        with pytest.raises(AnalysisError):
            extract_kernels(Program("empty", (), Const(1)))

    def test_outermost_patterns_ignores_nested(self, sum_rows_program):
        roots = outermost_patterns(sum_rows_program.result)
        assert roots == [sum_rows_program.result]
