"""Tests for the thread-divergence constraint and its cost-model term."""

import pytest

from repro.analysis import analyze_program
from repro.analysis.constraints import AvoidDivergence
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll, seq_level
from repro.gpusim import TESLA_K20C
from repro.gpusim.cost import count_ops
from repro.ir import Builder, F64
from repro.ir.builder import if_then, range_foreach, store


def build_branchy():
    """foreach node: if frontier[node]: out[node] = expensive(node)."""
    b = Builder("branchy")
    n = b.size("N")
    frontier = b.vector("frontier", F64, length="N")
    xs = b.matrix("xs", F64, rows="N", cols="M")
    out = b.vector("out", F64, length="N")

    def per_node(i):
        return [
            if_then(
                frontier[i] > 0,
                [store(out, i, xs.row(i).map_reduce(lambda e: e * e))],
                prob=0.2,
            )
        ]

    return b.build(range_foreach(n, per_node, index_name="i"))


class TestVariesWithinWarp:
    def test_x_always_varies(self):
        m = Mapping((LevelMapping(Dim.X, 32, Span(1)),))
        assert m.varies_within_warp(0)

    def test_y_uniform_when_x_fills_warp(self):
        m = Mapping(
            (LevelMapping(Dim.Y, 4, Span(1)),
             LevelMapping(Dim.X, 32, Span(1)))
        )
        assert not m.varies_within_warp(0)  # y: stride 32 >= warp
        assert m.varies_within_warp(1)

    def test_y_varies_when_x_narrow(self):
        m = Mapping(
            (LevelMapping(Dim.Y, 4, Span(1)),
             LevelMapping(Dim.X, 8, Span(1)))
        )
        assert m.varies_within_warp(0)  # warp spans 8x * 4y

    def test_sequential_level_never_varies(self):
        m = Mapping((LevelMapping(Dim.X, 32, Span(1)), seq_level()))
        assert not m.varies_within_warp(1)

    def test_block_size_one_never_varies(self):
        m = Mapping(
            (LevelMapping(Dim.Y, 1, Span(1)),
             LevelMapping(Dim.X, 32, SpanAll()))
        )
        assert not m.varies_within_warp(0)


class TestConstraintGeneration:
    def test_branch_generates_divergence_constraint(self):
        pa = analyze_program(build_branchy(), N=4096, M=256)
        ka = pa.kernel(0)
        divergence = [
            c for c in ka.constraints.soft
            if isinstance(c, AvoidDivergence)
        ]
        assert divergence
        assert divergence[0].levels == (0,)

    def test_satisfaction_depends_on_mapping(self):
        pa = analyze_program(build_branchy(), N=4096, M=256)
        ka = pa.kernel(0)
        constraint = next(
            c for c in ka.constraints.soft
            if isinstance(c, AvoidDivergence)
        )
        uniform = Mapping(
            (LevelMapping(Dim.Y, 2, Span(1)),
             LevelMapping(Dim.X, 32, SpanAll()))
        )
        varying = Mapping(
            (LevelMapping(Dim.X, 32, Span(1)),
             LevelMapping(Dim.Y, 2, SpanAll()))
        )
        sizes = (4096, 256)
        assert constraint.satisfied_by(uniform, sizes)
        assert not constraint.satisfied_by(varying, sizes)

    def test_branch_free_program_has_no_constraint(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=64, C=64)
        assert not [
            c for c in pa.kernel(0).constraints.soft
            if isinstance(c, AvoidDivergence)
        ]

    def test_bfs_generates_divergence_constraints(self):
        from repro.apps.bfs import build_bfs_step

        pa = analyze_program(build_bfs_step(), N=4096, E=4096 * 12)
        divergence = [
            c for c in pa.kernel(0).constraints.soft
            if isinstance(c, AvoidDivergence)
        ]
        assert divergence


class TestDivergenceCost:
    def test_diverged_branches_bill_both_paths(self):
        program = build_branchy()
        pa = analyze_program(program, N=4096, M=256)
        ka = pa.kernel(0)
        index_levels = {
            info.pattern.index.name: info.level
            for info in ka.nest.info_by_pattern.values()
        }
        varying = Mapping(
            (LevelMapping(Dim.X, 32, Span(1)),
             LevelMapping(Dim.Y, 2, SpanAll()))
        )
        uniform = Mapping(
            (LevelMapping(Dim.Y, 2, Span(1)),
             LevelMapping(Dim.X, 32, SpanAll()))
        )
        base = count_ops(ka.root, pa.env)
        diverged = count_ops(ka.root, pa.env, varying, index_levels)
        coherent = count_ops(ka.root, pa.env, uniform, index_levels)
        # prob 0.2 branch: divergence bills the 80%-skipped body too
        assert diverged > coherent
        assert coherent == pytest.approx(base, rel=0.01)
