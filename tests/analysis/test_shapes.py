"""Tests for size/shape evaluation."""

import pytest

from repro.config import DEFAULT_SIZE_HINT
from repro.ir import Builder, F64
from repro.ir.expr import ArrayRead, BinOp, Cast, Const, Length, Param, Var
from repro.ir.types import ArrayType, F32, I64
from repro.analysis.shapes import (
    SizeEnv,
    eval_size,
    size_depends_on_indices,
)


class TestEvalSize:
    def test_constant(self):
        v = eval_size(Const(42), SizeEnv())
        assert int(v) == 42 and v.exact

    def test_param_bound(self):
        env = SizeEnv(values={"N": 100})
        v = eval_size(Param("N", I64), env)
        assert int(v) == 100 and v.exact

    def test_param_unbound_uses_default(self):
        v = eval_size(Param("N", I64), SizeEnv())
        assert int(v) == DEFAULT_SIZE_HINT and not v.exact

    def test_custom_default(self):
        v = eval_size(Param("N", I64), SizeEnv(default=16))
        assert int(v) == 16

    def test_arithmetic(self):
        env = SizeEnv(values={"N": 10})
        expr = BinOp("+", BinOp("*", Param("N", I64), Const(2)), Const(1))
        assert int(eval_size(expr, env)) == 21

    def test_min_max(self):
        env = SizeEnv(values={"N": 10})
        expr = BinOp("min", Param("N", I64), Const(4))
        assert int(eval_size(expr, env)) == 4

    def test_inexact_arithmetic_falls_back_to_default(self):
        """offsets[n+1] - offsets[n] must not 'evaluate' to zero."""
        arr = Param("offsets", ArrayType(I64, 1))
        n = Var("n", I64)
        expr = BinOp(
            "-",
            ArrayRead(arr, (BinOp("+", n, Const(1)),)),
            ArrayRead(arr, (n,)),
        )
        env = SizeEnv(default=16)
        v = eval_size(expr, env)
        assert int(v) == 16 and not v.exact

    def test_cast_transparent(self):
        env = SizeEnv(values={"N": 5})
        assert int(eval_size(Cast(Param("N", I64), I64), env)) == 5

    def test_length_with_shape(self):
        arr = Param("xs", ArrayType(F64, 2))
        env = SizeEnv(array_shapes={"xs": (7, 9)})
        assert int(eval_size(Length(arr, 1), env)) == 9
        assert eval_size(Length(arr, 1), env).exact

    def test_length_without_shape(self):
        arr = Param("xs", ArrayType(F64, 1))
        v = eval_size(Length(arr, 0), SizeEnv())
        assert not v.exact


class TestForProgram:
    def test_hints_and_overrides(self, sum_rows_program):
        env = SizeEnv.for_program(sum_rows_program, R=64, C=32)
        assert env.values["R"] == 64

    def test_array_shapes_evaluated(self, sum_rows_program):
        env = SizeEnv.for_program(sum_rows_program, R=64, C=32)
        assert env.array_shapes["m"] == (64, 32)

    def test_reserved_keys(self):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        b.set_size_hint("__default__", 8)
        b.set_size_hint("__skew__", 3)
        prog = b.build(xs.reduce("+"))
        env = SizeEnv.for_program(prog, N=100)
        assert env.default == 8
        assert env.skew == 3.0
        assert "__default__" not in env.values

    def test_bind_preserves_settings(self):
        env = SizeEnv(values={"a": 1}, default=7, skew=2.0)
        child = env.bind(b=2)
        assert child.default == 7 and child.skew == 2.0
        assert child.values == {"a": 1, "b": 2}
        assert env.values == {"a": 1}  # original untouched


class TestLaunchDynamic:
    def test_param_size_is_static(self):
        assert not size_depends_on_indices(Param("N", I64), frozenset({"i"}))

    def test_index_dependent_size(self):
        n = Var("n", I64)
        expr = BinOp("-", Param("N", I64), n)
        assert size_depends_on_indices(expr, frozenset({"n"}))

    def test_length_of_indexed_substructure(self):
        # Length of a per-row neighbor list selected by the outer index.
        rows = Param("rows", ArrayType(F64, 2))
        n = Var("n", I64)
        nested = Length(rows, 1)
        assert not size_depends_on_indices(nested, frozenset({"n"}))

    def test_unrelated_index(self):
        n = Var("n", I64)
        expr = BinOp("-", Param("N", I64), n)
        assert not size_depends_on_indices(expr, frozenset({"other"}))
