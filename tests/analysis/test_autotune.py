"""Tests for the cost-model-driven auto-tuner (the paper's future-work
extension)."""

import pytest

from repro.analysis import analyze_program, autotune_mapping
from repro.analysis.scoring import hard_feasible
from repro.gpusim import TESLA_K20C, decide_mapping, estimate_kernel_cost

SMALL_BLOCKS = (8, 32, 64, 128)  # keep the tuned space small for tests


class TestAutotune:
    def test_result_is_feasible(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=4096, C=4096)
        ka = pa.kernel(0)
        result = autotune_mapping(
            ka, TESLA_K20C, block_sizes=SMALL_BLOCKS
        )
        assert hard_feasible(
            result.mapping, ka.constraints, ka.level_sizes()
        )
        assert result.candidates > 10

    def test_autotuned_no_worse_than_score_selected(self, sum_rows_program):
        """The tuner optimizes the very objective it is judged on, so it
        must be at least as good as the constraint-score choice."""
        pa = analyze_program(sum_rows_program, R=4096, C=4096)
        ka = pa.kernel(0)
        tuned = autotune_mapping(ka, TESLA_K20C, block_sizes=SMALL_BLOCKS)
        scored = decide_mapping(ka, "multidim", TESLA_K20C, optimize=False)
        scored_time = estimate_kernel_cost(
            ka, scored.mapping, TESLA_K20C, pa.env
        ).total_us
        assert tuned.time_us <= scored_time * 1.001

    def test_frontier_sorted(self, sum_cols_program):
        pa = analyze_program(sum_cols_program, R=4096, C=4096)
        ka = pa.kernel(0)
        result = autotune_mapping(
            ka, TESLA_K20C, block_sizes=SMALL_BLOCKS, keep_top=5
        )
        times = [t for _, t in result.frontier]
        assert times == sorted(times)
        assert len(times) <= 5
        assert times[0] == result.time_us

    def test_score_choice_close_to_tuned(self, sum_rows_program):
        """Figure 17's region-A claim, quantified: the cheap constraint
        score lands within a small factor of the simulator optimum."""
        pa = analyze_program(sum_rows_program, R=4096, C=4096)
        ka = pa.kernel(0)
        tuned = autotune_mapping(ka, TESLA_K20C, block_sizes=SMALL_BLOCKS)
        scored = decide_mapping(ka, "multidim", TESLA_K20C, optimize=False)
        scored_time = estimate_kernel_cost(
            ka, scored.mapping, TESLA_K20C, pa.env
        ).total_us
        assert scored_time <= tuned.time_us * 2.0
