"""Equivalence of the staged search against the exhaustive reference.

The pruned walk, the tables, and the memo are pure performance work: for
any constraint set they must select the *byte-identical* winner — same
mapping, same score, same DOP, same candidate counts — because the
figure experiments and codegen snapshots depend on the exact choice
(including the seeded tie-breaks).  These tests compare the two
implementations across randomized constraint sets at depths 1-4 and over
every bundled application kernel.
"""

import random

import pytest

from repro.analysis import analyze_program, clear_caches
from repro.analysis.constraints import (
    AvoidDivergence,
    BlockSizeFloor,
    CoalesceDimX,
    ConstraintSet,
    NoWastedThreads,
    SpanAllRequired,
)
from repro.analysis.mapping import DIM_MAX_THREADS, Dim, Mapping
from repro.analysis.search import search_mapping, search_mapping_reference
from repro.analysis.tables import ConstraintTables
from repro.apps import ALL_APPS, merge_params
from repro.config import MAX_BLOCK_SIZE, WARP_SIZE
from repro.errors import SearchError

#: Smaller grids keep the exhaustive oracle fast at depth >= 3.
GRID_BY_DEPTH = {
    1: (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    2: (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    3: (1, 8, 64, 512),
    4: (1, 32, 256),
}


def random_cset(rng: random.Random, depth: int) -> ConstraintSet:
    """A constraint set drawn from every supported constraint family.

    Levels are sampled from ``depth + 1`` so out-of-range levels (which
    make SpanAllRequired unsatisfiable and the others trivially pass or
    fail) are covered too.
    """
    cset = ConstraintSet()
    for level in range(depth + 1):
        if rng.random() < 0.3:
            cset.add(SpanAllRequired(
                True, "local", f"L{level} sync", level=level,
                reason=rng.choice(["sync", "dynamic"]),
            ))
        if rng.random() < 0.5:
            cset.add(CoalesceDimX(
                False, "local", f"L{level} coalesce", level=level,
                weight=rng.uniform(0.1, 1e6),
            ))
        if rng.random() < 0.4:
            cset.add(NoWastedThreads(
                False, "local", f"L{level} fit", level=level,
                weight=rng.uniform(0.1, 1e4),
            ))
    if rng.random() < 0.5:
        cset.add(BlockSizeFloor(
            False, "global", "floor", weight=rng.uniform(0.1, 1e5),
        ))
    if rng.random() < 0.5:
        deps = tuple(sorted(rng.sample(
            range(depth), k=rng.randint(1, depth),
        )))
        cset.add(AvoidDivergence(
            False, "global", "divergence", levels=deps,
            weight=rng.uniform(0.1, 1e5),
        ))
    return cset


def assert_equivalent(ref, new, context=""):
    assert new.mapping == ref.mapping, context
    assert new.score == ref.score, context
    assert new.dop == ref.dop, context
    assert new.candidates_total == ref.candidates_total, context
    assert new.candidates_feasible == ref.candidates_feasible, context


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
@pytest.mark.parametrize("trial_seed", [0, 1, 2])
def test_randomized_equivalence(depth, trial_seed):
    rng = random.Random(1000 * depth + trial_seed)
    grid = GRID_BY_DEPTH[depth]
    trials = 8 if depth <= 2 else 4
    for trial in range(trials):
        cset = random_cset(rng, depth)
        sizes = [rng.choice([1, 7, 32, 100, 4096]) for _ in range(depth)]
        tie_seed = rng.randint(0, 10_000)
        context = f"depth={depth} trial={trial} sizes={sizes}"
        try:
            ref = search_mapping_reference(
                depth, cset, sizes, block_sizes=grid, seed=tie_seed,
            )
        except SearchError:
            with pytest.raises(SearchError):
                search_mapping(
                    depth, cset, sizes, block_sizes=grid, seed=tie_seed,
                    use_cache=False,
                )
            continue
        new = search_mapping(
            depth, cset, sizes, block_sizes=grid, seed=tie_seed,
            use_cache=False,
        )
        assert_equivalent(ref, new, context)


@pytest.mark.parametrize("depth", [2, 3])
def test_keep_all_equivalence(depth):
    """keep_all must retain every feasible candidate in reference order."""
    rng = random.Random(depth)
    grid = GRID_BY_DEPTH[max(depth, 3)]
    for trial in range(3):
        cset = random_cset(rng, depth)
        sizes = [rng.choice([1, 32, 4096]) for _ in range(depth)]
        try:
            ref = search_mapping_reference(
                depth, cset, sizes, block_sizes=grid, keep_all=True,
            )
        except SearchError:
            continue
        new = search_mapping(
            depth, cset, sizes, block_sizes=grid, keep_all=True,
            use_cache=False,
        )
        assert_equivalent(ref, new, f"depth={depth} trial={trial}")
        assert new.all_scored == ref.all_scored


def test_all_apps_equivalence():
    """Byte-identical winners for every bundled application kernel."""
    checked = 0
    for name, app in sorted(ALL_APPS.items()):
        pa = analyze_program(app.build(), **merge_params(app, {}))
        for index, ka in enumerate(pa.kernels):
            args = (ka.depth, ka.constraints, ka.level_sizes())
            ref = search_mapping_reference(*args)
            new = search_mapping(*args, use_cache=False)
            assert_equivalent(ref, new, f"{name} kernel {index}")
            checked += 1
    assert checked >= len(ALL_APPS)


def test_cached_result_identical():
    """A memo hit returns the same result (flagged as a hit)."""
    app = ALL_APPS["msmbuilder"]
    ka = analyze_program(app.build(), **merge_params(app, {})).kernel(0)
    clear_caches()
    first = ka.select_mapping()
    second = ka.select_mapping()
    assert not first.cache_hit and second.cache_hit
    assert second.mapping == first.mapping
    assert second.score == first.score
    assert second.candidates_total == first.candidates_total


def test_warp_eval_matches_mapping():
    """The tables' warp model must agree with Mapping.varies_within_warp."""
    depth = 3
    cset = ConstraintSet()
    cset.add(AvoidDivergence(
        False, "global", "divergence", levels=(0, 1, 2), weight=1.0,
    ))
    sizes = (64, 64, 64)
    grid = (1, 2, 8, 32, 256)
    tables = ConstraintTables.build(cset, depth, sizes, grid)
    import itertools

    for dim_perm in itertools.permutations(list(Dim)[:depth], depth):
        for bsizes in itertools.product(grid, repeat=depth):
            if any(s > DIM_MAX_THREADS[d] for d, s in zip(dim_perm, bsizes)):
                continue
            product = 1
            for s in bsizes:
                product *= s
            if product > MAX_BLOCK_SIZE:
                continue
            from repro.analysis.mapping import LevelMapping, Span

            mapping = Mapping(tuple(
                LevelMapping(d, s, Span(1))
                for d, s in zip(dim_perm, bsizes)
            ))
            expected = not any(
                mapping.varies_within_warp(level, WARP_SIZE)
                for level in range(depth)
            )
            ok, weights = tables.warp_eval(dim_perm, list(bsizes))
            assert ok
            assert (sum(weights) > 0) == expected, (dim_perm, bsizes)
