"""Tier-1 performance guards for the staged search.

A depth-3 search over the full default grid enumerates ~6-25k candidates;
the reference loop needs ~100 ms, the pruned walk single-digit
milliseconds, and the vectorized batch engine sub-millisecond.  The
wall-clock budgets here are deliberately generous — they exist to catch
an accidental return to per-candidate ``satisfied_by`` evaluation or
broken pruning, not to benchmark.

``test_vectorized_beats_pruned`` is the CI perf-smoke gate: the batch
engine must hold a real multiple over the pruned walk on the depth-4
exhaustive config, or the PR that regressed it fails.
"""

import time

from repro.analysis import analyze_program
from repro.analysis.search import _effective_block_sizes, search_mapping
from repro.apps import ALL_APPS, merge_params
from repro.config import BLOCK_SIZE_CANDIDATES

SEARCH_BUDGET_SECONDS = 2.0

#: CI perf-smoke floor: vectorized over pruned on the depth-4 exhaustive
#: cold search.  The engine holds >10x on the benchmark machines; 3x
#: leaves headroom for noisy shared runners while still catching a
#: collapse back to per-candidate work.
MIN_VECTORIZED_SPEEDUP = 3.0


def _depth3_kernel():
    app = ALL_APPS["msmbuilder"]
    ka = analyze_program(app.build(), **merge_params(app, {})).kernel(0)
    assert ka.depth == 3
    return ka


def test_depth3_search_within_budget():
    ka = _depth3_kernel()

    start = time.perf_counter()
    result = search_mapping(
        ka.depth, ka.constraints, ka.level_sizes(), use_cache=False
    )
    elapsed = time.perf_counter() - start

    # Auto-selection hands a large batch-capable space to the
    # vectorized engine.
    assert result.strategy == "vectorized"
    assert result.batch_shape == (result.candidates_total, ka.depth)
    assert elapsed < SEARCH_BUDGET_SECONDS, (
        f"depth-3 search took {elapsed:.2f}s (budget "
        f"{SEARCH_BUDGET_SECONDS}s); did the batch engine regress?"
    )


def test_depth3_pruned_engine_within_budget():
    ka = _depth3_kernel()

    start = time.perf_counter()
    result = search_mapping(
        ka.depth, ka.constraints, ka.level_sizes(), use_cache=False,
        engine="pruned",
    )
    elapsed = time.perf_counter() - start

    assert result.strategy == "pruned"
    assert result.candidates_scored < result.candidates_total
    assert elapsed < SEARCH_BUDGET_SECONDS, (
        f"depth-3 pruned search took {elapsed:.2f}s (budget "
        f"{SEARCH_BUDGET_SECONDS}s); did pruning regress?"
    )


def _depth4_kernel():
    """Four parallel levels (mirrors the scaling benchmark's depth-4 case)."""
    from repro.ir import Builder, F64
    from repro.ir.builder import range_map

    b = Builder("batchedClustering")
    batches = b.size("B")
    frames = b.size("P")
    clusters = b.size("K")
    x = b.matrix("X", F64, rows="P", cols="D")
    cent = b.matrix("Cent", F64, rows="K", cols="D")
    scale = b.vector("scale", F64, length="B")
    out = range_map(
        batches,
        lambda bi: range_map(
            frames,
            lambda pi: range_map(
                clusters,
                lambda ki: x.row(pi).zip_with(
                    cent.row(ki), lambda a, c: (a - c) * (a - c)
                ).reduce("+") * scale[bi],
                index_name="ki",
            ),
            index_name="pi",
        ),
        index_name="bi",
    )
    program = b.build(out)
    return analyze_program(program, B=8, P=64, K=64, D=64).kernel(0)


def test_vectorized_beats_pruned():
    """CI perf smoke: batch engine >= 3x the pruned walk at depth 4."""
    ka = _depth4_kernel()
    assert ka.depth == 4
    # Depth >= 4 coarsens the grid by default; make both engines search
    # the identical space.
    grid = _effective_block_sizes(ka.depth, BLOCK_SIZE_CANDIDATES)
    args = (ka.depth, ka.constraints, ka.level_sizes())

    def best_of(engine, repeats=3):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            result = search_mapping(
                *args, block_sizes=grid, use_cache=False, engine=engine
            )
            times.append(time.perf_counter() - start)
        return min(times), result

    # Warm the structure memo / tables so both measure steady state.
    vec_time, vec = best_of("vectorized")
    pruned_time, pruned = best_of("pruned")

    assert str(vec.mapping) == str(pruned.mapping)
    assert vec.score == pruned.score
    speedup = pruned_time / vec_time
    assert speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized engine only {speedup:.1f}x over pruned "
        f"({vec_time * 1e3:.2f}ms vs {pruned_time * 1e3:.2f}ms); "
        f"floor is {MIN_VECTORIZED_SPEEDUP}x"
    )
