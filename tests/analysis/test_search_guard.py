"""Tier-1 performance guard for the staged search.

A depth-3 search over the full default grid enumerates ~6-25k candidates;
the reference loop needs ~100 ms and the pruned walk single-digit
milliseconds.  The budget here is deliberately generous (2 s wall-clock,
uncached) — it exists to catch an accidental return to per-candidate
``satisfied_by`` evaluation or broken pruning, not to benchmark.
"""

import time

from repro.analysis import analyze_program
from repro.analysis.search import search_mapping
from repro.apps import ALL_APPS, merge_params

SEARCH_BUDGET_SECONDS = 2.0


def test_depth3_search_within_budget():
    app = ALL_APPS["msmbuilder"]
    ka = analyze_program(app.build(), **merge_params(app, {})).kernel(0)
    assert ka.depth == 3

    start = time.perf_counter()
    result = search_mapping(
        ka.depth, ka.constraints, ka.level_sizes(), use_cache=False
    )
    elapsed = time.perf_counter() - start

    assert result.strategy == "pruned"
    assert result.candidates_scored < result.candidates_total
    assert elapsed < SEARCH_BUDGET_SECONDS, (
        f"depth-3 search took {elapsed:.2f}s (budget "
        f"{SEARCH_BUDGET_SECONDS}s); did pruning regress?"
    )
