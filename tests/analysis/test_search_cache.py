"""The cross-sweep memo: key sensitivity and cache behavior.

Serving a memoized search result is only safe if the key covers
*everything* the result depends on — any constraint field, the sizes,
the grid, the DOP window, the seed, and the keep_all flag.  These tests
pin that contract: equal inputs collide, every single-input perturbation
separates.
"""

import pytest

from repro.analysis.cache import (
    SearchCache,
    clear_caches,
    constraint_set_fingerprint,
    get_search_cache,
    search_cache_key,
)
from repro.analysis.constraints import (
    BlockSizeFloor,
    CoalesceDimX,
    ConstraintSet,
    SpanAllRequired,
)
from repro.analysis.dop import DopWindow


def make_cset(coalesce_weight=2.0, coalesce_level=1):
    cset = ConstraintSet()
    cset.add(SpanAllRequired(True, "local", "sync", level=1, reason="sync"))
    cset.add(CoalesceDimX(
        False, "local", "coalesce", level=coalesce_level,
        weight=coalesce_weight,
    ))
    cset.add(BlockSizeFloor(False, "global", "floor", weight=1.0))
    return cset


def base_key(**overrides):
    params = dict(
        cset=make_cset(),
        num_levels=2,
        sizes=(128, 4096),
        block_sizes=(1, 32, 1024),
        window=DopWindow(),
        keep_all=False,
        seed=0x5EED,
    )
    params.update(overrides)
    return search_cache_key(**params)


def test_equal_inputs_equal_keys():
    assert base_key() == base_key()
    assert constraint_set_fingerprint(make_cset()) == \
        constraint_set_fingerprint(make_cset())


@pytest.mark.parametrize("override", [
    dict(cset=make_cset(coalesce_weight=3.0)),
    dict(cset=make_cset(coalesce_level=0)),
    dict(sizes=(128, 4097)),
    dict(block_sizes=(1, 64, 1024)),
    dict(window=DopWindow(min_dop=1)),
    dict(keep_all=True),
    dict(seed=1),
])
def test_any_input_change_changes_key(override):
    assert base_key(**override) != base_key()


def test_constraint_order_is_part_of_identity():
    """Insertion order affects tie-break-visible behavior, so it keys."""
    a = ConstraintSet()
    a.add(CoalesceDimX(False, "local", "c0", level=0, weight=1.0))
    a.add(BlockSizeFloor(False, "global", "floor", weight=2.0))
    b = ConstraintSet()
    b.add(BlockSizeFloor(False, "global", "floor", weight=2.0))
    b.add(CoalesceDimX(False, "local", "c0", level=0, weight=1.0))
    assert constraint_set_fingerprint(a) != constraint_set_fingerprint(b)


def test_lru_eviction_and_stats():
    cache = SearchCache(maxsize=2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.get(("a",)) == 1  # refreshes "a"
    cache.put(("c",), 3)  # evicts "b", the least recently used
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == 1
    assert cache.get(("c",)) == 3
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.size) == (3, 1, 2)
    assert stats.hit_rate == pytest.approx(0.75)


def test_clear_caches_resets_global_memo():
    clear_caches()
    cache = get_search_cache()
    cache.put(("k",), "v")
    assert len(cache) == 1
    clear_caches()
    assert len(cache) == 0
    assert cache.stats().hits == 0
