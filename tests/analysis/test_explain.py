"""Tests for mapping-decision explanations."""

import pytest

from repro.analysis import analyze_program, explain_mapping
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll
from repro.gpusim import TESLA_K20C, decide_mapping


@pytest.fixture
def kernel(sum_rows_program):
    return analyze_program(sum_rows_program, R=1024, C=65536).kernel(0)


class TestExplain:
    def test_chosen_mapping_scores_full(self, kernel):
        decision = decide_mapping(kernel, "multidim", TESLA_K20C)
        explanation = explain_mapping(kernel, decision.mapping)
        assert explanation.score is not None
        assert explanation.score == pytest.approx(
            explanation.satisfied_weight
        )

    def test_verdicts_cover_every_constraint(self, kernel):
        decision = decide_mapping(kernel, "multidim", TESLA_K20C)
        explanation = explain_mapping(kernel, decision.mapping)
        assert len(explanation.verdicts) == len(
            kernel.constraints.constraints
        )

    def test_infeasible_mapping_reported(self, kernel):
        bad = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(1)),
                LevelMapping(Dim.X, 64, Span(1)),  # reduce needs Span(all)
            )
        )
        explanation = explain_mapping(kernel, bad)
        assert explanation.score is None
        assert "INFEASIBLE" in explanation.render()

    def test_sacrificed_constraints_listed(self, kernel):
        # a mapping that gives up the big coalescing win
        swapped = Mapping(
            (
                LevelMapping(Dim.X, 32, Span(1)),
                LevelMapping(Dim.Y, 32, SpanAll()),
            )
        )
        explanation = explain_mapping(kernel, swapped)
        sacrificed = {v.description for v in explanation.sacrificed}
        assert any("'m'" in d for d in sacrificed)

    def test_baselines_compared(self, kernel):
        decision = decide_mapping(kernel, "multidim", TESLA_K20C)
        explanation = explain_mapping(kernel, decision.mapping)
        names = {name for name, _ in explanation.baselines}
        assert names == {"1d", "thread-block/thread", "warp-based"}
        multidim_score = explanation.score
        for _name, score in explanation.baselines:
            if score is not None:
                assert score <= multidim_score + 1e-9

    def test_render_structure(self, kernel):
        decision = decide_mapping(kernel, "multidim", TESLA_K20C)
        text = explain_mapping(kernel, decision.mapping).render()
        assert "score:" in text
        assert "[hard]" in text and "[soft]" in text
        assert "baseline strategies" in text

    def test_cli_explain_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["map", "sumRows", "R=1024", "C=65536", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "attainable weight" in out
