"""Sweep-memo persistence: defensive loads, one shared invalidation path."""

import os
import pickle

from repro.analysis.cache import get_autotune_cache, get_search_cache
from repro.ir.serialize import PIPELINE_VERSION
from repro.service.memo import MEMO_VERSION, load_memo, memo_path, save_memo


class TestMemoPersistence:
    def test_save_load_round_trip(self, tmp_path):
        cache_dir = str(tmp_path)
        search = get_search_cache()
        search.clear()
        search.put(("memo-test", 1), "value")
        try:
            path = save_memo(cache_dir)
            assert path.exists()
            search.clear()
            restored = load_memo(cache_dir)
            assert restored["search"] >= 1
            assert search.get(("memo-test", 1)) == "value"
        finally:
            search.clear()
            get_autotune_cache().clear()

    def test_missing_file_is_empty_restore(self, tmp_path):
        assert load_memo(str(tmp_path)) == {"search": 0, "autotune": 0}

    def test_corrupt_file_discarded(self, tmp_path):
        path = memo_path(str(tmp_path))
        path.write_bytes(b"not a pickle")
        assert load_memo(str(tmp_path)) == {"search": 0, "autotune": 0}
        assert not path.exists(), "corrupt memo should be deleted"

    def test_version_skew_discarded(self, tmp_path):
        path = memo_path(str(tmp_path))
        payload = {
            "version": MEMO_VERSION + 1,
            "pipeline_version": 1,
            "search": [],
            "autotune": [],
        }
        path.write_bytes(pickle.dumps(payload))
        assert load_memo(str(tmp_path)) == {"search": 0, "autotune": 0}
        assert not path.exists()

    def test_malicious_pickle_is_discarded_not_executed(self, tmp_path):
        # pickle.load resolves and calls arbitrary globals; the memo
        # loader must treat a planted memo.pkl (shared/checked-out cache
        # dir) as corrupt, not as code to run.
        marker = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.system, (f"touch {marker}",))

        path = memo_path(str(tmp_path))
        path.write_bytes(pickle.dumps(Evil()))
        assert load_memo(str(tmp_path)) == {"search": 0, "autotune": 0}
        assert not marker.exists(), "unpickling must not execute globals"
        assert not path.exists(), "hostile memo should be deleted"

    def test_malformed_payload_shape_discarded(self, tmp_path):
        # A version-correct pickle whose entries have the wrong shape
        # raises TypeError/ValueError during install; still just a miss.
        payload = {
            "version": MEMO_VERSION,
            "pipeline_version": PIPELINE_VERSION,
            "search": 42,  # not an iterable of (key, value) pairs
            "autotune": [],
        }
        path = memo_path(str(tmp_path))
        path.write_bytes(pickle.dumps(payload))
        assert load_memo(str(tmp_path)) == {"search": 0, "autotune": 0}
        assert not path.exists()

    def test_evicted_entries_absent_from_next_snapshot(self, tmp_path):
        # The service persists via snapshot(), so whatever evict_where
        # dropped in-memory is dropped on disk too: one invalidation path.
        cache_dir = str(tmp_path)
        search = get_search_cache()
        search.clear()
        try:
            search.put(("stale",), 1)
            search.put(("fresh",), 2)
            search.evict_where(lambda key, value: key == ("stale",))
            save_memo(cache_dir)
            search.clear()
            load_memo(cache_dir)
            assert search.get(("stale",)) is None
            assert search.get(("fresh",)) == 2
        finally:
            search.clear()
            get_autotune_cache().clear()
