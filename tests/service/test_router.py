"""Routing primitives: consistent-hash ring and the hot LRU tier."""

import threading

import pytest

from repro.service.router import DEFAULT_RING_REPLICAS, HashRing, LRUCache


class TestHashRing:
    def test_placement_is_deterministic(self):
        ring_a = HashRing(["b0", "b1", "b2"])
        ring_b = HashRing(["b2", "b0", "b1"])  # insertion order irrelevant
        for i in range(256):
            key = f"digest-{i}"
            assert ring_a.node_for(key) == ring_b.node_for(key)

    def test_placement_stable_across_processes(self):
        # The ring hashes with SHA-256, not the process-seeded hash();
        # pin a few placements so an accidental switch to hash() (which
        # would shuffle shard ownership every boot) fails loudly.
        ring = HashRing(["b0", "b1", "b2"])
        placed = {f"key-{i}": ring.node_for(f"key-{i}") for i in range(64)}
        rebuilt = HashRing(["b0", "b1", "b2"])
        assert placed == {k: rebuilt.node_for(k) for k in placed}

    def test_shares_roughly_balanced(self):
        ring = HashRing(["b0", "b1", "b2", "b3"])
        shares = ring.shares(samples=4096)
        assert sum(shares.values()) == pytest.approx(1.0)
        for node, share in shares.items():
            # 64 virtual replicas keep each of 4 nodes within a loose
            # band around the ideal 25%.
            assert 0.10 < share < 0.45, (node, shares)

    def test_preference_lists_every_node_once(self):
        ring = HashRing(["b0", "b1", "b2"])
        for i in range(64):
            order = ring.preference(f"key-{i}")
            assert sorted(order) == ["b0", "b1", "b2"]
            assert order[0] == ring.node_for(f"key-{i}")

    def test_preference_limit_truncates(self):
        ring = HashRing(["b0", "b1", "b2"])
        assert len(ring.preference("key", limit=2)) == 2
        assert ring.preference("key", limit=1) == [ring.node_for("key")]
        assert len(ring.preference("key", limit=99)) == 3

    def test_remove_only_moves_the_removed_nodes_keys(self):
        ring = HashRing(["b0", "b1", "b2"])
        before = {f"key-{i}": ring.node_for(f"key-{i}") for i in range(512)}
        ring.remove("b1")
        for key, owner in before.items():
            after = ring.node_for(key)
            if owner != "b1":
                # Consistent hashing: keys not owned by the removed
                # node keep their placement.
                assert after == owner, key
            else:
                assert after != "b1"

    def test_failover_target_is_next_preference(self):
        # The node a key falls to when its primary dies is exactly the
        # second entry of the preference order — the router's retry walk
        # and the ring's rebalance agree.
        ring = HashRing(["b0", "b1", "b2"])
        for i in range(128):
            key = f"key-{i}"
            primary, second = ring.preference(key, limit=2)
            ring.remove(primary)
            assert ring.node_for(key) == second
            ring.add(primary)
            assert ring.node_for(key) == primary

    def test_add_is_idempotent(self):
        ring = HashRing(["b0"])
        ring.add("b0")
        assert len(ring) == 1
        assert ring.nodes() == ["b0"]

    def test_membership_protocol(self):
        ring = HashRing(["b0", "b1"])
        assert "b0" in ring
        assert "nope" not in ring
        ring.remove("nope")  # no-op, no raise
        assert len(ring) == 2

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.preference("key") == []
        with pytest.raises(ValueError):
            ring.node_for("key")

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        assert DEFAULT_RING_REPLICAS >= 16


class TestLRUCache:
    def test_get_put_and_eviction_order(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh 'a'; 'b' is now oldest
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.evictions == 1

    def test_overwrite_does_not_grow(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("a", 2)
        assert len(lru) == 1
        assert lru.get("a") == 2
        assert lru.evictions == 0

    def test_capacity_zero_disables_tier(self):
        lru = LRUCache(0)
        assert not lru.enabled
        lru.put("a", 1)
        assert lru.get("a") is None
        assert len(lru) == 0
        # A disabled tier records nothing: misses would pollute the
        # hit-rate stats of benchmarks that turn the tier off.
        assert lru.stats()["misses"] == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_stats_accounting(self):
        lru = LRUCache(8)
        lru.put("a", 1)
        lru.get("a")
        lru.get("missing")
        stats = lru.stats()
        assert stats == {
            "capacity": 8,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_clear(self):
        lru = LRUCache(4)
        for i in range(3):
            lru.put(str(i), i)
        assert lru.clear() == 3
        assert len(lru) == 0
        assert lru.clear() == 0

    def test_thread_safety_under_contention(self):
        lru = LRUCache(32)
        errors = []

        def hammer(seed: int) -> None:
            try:
                for i in range(500):
                    key = str((seed * 31 + i) % 64)
                    lru.put(key, i)
                    value = lru.get(key)
                    assert value is None or isinstance(value, int)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(lru) <= 32
        stats = lru.stats()
        assert stats["hits"] + stats["misses"] == 8 * 500
