"""Deadline propagation: wire format, admission shed, worker shed,
router shed, budget forwarding, and the HTTP 504 mapping.

The acceptance-criteria test is
``TestWorkerShed::test_saturated_backend_sheds_without_compiling``: a
tight-deadline request against a saturated backend must come back as a
typed shed outcome, never hang, and never reach the pipeline (verified
via the ``executions`` counter).
"""

import threading
import time

import pytest

from repro.errors import DeadlineExceededError, QueueFullError
from repro.service import (
    CompileRequest,
    CompileService,
    FleetConfig,
    FleetRouter,
    ServiceConfig,
    STATUS_ERROR,
)
from repro.service.fleet import Backend
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


def request(deadline_s=None, **sizes) -> CompileRequest:
    return CompileRequest(
        app="sumRows",
        sizes=sizes or {"R": 64, "C": 32},
        deadline_s=deadline_s,
    )


def service(**kwargs) -> CompileService:
    config = ServiceConfig(
        cache_dir=None, memo_persistence=False, **kwargs
    )
    return CompileService(
        config, compile_fn=lambda req, digest: fake_artifact(digest)
    )


def assert_shed(outcome):
    assert outcome.status == STATUS_ERROR
    assert outcome.error.error_type == "DeadlineExceededError"
    assert outcome.error.exit_code == 75


class TestWireFormat:
    def test_deadline_round_trips(self):
        req = request(deadline_s=1.5)
        data = req.to_dict()
        assert data["deadline_s"] == 1.5
        assert CompileRequest.from_dict(data).deadline_s == 1.5

    def test_absent_deadline_stays_absent(self):
        assert "deadline_s" not in request().to_dict()
        assert CompileRequest.from_dict(request().to_dict()).deadline_s is None

    def test_non_numeric_deadline_is_typed(self):
        from repro.errors import RuntimeConfigError

        data = request().to_dict()
        data["deadline_s"] = "soon"
        with pytest.raises(RuntimeConfigError):
            CompileRequest.from_dict(data)

    def test_digest_ignores_the_deadline(self):
        # Same program under a different budget = same artifact; the
        # content address must not fragment the cache by deadline.
        assert request().digest() == request(deadline_s=0.5).digest()
        assert request().digest() == request(deadline_s=-1.0).digest()

    def test_with_deadline_rebases_only_the_budget(self):
        req = request(deadline_s=10.0)
        hopped = req.with_deadline(3.25)
        assert hopped.deadline_s == 3.25
        assert hopped.app == req.app and hopped.sizes == req.sizes
        assert req.deadline_s == 10.0  # original untouched

    def test_non_positive_budgets_are_legal_on_the_wire(self):
        # A forwarding hop may ship an already-spent budget; the
        # receiver sheds rather than the sender crashing.
        assert request(deadline_s=0.0).deadline_s == 0.0
        assert request(deadline_s=-0.5).deadline_s == -0.5


class TestServiceShedding:
    def test_spent_budget_sheds_at_admission(self):
        svc = service(workers=1)
        try:
            outcome = svc.compile(request(deadline_s=0.0))
            assert_shed(outcome)
            assert svc.executions == 0  # never compiled
            assert svc.stats()["deadline_shed"] == 1
        finally:
            svc.close()

    def test_saturated_backend_sheds_without_compiling(self):
        """The acceptance gate: tight deadline + busy worker = typed
        shed within deadline + grace, zero pipeline executions."""
        release = threading.Event()
        started = threading.Event()

        def blocking_compile(req, digest):
            started.set()
            assert release.wait(timeout=30)
            return fake_artifact(digest)

        svc = CompileService(
            ServiceConfig(
                cache_dir=None, memo_persistence=False, workers=1
            ),
            compile_fn=blocking_compile,
        )
        try:
            blocker = svc.submit(request())  # occupies the one worker
            assert started.wait(timeout=30)
            tight = svc.submit(request(deadline_s=0.15, R=96, C=32))
            time.sleep(0.3)  # let the deadline lapse while queued
            release.set()
            blocked_outcome = blocker.result(timeout=30)
            assert blocked_outcome.ok
            t0 = time.perf_counter()
            outcome = tight.result(timeout=30)
            assert time.perf_counter() - t0 < 5.0  # resolved, no hang
            assert_shed(outcome)
            # The shed happened before the pipeline: only the blocker
            # ever executed.
            assert svc.executions == 1
            assert svc.stats()["deadline_shed"] == 1
        finally:
            release.set()
            svc.close()

    def test_compile_wait_is_bounded_by_the_budget(self):
        """Even with the worker wedged, compile() answers within
        deadline + grace instead of hanging."""
        release = threading.Event()
        started = threading.Event()

        def blocking_compile(req, digest):
            started.set()
            assert release.wait(timeout=30)
            return fake_artifact(digest)

        svc = CompileService(
            ServiceConfig(
                cache_dir=None, memo_persistence=False, workers=1
            ),
            compile_fn=blocking_compile,
        )
        try:
            svc.submit(request())
            assert started.wait(timeout=30)
            t0 = time.perf_counter()
            outcome = svc.compile(request(deadline_s=0.1, R=96, C=32))
            elapsed = time.perf_counter() - t0
            assert_shed(outcome)
            # 0.1s budget + 2s grace, with scheduling margin.
            assert elapsed < 4.0
        finally:
            release.set()
            svc.close()


class RecordingBackend(Backend):
    """Captures the deadline each forwarded request carried."""

    def __init__(self, name, fail_with=None):
        self.name = name
        self.fail_with = fail_with
        self.seen_deadlines = []
        self.calls = 0

    def compile(self, req):
        self.calls += 1
        self.seen_deadlines.append(req.deadline_s)
        if self.fail_with is not None:
            raise self.fail_with
        from repro.service.api import STATUS_MISS, CompileOutcome

        digest = req.digest()
        return CompileOutcome(
            digest=digest,
            status=STATUS_MISS,
            artifact=fake_artifact(digest).to_dict(),
        )

    def alive(self):
        return True

    def mark_dead(self):
        pass

    def close(self):
        pass


class TestRouterShedding:
    def test_spent_budget_sheds_at_router_admission(self):
        backend = RecordingBackend("b0")
        router = FleetRouter([backend], FleetConfig(probe_interval_s=0))
        try:
            outcome = router.submit(request(deadline_s=-1.0)).wait(
                timeout=10
            )
            assert_shed(outcome)
            assert backend.calls == 0
            assert router.stats()["deadline_shed"] == 1
        finally:
            router.close()

    def test_router_forwards_the_remaining_budget(self):
        backend = RecordingBackend("b0")
        router = FleetRouter(
            [backend], FleetConfig(lru_capacity=0, probe_interval_s=0)
        )
        try:
            outcome = router.submit(request(deadline_s=30.0)).wait(
                timeout=10
            )
            assert outcome.ok
            (forwarded,) = backend.seen_deadlines
            # Rebased per hop: strictly less than the original budget,
            # but nearly all of it (admission is fast).
            assert forwarded is not None
            assert 0 < forwarded < 30.0
            assert forwarded > 25.0
        finally:
            router.close()

    def test_saturated_fleet_sheds_within_budget_plus_backoff(self):
        """Failover never outlives the caller's budget: with every
        backend saturated, a tight deadline resolves as a typed shed in
        roughly deadline + one backoff slice, not retries * backoff."""
        backends = [
            RecordingBackend(f"b{i}", fail_with=QueueFullError("full"))
            for i in range(2)
        ]
        router = FleetRouter(
            backends,
            FleetConfig(
                lru_capacity=0,
                retries=50,
                backoff_base_s=0.05,
                backoff_max_s=0.1,
                probe_interval_s=0,
            ),
        )
        try:
            t0 = time.perf_counter()
            outcome = router.submit(request(deadline_s=0.2)).wait(
                timeout=30
            )
            elapsed = time.perf_counter() - t0
            assert_shed(outcome)
            # Budget 0.2s + one 0.1s backoff slice, with margin — far
            # below the ~5s a full 50-retry walk would take.
            assert elapsed < 1.5
            assert router.stats()["deadline_shed"] == 1
        finally:
            router.close()

    def test_backend_shed_is_final_not_retried(self):
        """A DeadlineExceededError outcome from a backend means the
        budget is spent everywhere — the router must not reroute it."""
        from repro.service.api import CompileOutcome
        from repro.service.service import error_outcome

        class SheddingBackend(RecordingBackend):
            def compile(self, req):
                self.calls += 1
                return error_outcome(
                    req.digest(), DeadlineExceededError("spent")
                )

        backends = [SheddingBackend(f"b{i}") for i in range(3)]
        router = FleetRouter(
            backends,
            FleetConfig(lru_capacity=0, retries=4, probe_interval_s=0),
        )
        try:
            outcome = router.submit(request(deadline_s=30.0)).wait(
                timeout=10
            )
            assert_shed(outcome)
            assert sum(b.calls for b in backends) == 1
        finally:
            router.close()


class TestHttpMapping:
    def test_shed_maps_to_504_and_exit_75(self):
        import threading as _threading

        from repro.service import ServiceClient
        from repro.service.http import make_server, serve_forever

        svc = service(workers=1)
        server = make_server(svc, "127.0.0.1", 0)
        thread = _threading.Thread(
            target=serve_forever, args=(server,), daemon=True
        )
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=30)
            # A spent budget comes back as an outcome, not an exception:
            # 504 is a semantic answer the client must not retry.
            outcome = client.compile(request(deadline_s=0.0))
            assert_shed(outcome)

            # Raw status check: the shed is a 504, a pipeline error
            # stays 422.
            status, data = client._request(
                "POST", "/v1/compile",
                payload=request(deadline_s=0.0).to_dict(),
            )
            assert status == 504
            assert data["error"]["error_type"] == "DeadlineExceededError"
        finally:
            server.shutdown()
            thread.join(timeout=10)
            svc.close()
