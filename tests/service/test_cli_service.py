"""CLI integration: submit/stats/cache against a live server, and the
serve command itself as a subprocess (the deployment shape CI uses)."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.errors import EXIT_UNAVAILABLE
from repro.service import CompileService, ServiceConfig
from repro.service.http import make_server, serve_forever
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        mappings=["L0[dimy, 32, span(1)]"],
        cost={"total_us": 12.5, "kernels": []},
    )


@pytest.fixture
def served(tmp_path):
    service = CompileService(
        ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
        compile_fn=lambda req, digest: fake_artifact(digest),
    )
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=serve_forever, args=(server,))
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        service.close()


class TestSubmit:
    def test_miss_then_hit(self, served, capsys):
        argv = ["submit", "sumRows", "R=64", "C=32", "--url", served.url]
        assert main(argv) == 0
        assert "miss" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hit" in out
        assert "L0[dimy" in out

    def test_json_output(self, served, capsys):
        assert main([
            "submit", "sumRows", "R=64", "C=32",
            "--url", served.url, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "miss"
        assert payload["artifact"]["program"] == "fake"

    def test_serialized_program_submission(self, served, tmp_path, capsys):
        from repro.ir.serialize import program_to_dict
        from tests.conftest import make_sum_rows

        path = tmp_path / "prog.json"
        path.write_text(json.dumps(program_to_dict(make_sum_rows())))
        assert main([
            "submit", "--program", str(path), "R=64", "C=32",
            "--url", served.url,
        ]) == 0
        assert "miss" in capsys.readouterr().out

    def test_app_and_program_are_exclusive(self, served, tmp_path):
        from repro.errors import EXIT_CONFIG

        assert main(["submit", "--url", served.url]) == EXIT_CONFIG

    def test_unreachable_server_exits_75(self, capsys):
        code = main([
            "submit", "sumRows", "--url", "http://127.0.0.1:9",
            "--timeout", "2",
        ])
        assert code == EXIT_UNAVAILABLE

    def test_server_failure_writes_replayable_report(self, tmp_path, capsys):
        # A real pipeline so the failure report is genuine.
        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            report_dir = tmp_path / "reports"
            code = main([
                "submit", "sumRows", "R=64", "C=32",
                "--strategy", "nope",
                "--url", server.url,
                "--report-dir", str(report_dir),
            ])
            assert code == 3  # MappingError's exit code, passed through
            err = capsys.readouterr().err
            assert "replay-failure" in err
            reports = list(report_dir.glob("failure-*.json"))
            assert len(reports) == 1
            # The printed invocation actually replays.
            assert main(["replay-failure", str(reports[0])]) == 0
        finally:
            server.shutdown()
            thread.join(timeout=30)
            service.close()


class TestStatsUrl:
    def test_remote_stats(self, served, capsys):
        main(["submit", "sumRows", "R=64", "C=32", "--url", served.url])
        capsys.readouterr()
        assert main(["stats", "--url", served.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["requests"] == 1

    def test_local_stats_still_needs_app(self):
        from repro.errors import EXIT_CONFIG

        assert main(["stats"]) == EXIT_CONFIG


class TestCacheCommand:
    def test_stats_list_clear(self, served, tmp_path, capsys):
        main(["submit", "sumRows", "R=64", "C=32", "--url", served.url])
        capsys.readouterr()
        cache_dir = str(served.service.store.root)

        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] == 1

        assert main(["cache", "list", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 artifact(s)" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert len(served.service.store) == 0


class HalfClosingServer:
    """Accepts, reads the request, then drops the connection with no
    response — what a server mid-shutdown looks like from the client."""

    def __init__(self):
        import socket

        self._stop = threading.Event()
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
                conn.recv(65536)
                conn.close()
            except OSError:
                return

    def close(self):
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=10)


@pytest.fixture
def half_closed():
    server = HalfClosingServer()
    try:
        yield server
    finally:
        server.close()


class TestTransportErrorRegression:
    """Satellite regression: a dying or unreachable server must produce
    a typed exit code and a one-line message — never a raw traceback
    (RemoteDisconnected and friends escape urllib unwrapped)."""

    def test_submit_mid_shutdown_exits_75_one_line(self, half_closed,
                                                   capsys):
        code = main([
            "submit", "sumRows", "R=64", "C=32",
            "--url", half_closed.url, "--timeout", "5",
        ])
        assert code == EXIT_UNAVAILABLE
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        lines = [l for l in captured.err.strip().splitlines() if l]
        assert len(lines) == 1
        assert lines[0].startswith("error: ServiceError:")

    def test_stats_mid_shutdown_exits_75_one_line(self, half_closed,
                                                  capsys):
        code = main(["stats", "--url", half_closed.url, "--timeout", "5"])
        assert code == EXIT_UNAVAILABLE
        lines = [
            l for l in capsys.readouterr().err.strip().splitlines() if l
        ]
        assert len(lines) == 1
        assert lines[0].startswith("error: ServiceError:")

    def test_stats_unreachable_exits_75(self, capsys):
        code = main([
            "stats", "--url", "http://127.0.0.1:9", "--timeout", "2",
        ])
        assert code == EXIT_UNAVAILABLE
        assert "Traceback" not in capsys.readouterr().err

    def test_fleet_submit_mid_shutdown_exits_75(self, half_closed,
                                                capsys):
        code = main([
            "fleet", "submit", "sumRows", "R=64", "C=32",
            "--url", half_closed.url, "--timeout", "5",
        ])
        assert code == EXIT_UNAVAILABLE
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "error: ServiceError:" in captured.err


@pytest.fixture
def fleet_served(tmp_path):
    from repro.service import local_fleet

    router = local_fleet(
        2,
        str(tmp_path / "cache"),
        compile_fn=lambda req, digest: fake_artifact(digest),
    )
    server = make_server(router, "127.0.0.1", 0)
    thread = threading.Thread(target=serve_forever, args=(server,))
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        router.close()


class TestFleetCli:
    def test_fleet_submit_single(self, fleet_served, capsys):
        argv = [
            "fleet", "submit", "sumRows", "R=64", "C=32",
            "--url", fleet_served.url,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "miss" in out
        assert "served_by=backend-" in out
        assert main(argv) == 0
        assert "served_by=router:" in capsys.readouterr().out

    def test_fleet_submit_count_aggregates(self, fleet_served, capsys):
        assert main([
            "fleet", "submit", "sumRows", "R=96", "C=32",
            "--url", fleet_served.url, "--count", "6", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == 6
        assert payload["completed"] == 6
        assert payload["transport_failures"] == 0
        assert payload["digests"] == 1
        assert payload["statuses"].get("error", 0) == 0
        assert payload["latency_ms"]["p99"] >= payload["latency_ms"]["p50"]
        # Identical concurrent requests coalesce fleet-wide: whatever
        # mix of miss/hit the clients saw, the router dispatched the
        # digest at most once (coalesced waiters share that outcome).
        router = fleet_served.service
        assert router.stats()["misses"] <= 1

    def test_fleet_stats(self, fleet_served, capsys):
        main([
            "fleet", "submit", "sumRows", "R=64", "C=32",
            "--url", fleet_served.url,
        ])
        capsys.readouterr()
        assert main([
            "fleet", "stats", "--url", fleet_served.url, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        service = payload["service"]
        assert service["requests"] >= 1
        assert set(service["backends"]) == {"backend-0", "backend-1"}
        assert "lru" in service

    def test_fleet_serve_subprocess_lifecycle(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        log = tmp_path / "fleet.log"
        with open(log, "w") as log_fh:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "fleet", "serve",
                    "--port", "0", "--backends", "2", "--workers", "1",
                    "--cache-dir", str(tmp_path / "cache"),
                ],
                stdout=log_fh,
                stderr=subprocess.STDOUT,
                env=env,
            )
        try:
            url = None
            deadline = time.time() + 60
            while time.time() < deadline and url is None:
                text = log.read_text()
                if "listening on" in text:
                    url = text.split("listening on ")[1].split()[0]
                    break
                time.sleep(0.2)
            assert url, f"fleet never came up: {log.read_text()}"

            from repro.service import ServiceClient

            client = ServiceClient(url, timeout=120)
            assert client.health()["ok"] is True
            outcome = client.compile(
                {"app": "sumRows", "sizes": {"R": 64, "C": 32}}
            )
            assert outcome.ok
            assert outcome.served_by is not None
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        text = log.read_text()
        assert "routed 1 request(s)" in text


class TestFleetHealthEndpoint:
    def test_fleet_front_end_answers_health(self, fleet_served):
        """The router serves /v1/health itself — a prober (or a human)
        pointed at the fleet front-end gets the same surface a single
        server exposes, plus per-backend breaker state."""
        from repro.service import ServiceClient

        health = ServiceClient(fleet_served.url, timeout=10).health_detail()
        assert health["ok"] is True
        assert health["closed"] is False
        assert len(health["backends"]) == 2
        for entry in health["backends"].values():
            assert entry["alive"] is True
            assert entry["breaker"] == "closed"


class TestDeadlineCli:
    def test_submit_spent_deadline_exits_75(self, served, capsys):
        """A request whose budget is spent before the server can serve
        it comes back as a typed 504 shed with EX_TEMPFAIL, not a hang
        and not a traceback."""
        code = main([
            "submit", "sumRows", "R=64", "C=32",
            "--url", served.url, "--deadline-s", "0.000001",
        ])
        assert code == EXIT_UNAVAILABLE
        err = capsys.readouterr().err
        assert "DeadlineExceededError" in err

    def test_submit_generous_deadline_succeeds(self, served, capsys):
        assert main([
            "submit", "sumRows", "R=128", "C=32",
            "--url", served.url, "--deadline-s", "60",
        ]) == 0
        assert "miss" in capsys.readouterr().out

    def test_fleet_submit_spent_deadline_exits_75(
        self, fleet_served, capsys
    ):
        code = main([
            "fleet", "submit", "sumRows", "R=64", "C=32",
            "--url", fleet_served.url, "--deadline-s", "0.000001",
            "--json",
        ])
        assert code == EXIT_UNAVAILABLE
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["error_type"] == "DeadlineExceededError"
        assert payload["error"]["exit_code"] == EXIT_UNAVAILABLE

    def test_fleet_submit_deadline_zero_means_unbounded(
        self, fleet_served, capsys
    ):
        # <=0 is documented as "no deadline", matching `serve`'s flag.
        assert main([
            "fleet", "submit", "sumRows", "R=160", "C=32",
            "--url", fleet_served.url, "--deadline-s", "0",
        ]) == 0


class TestFleetChaosCli:
    def test_chaos_matrix_subset_passes(self, capsys):
        assert main([
            "fleet", "chaos", "--kind", "kill", "--kind", "partition",
            "--wave", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet chaos: 2 campaign(s), 0 violation(s)" in out
        assert "fleet/kill" in out and "fleet/partition" in out

    def test_chaos_json_output(self, capsys):
        assert main([
            "fleet", "chaos", "--kind", "slow", "--wave", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cells"][0]["kind"] == "slow"
        assert payload["cells"][0]["lost"] == 0

    def test_chaos_unknown_kind_is_a_config_error(self, capsys):
        from repro.errors import EXIT_CONFIG

        assert main(["fleet", "chaos", "--kind", "meteor"]) == EXIT_CONFIG


class TestServeSubprocess:
    def test_serve_sigterm_lifecycle(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        log = tmp_path / "serve.log"
        trace = tmp_path / "trace.json"
        with open(log, "w") as log_fh:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--port", "0", "--workers", "1",
                    "--cache-dir", str(tmp_path / "cache"),
                    "--trace", str(trace),
                ],
                stdout=log_fh,
                stderr=subprocess.STDOUT,
                env=env,
            )
        try:
            url = None
            deadline = time.time() + 30
            while time.time() < deadline and url is None:
                text = log.read_text()
                if "listening on" in text:
                    url = text.split("listening on ")[1].split()[0]
                    break
                time.sleep(0.2)
            assert url, f"server never came up: {log.read_text()}"

            from repro.service import ServiceClient

            assert ServiceClient(url).health()["ok"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        # Clean shutdown wrote the trace artifact and the memo snapshot.
        assert trace.exists()
        text = log.read_text()
        assert "served 0 request(s)" in text
