"""CLI integration: submit/stats/cache against a live server, and the
serve command itself as a subprocess (the deployment shape CI uses)."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.errors import EXIT_UNAVAILABLE
from repro.service import CompileService, ServiceConfig
from repro.service.http import make_server, serve_forever
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        mappings=["L0[dimy, 32, span(1)]"],
        cost={"total_us": 12.5, "kernels": []},
    )


@pytest.fixture
def served(tmp_path):
    service = CompileService(
        ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
        compile_fn=lambda req, digest: fake_artifact(digest),
    )
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=serve_forever, args=(server,))
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        service.close()


class TestSubmit:
    def test_miss_then_hit(self, served, capsys):
        argv = ["submit", "sumRows", "R=64", "C=32", "--url", served.url]
        assert main(argv) == 0
        assert "miss" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hit" in out
        assert "L0[dimy" in out

    def test_json_output(self, served, capsys):
        assert main([
            "submit", "sumRows", "R=64", "C=32",
            "--url", served.url, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "miss"
        assert payload["artifact"]["program"] == "fake"

    def test_serialized_program_submission(self, served, tmp_path, capsys):
        from repro.ir.serialize import program_to_dict
        from tests.conftest import make_sum_rows

        path = tmp_path / "prog.json"
        path.write_text(json.dumps(program_to_dict(make_sum_rows())))
        assert main([
            "submit", "--program", str(path), "R=64", "C=32",
            "--url", served.url,
        ]) == 0
        assert "miss" in capsys.readouterr().out

    def test_app_and_program_are_exclusive(self, served, tmp_path):
        from repro.errors import EXIT_CONFIG

        assert main(["submit", "--url", served.url]) == EXIT_CONFIG

    def test_unreachable_server_exits_75(self, capsys):
        code = main([
            "submit", "sumRows", "--url", "http://127.0.0.1:9",
            "--timeout", "2",
        ])
        assert code == EXIT_UNAVAILABLE

    def test_server_failure_writes_replayable_report(self, tmp_path, capsys):
        # A real pipeline so the failure report is genuine.
        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            report_dir = tmp_path / "reports"
            code = main([
                "submit", "sumRows", "R=64", "C=32",
                "--strategy", "nope",
                "--url", server.url,
                "--report-dir", str(report_dir),
            ])
            assert code == 3  # MappingError's exit code, passed through
            err = capsys.readouterr().err
            assert "replay-failure" in err
            reports = list(report_dir.glob("failure-*.json"))
            assert len(reports) == 1
            # The printed invocation actually replays.
            assert main(["replay-failure", str(reports[0])]) == 0
        finally:
            server.shutdown()
            thread.join(timeout=30)
            service.close()


class TestStatsUrl:
    def test_remote_stats(self, served, capsys):
        main(["submit", "sumRows", "R=64", "C=32", "--url", served.url])
        capsys.readouterr()
        assert main(["stats", "--url", served.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["requests"] == 1

    def test_local_stats_still_needs_app(self):
        from repro.errors import EXIT_CONFIG

        assert main(["stats"]) == EXIT_CONFIG


class TestCacheCommand:
    def test_stats_list_clear(self, served, tmp_path, capsys):
        main(["submit", "sumRows", "R=64", "C=32", "--url", served.url])
        capsys.readouterr()
        cache_dir = str(served.service.store.root)

        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] == 1

        assert main(["cache", "list", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 artifact(s)" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert len(served.service.store) == 0


class TestServeSubprocess:
    def test_serve_sigterm_lifecycle(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        log = tmp_path / "serve.log"
        trace = tmp_path / "trace.json"
        with open(log, "w") as log_fh:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--port", "0", "--workers", "1",
                    "--cache-dir", str(tmp_path / "cache"),
                    "--trace", str(trace),
                ],
                stdout=log_fh,
                stderr=subprocess.STDOUT,
                env=env,
            )
        try:
            url = None
            deadline = time.time() + 30
            while time.time() < deadline and url is None:
                text = log.read_text()
                if "listening on" in text:
                    url = text.split("listening on ")[1].split()[0]
                    break
                time.sleep(0.2)
            assert url, f"server never came up: {log.read_text()}"

            from repro.service import ServiceClient

            assert ServiceClient(url).health()["ok"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        # Clean shutdown wrote the trace artifact and the memo snapshot.
        assert trace.exists()
        text = log.read_text()
        assert "served 0 request(s)" in text
