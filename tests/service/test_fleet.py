"""Fleet router: sharding, cache tiers, coalescing, failover.

The failover integration tests are the PR's acceptance gate: kill one
backend of three mid-campaign and the fleet must lose zero requests,
serve byte-identical artifacts, and account for every reroute.
"""

import signal
import threading
import time

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.service import (
    STATUS_ERROR,
    STATUS_HIT,
    STATUS_MISS,
    CompileRequest,
    FleetConfig,
    FleetRouter,
    ServiceClient,
    artifact_fingerprint,
    local_fleet,
)
from repro.service.fleet import (
    SERVED_BY_LRU,
    SERVED_BY_STORE,
    Backend,
    spawn_server_process,
)
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


def request(**sizes) -> CompileRequest:
    return CompileRequest(app="sumRows", sizes=sizes or {"R": 64, "C": 32})


def distinct_requests(n: int, base: int = 0):
    return [request(R=64 + 32 * (base + i), C=32) for i in range(n)]


class StubBackend(Backend):
    """A scriptable fleet member for router unit tests."""

    def __init__(self, name, fail_with=None, fail_times=0, gate=None):
        self.name = name
        self.fail_with = fail_with
        self.fail_times = fail_times
        self.gate = gate
        self.calls = 0
        self._dead = False
        self._lock = threading.Lock()

    def compile(self, req):
        with self._lock:
            self.calls += 1
            calls = self.calls
        if self.gate is not None and not self.gate.wait(timeout=30):
            raise TimeoutError("test gate never opened")
        if self.fail_with is not None and (
            self.fail_times == 0 or calls <= self.fail_times
        ):
            raise self.fail_with
        digest = req.digest()
        from repro.service.api import CompileOutcome

        return CompileOutcome(
            digest=digest,
            status=STATUS_MISS,
            artifact=fake_artifact(digest).to_dict(),
        )

    def alive(self):
        return not self._dead

    def mark_dead(self):
        self._dead = True

    def close(self):
        pass


class TestCacheTiers:
    def test_miss_then_lru_then_store(self, tmp_path):
        fleet = local_fleet(
            2,
            str(tmp_path / "cache"),
            fleet_config=FleetConfig(lru_capacity=4),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            first = fleet.submit(request()).wait(timeout=60)
            assert first.status == STATUS_MISS
            assert first.served_by.startswith("backend-")

            second = fleet.submit(request()).wait(timeout=30)
            assert second.status == STATUS_HIT
            assert second.served_by == SERVED_BY_LRU

            fleet.lru.clear()
            third = fleet.submit(request()).wait(timeout=30)
            assert third.status == STATUS_HIT
            assert third.served_by == SERVED_BY_STORE
            # The store hit refilled the LRU.
            fourth = fleet.submit(request()).wait(timeout=30)
            assert fourth.served_by == SERVED_BY_LRU

            stats = fleet.stats()
            assert stats["misses"] == 1
            assert stats["lru_hits"] == 2
            assert stats["store_hits"] == 1
        finally:
            fleet.close()

    def test_lru_capacity_zero_disables_hot_tier(self, tmp_path):
        fleet = local_fleet(
            1,
            str(tmp_path / "cache"),
            fleet_config=FleetConfig(lru_capacity=0),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            fleet.submit(request()).wait(timeout=60)
            outcome = fleet.submit(request()).wait(timeout=30)
            # Repeat requests still hit, but from disk, not memory.
            assert outcome.served_by == SERVED_BY_STORE
        finally:
            fleet.close()

    def test_write_through_to_router_store(self, tmp_path):
        # Backends have no store of their own; a fresh compile must
        # still land in the router's disk tier.
        router = FleetRouter(
            [StubBackend("b0"), StubBackend("b1")],
            FleetConfig(cache_dir=str(tmp_path / "router-cache")),
        )
        try:
            outcome = router.submit(request()).wait(timeout=30)
            assert outcome.status == STATUS_MISS
            assert router.store.get(outcome.digest) is not None
        finally:
            router.close()


class TestSharding:
    def test_same_digest_same_backend(self, tmp_path):
        # With caches disabled every submit dispatches; one digest must
        # always land on its ring primary.
        router = FleetRouter(
            [StubBackend(f"b{i}") for i in range(3)],
            FleetConfig(lru_capacity=0),
        )
        try:
            served = set()
            for _ in range(4):
                outcome = router.submit(request()).wait(timeout=30)
                served.add(outcome.served_by)
            assert len(served) == 1
            digest = request().digest()
            assert served == {router.ring.node_for(digest)}
            assert router.stats()["reroutes"] == 0
        finally:
            router.close()

    def test_distinct_digests_spread_over_backends(self):
        router = FleetRouter(
            [StubBackend(f"b{i}") for i in range(3)],
            FleetConfig(lru_capacity=0),
        )
        try:
            outcomes = [
                t.wait(timeout=60)
                for t in router.submit_many(distinct_requests(24))
            ]
            assert all(o.ok for o in outcomes)
            assert len({o.served_by for o in outcomes}) >= 2
        finally:
            router.close()


class TestCoalescing:
    def test_fleet_wide_single_flight(self, tmp_path):
        gate = threading.Event()
        backends = [StubBackend(f"b{i}", gate=gate) for i in range(3)]
        router = FleetRouter(backends, FleetConfig(lru_capacity=8))
        try:
            tickets = [router.submit(request()) for _ in range(8)]
            roles = [t.role for t in tickets]
            assert roles.count(STATUS_MISS) == 1
            assert roles.count("coalesced") == 7
            assert not any(t.done() for t in tickets)
            assert all(t.poll() is None for t in tickets)
            gate.set()
            outcomes = [t.wait(timeout=30) for t in tickets]
            assert sum(b.calls for b in backends) == 1
            assert len({o.digest for o in outcomes}) == 1
            assert all(o.ok for o in outcomes)
            assert router.stats()["coalesced"] == 7
        finally:
            gate.set()
            router.close()

    def test_ticket_poll_and_done(self):
        gate = threading.Event()
        router = FleetRouter(
            [StubBackend("b0", gate=gate)], FleetConfig(lru_capacity=0)
        )
        try:
            ticket = router.submit(request())
            assert not ticket.done()
            assert ticket.poll() is None
            gate.set()
            outcome = ticket.wait(timeout=30)
            assert ticket.done()
            assert ticket.poll() is outcome
        finally:
            gate.set()
            router.close()


class TestAdmission:
    def test_router_queue_bound(self):
        gate = threading.Event()
        router = FleetRouter(
            [StubBackend("b0", gate=gate)],
            FleetConfig(lru_capacity=0, queue_limit=1, dispatchers=1),
        )
        try:
            router.submit(request(R=64, C=32))
            with pytest.raises(QueueFullError):
                router.submit(request(R=128, C=32))
            # Identical digests coalesce instead of being rejected.
            joined = router.submit(request(R=64, C=32))
            assert joined.role == "coalesced"
        finally:
            gate.set()
            router.close()

    def test_submit_many_never_raises_mid_batch(self):
        router = FleetRouter([StubBackend("b0")], FleetConfig())
        try:
            requests = [
                request(R=64, C=32),
                CompileRequest(app="noSuchApp"),
                request(R=128, C=32),
            ]
            tickets = router.submit_many(requests)
            assert len(tickets) == len(requests)
            outcomes = [t.wait(timeout=30) for t in tickets]
            assert outcomes[0].ok and outcomes[2].ok
            assert outcomes[1].status == STATUS_ERROR
            assert outcomes[1].error.error_type == "RuntimeConfigError"
        finally:
            router.close()

    def test_submit_after_close_raises(self):
        router = FleetRouter([StubBackend("b0")], FleetConfig())
        router.close()
        with pytest.raises(ServiceError):
            router.submit(request())


class TestFailover:
    def test_saturated_backend_reroutes_without_death(self):
        # Every backend that owns the key sheds load once; the router
        # backs off and lands the request on the next preference node.
        digest = request().digest()
        backends = {
            name: StubBackend(name) for name in ("b0", "b1", "b2")
        }
        router = FleetRouter(
            list(backends.values()),
            FleetConfig(
                lru_capacity=0, retries=2, backoff_base_s=0.001,
                backoff_max_s=0.01,
            ),
        )
        try:
            primary, second = router.ring.preference(digest, limit=2)
            backends[primary].fail_with = QueueFullError("queue full")
            backends[primary].fail_times = 0  # always saturated
            outcome = router.submit(request()).wait(timeout=30)
            assert outcome.ok
            assert outcome.served_by == second
            stats = router.stats()
            assert stats["reroutes"] == 1
            assert stats["backends"][primary]["failures"] == 1
            assert stats["backends"][primary]["reroutes_from"] == 1
            # Saturation is transient: the backend is still in service.
            assert stats["backends"][primary]["alive"] is True
        finally:
            router.close()

    def test_transport_failure_marks_backend_dead(self):
        digest = request().digest()
        backends = {
            name: StubBackend(name) for name in ("b0", "b1", "b2")
        }
        router = FleetRouter(
            list(backends.values()),
            FleetConfig(
                lru_capacity=0, retries=2, backoff_base_s=0.001,
                backoff_max_s=0.01,
            ),
        )
        try:
            primary, second = router.ring.preference(digest, limit=2)
            backends[primary].fail_with = ServiceError("connection refused")
            outcome = router.submit(request()).wait(timeout=30)
            assert outcome.ok
            assert outcome.served_by == second
            stats = router.stats()
            assert stats["backends"][primary]["alive"] is False
            # Later requests skip the dead node without burning a retry.
            later = router.submit(request(R=96, C=32)).wait(timeout=30)
            assert later.ok
            assert later.served_by != primary
        finally:
            router.close()

    def test_pipeline_error_is_final_not_rerouted(self):
        from repro.errors import MappingError

        backends = [
            StubBackend(f"b{i}", fail_with=MappingError("bad strategy"))
            for i in range(3)
        ]
        router = FleetRouter(
            backends, FleetConfig(lru_capacity=0, retries=2)
        )
        try:
            outcome = router.submit(request()).wait(timeout=30)
            assert outcome.status == STATUS_ERROR
            assert outcome.error.error_type == "MappingError"
            # An answer, not a routing failure: exactly one attempt.
            assert sum(b.calls for b in backends) == 1
            assert router.stats()["reroutes"] == 0
        finally:
            router.close()

    def test_all_backends_down_yields_typed_outcome(self):
        backends = [
            StubBackend(f"b{i}", fail_with=ServiceError("down"))
            for i in range(2)
        ]
        router = FleetRouter(
            backends,
            FleetConfig(
                lru_capacity=0, retries=2, backoff_base_s=0.001,
                backoff_max_s=0.01,
            ),
        )
        try:
            outcome = router.submit(request()).wait(timeout=30)
            assert outcome.status == STATUS_ERROR
            assert outcome.error.error_type == "ServiceError"
            assert "all fleet attempts failed" in outcome.error.message
        finally:
            router.close()

    def test_restarted_backend_is_readmitted_by_the_prober(self):
        """Regression for one-way death: a backend that failed in
        transport, got marked dead, and then came back must receive
        traffic again within a few probe intervals — no operator
        action, no router restart."""

        class RevivableBackend(StubBackend):
            """Server-side health independent of the router's liveness
            flag (the HttpBackend shape: probes ask the server)."""

            def __init__(self, name):
                super().__init__(name)
                self.server_up = True

            def compile(self, req):
                if not self.server_up:
                    raise ServiceError("connection refused")
                return super().compile(req)

            def mark_alive(self):
                self._dead = False

            def probe(self):
                if not self.server_up:
                    raise ServiceError("connection refused")
                return {"ok": True}

        probe_interval_s = 0.05
        backends = {
            name: RevivableBackend(name) for name in ("b0", "b1", "b2")
        }
        router = FleetRouter(
            list(backends.values()),
            FleetConfig(
                lru_capacity=0, retries=3, backoff_base_s=0.001,
                backoff_max_s=0.01,
                probe_interval_s=probe_interval_s,
                breaker_failure_threshold=2,
                breaker_reset_timeout_s=probe_interval_s,
            ),
        )

        def shard_request(victim, base):
            candidate = base
            while True:
                req = request(R=64 + 32 * candidate, C=32)
                if router.ring.node_for(req.digest()) == victim:
                    return req
                candidate += 1

        try:
            victim = router.ring.node_for(request().digest())
            backends[victim].server_up = False
            outcome = router.submit(request()).wait(timeout=30)
            assert outcome.ok and outcome.served_by != victim
            assert router.stats()["backends"][victim]["alive"] is False

            # The restart: server back up; only the prober can notice.
            backends[victim].server_up = True
            deadline = time.monotonic() + 40 * probe_interval_s
            readmitted = False
            while time.monotonic() < deadline:
                entry = router.stats()["backends"][victim]
                if entry["alive"] and entry["breaker"]["state"] == "closed":
                    readmitted = True
                    break
                time.sleep(probe_interval_s / 2)
            assert readmitted, (
                f"victim not readmitted within 40 probe intervals: "
                f"{router.stats()['backends'][victim]}"
            )
            assert router.stats()["readmissions"] >= 1

            # And it actually receives traffic again on its own shard.
            outcome = router.submit(
                shard_request(victim, base=50)
            ).wait(timeout=30)
            assert outcome.ok
            assert outcome.served_by == victim
        finally:
            router.close()

    def test_kill_one_backend_mid_campaign_loses_nothing(self, tmp_path):
        """The acceptance gate: 3 backends, one dies, zero lost requests."""
        fleet = local_fleet(
            3,
            str(tmp_path / "cache"),
            fleet_config=FleetConfig(
                lru_capacity=0, retries=3, backoff_base_s=0.001,
                backoff_max_s=0.01, cache_dir=None,
            ),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        # Disable the router's disk tier so every request exercises
        # dispatch + failover (backends still share the store).
        fleet.store = None
        try:
            wave1 = [
                t.wait(timeout=60)
                for t in fleet.submit_many(distinct_requests(9))
            ]
            assert all(o.ok for o in wave1)
            assert fleet.stats()["reroutes"] == 0

            victim = "backend-1"
            fleet.backends[victim].kill()

            wave2_requests = distinct_requests(9, base=100)
            wave2 = [
                t.wait(timeout=60)
                for t in fleet.submit_many(wave2_requests)
            ]
            # Zero lost requests: every ticket resolves with a success.
            assert len(wave2) == 9
            assert all(o.ok for o in wave2), [
                o.error.message for o in wave2 if not o.ok
            ]
            assert all(o.served_by != victim for o in wave2)

            # Reroute accounting matches exactly: outcomes served off
            # their ring primary == requests the victim owned.
            displaced = sum(
                1
                for req in wave2_requests
                if fleet.ring.node_for(req.digest()) == victim
            )
            rerouted = sum(
                1
                for req, out in zip(wave2_requests, wave2)
                if out.served_by != fleet.ring.node_for(req.digest())
            )
            assert rerouted == displaced
            stats = fleet.stats()
            assert stats["reroutes"] == displaced
            assert stats["backends"][victim]["reroutes_from"] == displaced
            assert stats["backends"][victim]["alive"] is False
            assert stats["errors"] == 0
        finally:
            fleet.close()

    def test_artifacts_byte_identical_across_backends(self, tmp_path):
        """Digest-pinned byte identity: any backend, same bytes.

        Real pipeline (no fake compile_fn): the same requests compiled
        by a 3-backend fleet and a 1-backend fleet must produce
        artifacts with identical content fingerprints per digest.
        """
        requests = distinct_requests(4)

        def fingerprints(n_backends: int, cache_dir: str):
            fleet = local_fleet(
                n_backends,
                cache_dir,
                fleet_config=FleetConfig(lru_capacity=0),
            )
            try:
                outcomes = [
                    t.wait(timeout=300)
                    for t in fleet.submit_many(requests)
                ]
                assert all(o.ok for o in outcomes)
                return {
                    o.digest: artifact_fingerprint(o.artifact)
                    for o in outcomes
                }
            finally:
                fleet.close()

        many = fingerprints(3, str(tmp_path / "fleet-cache"))
        solo = fingerprints(1, str(tmp_path / "solo-cache"))
        assert many == solo


class TestShutdown:
    def test_close_resolves_stranded_jobs(self):
        gate = threading.Event()
        router = FleetRouter(
            [StubBackend("b0", gate=gate)],
            FleetConfig(lru_capacity=0, dispatchers=1),
        )
        # One job occupies the single dispatcher; more sit in the queue.
        tickets = [
            router.submit(r) for r in distinct_requests(4)
        ]
        closer = threading.Thread(target=router.close)
        closer.start()
        gate.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        outcomes = [t.wait(timeout=30) for t in tickets]
        # Every admitted job resolved: completed or typed rejection,
        # never a hung future.
        for outcome in outcomes:
            assert outcome.status in (STATUS_MISS, STATUS_ERROR)
            if outcome.status == STATUS_ERROR:
                assert outcome.error.error_type == "ServiceError"

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            FleetRouter([], FleetConfig())
        with pytest.raises(ServiceError):
            FleetRouter(
                [StubBackend("dup"), StubBackend("dup")], FleetConfig()
            )
        with pytest.raises(ServiceError):
            FleetRouter([StubBackend("b0")], FleetConfig(dispatchers=0))
        with pytest.raises(ServiceError):
            local_fleet(0, None)


class TestSubprocessFailover:
    def test_sigkill_backend_failover(self, tmp_path):
        """Deployment-shape failover: SIGKILL a real server process."""
        from repro.service.fleet import HttpBackend

        cache_dir = str(tmp_path / "cache")
        members = []
        try:
            for index in range(2):
                proc, url = spawn_server_process(
                    cache_dir,
                    str(tmp_path / f"backend-{index}.log"),
                    workers=1,
                )
                members.append(
                    HttpBackend(
                        f"backend-{index}", url, timeout=60, process=proc
                    )
                )
            router = FleetRouter(
                members,
                FleetConfig(
                    lru_capacity=0, retries=3, backoff_base_s=0.01,
                    backoff_max_s=0.1,
                ),
                owns_backends=True,
            )
            try:
                first = [
                    t.wait(timeout=300)
                    for t in router.submit_many(distinct_requests(4))
                ]
                assert all(o.ok for o in first)

                victim = members[0]
                victim.kill()  # SIGKILL: no graceful drain

                second = [
                    t.wait(timeout=300)
                    for t in router.submit_many(
                        distinct_requests(4, base=50)
                    )
                ]
                assert all(o.ok for o in second), [
                    o.error.message for o in second if not o.ok
                ]
                assert all(
                    o.served_by == members[1].name for o in second
                )
                assert router.stats()["backends"][victim.name][
                    "alive"
                ] is False
            finally:
                router.close()
                members = []
        finally:
            for member in members:
                member.close()
