"""Recipes in the artifact store + PIPELINE_VERSION cache invalidation."""

import json

import pytest

from repro import GpuSession, OptimizationFlags, TESLA_K20C
from repro.ir import serialize as ir_serialize
from repro.ir.serialize import PIPELINE_VERSION, compile_digest
from repro.service import CompileRequest, CompileService, ServiceConfig
from repro.service.store import ArtifactStore, build_artifact


@pytest.fixture(scope="module")
def compiled_sum_rows():
    from repro.apps.sums import SUM_ROWS

    session = GpuSession(flags=OptimizationFlags.default())
    return session.compile(SUM_ROWS.build(), R=64, C=32)


@pytest.fixture
def recipe(compiled_sum_rows):
    return compiled_sum_rows.recipe()


class TestRecipeStore:
    def test_put_get_round_trip(self, tmp_path, recipe):
        store = ArtifactStore(str(tmp_path / "cache"))
        path = store.put_recipe(recipe)
        assert path.exists()
        assert store.get_recipe(recipe.content_digest()) == recipe.to_json()

    def test_put_accepts_plain_dict(self, tmp_path, recipe):
        store = ArtifactStore(str(tmp_path / "cache"))
        store.put_recipe(recipe.to_json())
        assert store.get_recipe(recipe.content_digest()) is not None

    def test_recipes_live_outside_objects_tree(self, tmp_path, recipe):
        """Recipe JSON must never land where ``get`` expects artifacts."""
        store = ArtifactStore(str(tmp_path / "cache"))
        path = store.put_recipe(recipe)
        assert store.recipes in path.parents
        assert store.objects not in path.parents
        # The artifact getter never sees (or quarantines) recipe files.
        assert store.get(recipe.content_digest()) is None
        assert path.exists()

    def test_missing_recipe_is_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.get_recipe("00" * 32) is None

    def test_corrupt_recipe_quarantined(self, tmp_path, recipe):
        store = ArtifactStore(str(tmp_path / "cache"))
        path = store.put_recipe(recipe)
        path.write_text("{ not json")
        assert store.get_recipe(recipe.content_digest()) is None
        assert not path.exists()

    def test_content_mismatch_quarantined(self, tmp_path, recipe):
        """A recipe filed under the wrong digest must not be served."""
        store = ArtifactStore(str(tmp_path / "cache"))
        bogus = "11" * 32
        path = store._recipe_path(bogus)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(recipe.to_json()))
        assert store.get_recipe(bogus) is None
        assert not path.exists()

    def test_malformed_digest_is_miss(self, tmp_path):
        """Wire input is untrusted: a traversal 'digest' is a miss that
        never touches the filesystem (mirrors ``get``)."""
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.get_recipe("../../../etc/passwd") is None
        with pytest.raises(ValueError):
            store._recipe_path("../../../etc/passwd")

    def test_digests_and_stats(self, tmp_path, recipe):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.stats()["recipes"] == 0
        store.put_recipe(recipe)
        assert list(store.recipe_digests()) == [recipe.content_digest()]
        assert store.stats()["recipes"] == 1


class TestArtifactRecipeFields:
    def test_build_artifact_embeds_recipe(self, compiled_sum_rows):
        artifact = build_artifact("ab" * 32, compiled_sum_rows, compile_ms=5.0)
        recipe = compiled_sum_rows.recipe()
        assert artifact.recipe == recipe.to_json()
        assert artifact.recipe_digest == recipe.content_digest()

    def test_round_trips_through_dict(self, compiled_sum_rows):
        from repro.service.store import CompileArtifact

        artifact = build_artifact("cd" * 32, compiled_sum_rows, compile_ms=5.0)
        clone = CompileArtifact.from_dict(artifact.to_dict())
        assert clone.recipe == artifact.recipe
        assert clone.recipe_digest == artifact.recipe_digest


class TestServiceStoresRecipes:
    def test_compile_persists_recipe(self, tmp_path):
        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        try:
            outcome = service.compile(
                CompileRequest(app="sumRows", sizes={"R": 64, "C": 32})
            )
            artifact = service.store.get(outcome.digest)
            assert artifact is not None
            assert artifact.recipe_digest
            stored = service.store.get_recipe(artifact.recipe_digest)
            assert stored == artifact.recipe
            assert stored["kind"] == "recipe"
        finally:
            service.close()


class TestPipelineVersionInvalidation:
    def test_version_bumped_past_fused_pipeline(self):
        """The pass-based pipeline shipped as PIPELINE_VERSION 3."""
        assert PIPELINE_VERSION >= 3

    def test_bump_unreaches_old_artifacts(self, monkeypatch):
        """Digests under the pre-refactor version differ from today's, so
        artifacts cached before the pass refactor can never be served."""
        from repro.apps.sums import SUM_ROWS

        program = SUM_ROWS.build()
        now = compile_digest(
            program,
            device=TESLA_K20C,
            flags=OptimizationFlags.default(),
            strategy="multidim",
            sizes={"R": 64, "C": 32},
        )
        monkeypatch.setattr(
            ir_serialize, "PIPELINE_VERSION", PIPELINE_VERSION - 1
        )
        before = compile_digest(
            program,
            device=TESLA_K20C,
            flags=OptimizationFlags.default(),
            strategy="multidim",
            sizes={"R": 64, "C": 32},
        )
        assert before != now

    def test_old_digest_misses_in_store(self, tmp_path, monkeypatch):
        """End to end: an artifact stored under the pre-bump digest is a
        cache miss for the same request after the bump."""
        from repro.apps.sums import SUM_ROWS
        from repro.service.store import CompileArtifact

        store = ArtifactStore(str(tmp_path / "cache"))
        program = SUM_ROWS.build()
        monkeypatch.setattr(
            ir_serialize, "PIPELINE_VERSION", PIPELINE_VERSION - 1
        )
        old_digest = compile_digest(program, strategy="multidim")
        store.put(
            CompileArtifact(
                digest=old_digest,
                program="sumRows",
                strategy="multidim",
                device="Tesla K20c",
                cost={"total_us": 1.0, "kernels": []},
            )
        )
        monkeypatch.setattr(
            ir_serialize, "PIPELINE_VERSION", PIPELINE_VERSION
        )
        new_digest = compile_digest(program, strategy="multidim")
        assert store.get(new_digest) is None
        assert store.get(old_digest) is not None  # still on disk, unreached
