"""HTTP front end + client: round trips, status mapping, backpressure."""

import threading
import time

import pytest

from repro.errors import (
    MappingError,
    QueueFullError,
    RuntimeConfigError,
    ServiceError,
)
from repro.service import (
    STATUS_HIT,
    STATUS_MISS,
    CompileRequest,
    CompileService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.http import make_server, serve_forever
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral port, with a fast fake compiler."""
    service = CompileService(
        ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
        compile_fn=lambda req, digest: fake_artifact(digest),
    )
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=serve_forever, args=(server,))
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        service.close()


def request(**sizes) -> CompileRequest:
    return CompileRequest(app="sumRows", sizes=sizes or {"R": 64, "C": 32})


class TestEndpoints:
    def test_healthz(self, served):
        health = ServiceClient(served.url).health()
        assert health["ok"] is True
        assert health["pipeline_version"] >= 1

    def test_compile_miss_then_hit(self, served):
        client = ServiceClient(served.url)
        first = client.compile(request())
        second = client.compile(request())
        assert first.status == STATUS_MISS
        assert second.status == STATUS_HIT
        assert first.digest == second.digest
        assert second.artifact["program"] == "fake"

    def test_artifact_fetch(self, served):
        client = ServiceClient(served.url)
        outcome = client.compile(request())
        fetched = client.artifact(outcome.digest)
        assert fetched["digest"] == outcome.digest
        assert client.artifact("00" * 32) is None

    def test_stats_counters(self, served):
        client = ServiceClient(served.url)
        client.compile(request())
        client.compile(request())
        stats = client.stats()["service"]
        assert stats["requests"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1

    def test_clear_cache(self, served):
        client = ServiceClient(served.url)
        client.compile(request())
        assert client.clear_cache() == 1
        assert client.compile(request()).status == STATUS_MISS

    def test_unknown_path_404(self, served):
        client = ServiceClient(served.url)
        status, data = client._request("GET", "/v1/nonsense")
        assert status == 404
        assert data["error_type"] == "NotFound"

    def test_artifact_traversal_is_404_and_touches_nothing(
        self, served, tmp_path
    ):
        # urllib normalizes dot segments, so speak raw HTTP: the server
        # must treat a traversal digest as not-found without opening
        # (or quarantining) anything outside the store.
        import http.client

        victim = tmp_path / "victim.json"
        victim.write_text("{ not json")  # would be unlinked if opened
        for raw in (
            "/v1/artifacts/../../../victim",
            "/v1/artifacts/..%2f..%2fvictim",
            "/v1/artifacts/ZZ" + "f" * 62,
        ):
            conn = http.client.HTTPConnection(
                "127.0.0.1", served.port, timeout=10
            )
            try:
                conn.request("GET", raw)
                response = conn.getresponse()
                assert response.status == 404
                response.read()
            finally:
                conn.close()
        assert victim.exists()
        assert victim.read_text() == "{ not json"


class TestErrorMapping:
    def test_unknown_app_is_400(self, served):
        client = ServiceClient(served.url)
        with pytest.raises(RuntimeConfigError, match="unknown app"):
            client.compile({"app": "noSuchApp"})

    def test_malformed_body_is_400(self, served):
        client = ServiceClient(served.url)
        status, data = client._request(
            "POST", "/v1/compile", payload={"sizes": "not-an-object"}
        )
        assert status == 400
        assert data["exit_code"] == 2

    def test_pipeline_failure_is_422_with_report(self, tmp_path):
        def failing(req, digest):
            exc = MappingError("unknown strategy")
            raise exc

        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache")),
            compile_fn=failing,
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            outcome = ServiceClient(server.url).compile(request())
            assert not outcome.ok
            assert outcome.error.error_type == "MappingError"
            assert outcome.error.exit_code == 3
        finally:
            server.shutdown()
            thread.join(timeout=30)
            service.close()

    def test_queue_full_is_503(self, tmp_path):
        gate = threading.Event()

        def gated(req, digest):
            if not gate.wait(timeout=30):
                raise TimeoutError("gate never opened")
            return fake_artifact(digest)

        service = CompileService(
            ServiceConfig(
                workers=1, queue_limit=1, cache_dir=str(tmp_path / "cache")
            ),
            compile_fn=gated,
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            client = ServiceClient(server.url)
            blocker = threading.Thread(
                target=lambda: client.compile(request(R=64, C=32))
            )
            blocker.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                if service.stats()["queue_depth"] >= 1:
                    break
                time.sleep(0.02)
            with pytest.raises(QueueFullError):
                client.compile(request(R=128, C=32))
            gate.set()
            blocker.join(timeout=30)
        finally:
            gate.set()
            server.shutdown()
            thread.join(timeout=30)
            service.close()

    def test_server_down_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class ScriptedServer:
    """A raw socket server misbehaving on purpose.

    Behaviors: ``hang`` reads the request then never answers;
    ``close`` reads then drops the connection with no status line (the
    RemoteDisconnected shape a mid-shutdown server produces);
    ``truncate`` promises a Content-Length it never delivers.
    """

    def __init__(self, behavior: str):
        import socket

        self.behavior = behavior
        self.connections = 0
        self._stop = threading.Event()
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        try:
            conn.recv(65536)
            if self.behavior == "hang":
                self._stop.wait(30)
            elif self.behavior == "truncate":
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n\r\n"
                    b'{"partial":'
                )
            conn.close()
        except OSError:
            pass

    def close(self):
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=10)


@pytest.fixture(params=["hang", "close", "truncate"])
def misbehaving(request):
    server = ScriptedServer(request.param)
    try:
        yield server
    finally:
        server.close()


class TestClientTransportHardening:
    """Satellite: every socket-layer escape hatch maps onto ServiceError
    — bounded wait, typed error, never a raw traceback."""

    def test_hanging_server_bounded_wait(self):
        server = ScriptedServer("hang")
        try:
            client = ServiceClient(server.url, timeout=1)
            start = time.monotonic()
            with pytest.raises(ServiceError, match="timed out"):
                client.health()
            elapsed = time.monotonic() - start
            assert 0.5 < elapsed < 10, elapsed
        finally:
            server.close()

    def test_every_misbehavior_is_typed(self, misbehaving):
        # RemoteDisconnected / ConnectionResetError / IncompleteRead all
        # escape urllib unwrapped; the client must catch each one.
        client = ServiceClient(misbehaving.url, timeout=1)
        with pytest.raises(ServiceError):
            client.compile(request())

    def test_retry_follows_backoff_schedule(self):
        from repro.resilience.retry import backoff_delays

        server = ScriptedServer("close")
        try:
            slept = []
            client = ServiceClient(
                server.url,
                timeout=2,
                retries=3,
                backoff_base_s=0.05,
                backoff_max_s=1.0,
                backoff_seed=7,
                sleep=slept.append,
            )
            with pytest.raises(ServiceError):
                client.health()
            # One connection per attempt, the deterministic PR-3 jitter
            # schedule between them — and nothing slept after the last.
            assert server.connections == 4
            assert slept == list(
                backoff_delays(3, base_delay=0.05, max_delay=1.0, seed=7)
            )[:3]
        finally:
            server.close()

    def test_http_level_errors_are_never_transport_retried(self, served):
        slept = []
        client = ServiceClient(
            served.url, timeout=10, retries=3, sleep=slept.append
        )
        with pytest.raises(RuntimeConfigError):
            client.compile({"app": "noSuchApp"})
        assert slept == []

    def test_keep_alive_round_trip_reuses_connection(self, served):
        client = ServiceClient(served.url, keep_alive=True)
        first = client.compile(request())
        conn = client._local.conn
        assert conn is not None and conn.sock is not None
        second = client.compile(request())
        assert first.status == STATUS_MISS
        assert second.status == STATUS_HIT
        assert client._local.conn is conn, "connection was not reused"
        client.close()
        assert client._local.conn is None

    def test_keep_alive_every_misbehavior_is_typed(self, misbehaving):
        client = ServiceClient(misbehaving.url, timeout=1, keep_alive=True)
        with pytest.raises(ServiceError):
            client.compile(request())

    def test_keep_alive_down_server_is_typed(self):
        client = ServiceClient(
            "http://127.0.0.1:9", timeout=2, keep_alive=True
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_keep_alive_stale_connection_recovers_after_restart(
        self, tmp_path
    ):
        # The kept-alive socket points at a server that no longer
        # exists; the client must notice and redo the request on a
        # fresh connection (safe: requests are content-addressed).
        from repro.service.fleet import spawn_server_process

        cache = str(tmp_path / "cache")
        proc, url = spawn_server_process(
            cache, str(tmp_path / "log1.txt"), workers=1, port=0
        )
        client = ServiceClient(url, keep_alive=True, timeout=120)
        try:
            assert client.compile(request()).ok
        finally:
            proc.terminate()
            proc.wait(timeout=30)
        port = int(url.rsplit(":", 1)[1])
        proc2, url2 = spawn_server_process(
            cache, str(tmp_path / "log2.txt"), workers=1, port=port
        )
        try:
            outcome = client.compile(request())
            assert outcome.ok
            assert outcome.status == STATUS_HIT  # same shared store
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)

    def test_retry_after_timeout_has_no_duplicate_side_effects(
        self, tmp_path
    ):
        # Attempt 1 times out client-side while the server is still
        # compiling; the retry must be absorbed by the store /
        # single-flight — the pipeline runs exactly once.
        gate = threading.Event()
        calls = []

        def gated(req, digest):
            calls.append(digest)
            if not gate.wait(timeout=30):
                raise TimeoutError("gate never opened")
            return fake_artifact(digest)

        service = CompileService(
            ServiceConfig(
                workers=2, cache_dir=str(tmp_path / "cache")
            ),
            compile_fn=gated,
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:

            def open_gate_then_wait(delay):
                gate.set()
                deadline = time.time() + 10
                while time.time() < deadline:
                    # Wait for the artifact, not just the executions
                    # counter: the counter increments before store.put,
                    # and a retry landing in that window would coalesce
                    # (status "miss") instead of store-hitting.
                    if (
                        service.stats()["executions"] >= 1
                        and len(service.store) >= 1
                    ):
                        return
                    time.sleep(0.02)

            client = ServiceClient(
                server.url,
                timeout=1,
                retries=1,
                sleep=open_gate_then_wait,
            )
            outcome = client.compile(request())
            assert outcome.ok
            assert outcome.status == STATUS_HIT
            assert len(calls) == 1
            assert service.executions == 1
        finally:
            gate.set()
            server.shutdown()
            thread.join(timeout=30)
            service.close()


class TestRecipeEndpoint:
    """Recipes are served at the same /v1/artifacts/<digest> route."""

    @pytest.fixture
    def served_real(self, tmp_path):
        """A live server running the real compile pipeline (recipes are
        only emitted by real compiles, not the fake compiler)."""
        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            thread.join(timeout=30)
            service.close()

    def test_recipe_served_alongside_artifacts(self, served_real):
        client = ServiceClient(served_real.url)
        outcome = client.compile(request())
        artifact = client.artifact(outcome.digest)
        recipe_digest = artifact["recipe_digest"]
        assert recipe_digest and recipe_digest != outcome.digest
        recipe = client.artifact(recipe_digest)
        assert recipe["kind"] == "recipe"
        assert recipe["program"] == "sumRows"
        assert recipe["pipeline_version"] >= 3

    def test_artifact_embeds_recipe_digest_consistently(self, served_real):
        client = ServiceClient(served_real.url)
        outcome = client.compile(request())
        artifact = client.artifact(outcome.digest)
        recipe = client.artifact(artifact["recipe_digest"])
        assert recipe == artifact["recipe"]

    def test_unknown_digest_still_404(self, served_real):
        client = ServiceClient(served_real.url)
        assert client.artifact("ee" * 32) is None
