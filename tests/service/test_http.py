"""HTTP front end + client: round trips, status mapping, backpressure."""

import threading
import time

import pytest

from repro.errors import (
    MappingError,
    QueueFullError,
    RuntimeConfigError,
    ServiceError,
)
from repro.service import (
    STATUS_HIT,
    STATUS_MISS,
    CompileRequest,
    CompileService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.http import make_server, serve_forever
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral port, with a fast fake compiler."""
    service = CompileService(
        ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
        compile_fn=lambda req, digest: fake_artifact(digest),
    )
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=serve_forever, args=(server,))
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        service.close()


def request(**sizes) -> CompileRequest:
    return CompileRequest(app="sumRows", sizes=sizes or {"R": 64, "C": 32})


class TestEndpoints:
    def test_healthz(self, served):
        health = ServiceClient(served.url).health()
        assert health["ok"] is True
        assert health["pipeline_version"] >= 1

    def test_compile_miss_then_hit(self, served):
        client = ServiceClient(served.url)
        first = client.compile(request())
        second = client.compile(request())
        assert first.status == STATUS_MISS
        assert second.status == STATUS_HIT
        assert first.digest == second.digest
        assert second.artifact["program"] == "fake"

    def test_artifact_fetch(self, served):
        client = ServiceClient(served.url)
        outcome = client.compile(request())
        fetched = client.artifact(outcome.digest)
        assert fetched["digest"] == outcome.digest
        assert client.artifact("00" * 32) is None

    def test_stats_counters(self, served):
        client = ServiceClient(served.url)
        client.compile(request())
        client.compile(request())
        stats = client.stats()["service"]
        assert stats["requests"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1

    def test_clear_cache(self, served):
        client = ServiceClient(served.url)
        client.compile(request())
        assert client.clear_cache() == 1
        assert client.compile(request()).status == STATUS_MISS

    def test_unknown_path_404(self, served):
        client = ServiceClient(served.url)
        status, data = client._request("GET", "/v1/nonsense")
        assert status == 404
        assert data["error_type"] == "NotFound"

    def test_artifact_traversal_is_404_and_touches_nothing(
        self, served, tmp_path
    ):
        # urllib normalizes dot segments, so speak raw HTTP: the server
        # must treat a traversal digest as not-found without opening
        # (or quarantining) anything outside the store.
        import http.client

        victim = tmp_path / "victim.json"
        victim.write_text("{ not json")  # would be unlinked if opened
        for raw in (
            "/v1/artifacts/../../../victim",
            "/v1/artifacts/..%2f..%2fvictim",
            "/v1/artifacts/ZZ" + "f" * 62,
        ):
            conn = http.client.HTTPConnection(
                "127.0.0.1", served.port, timeout=10
            )
            try:
                conn.request("GET", raw)
                response = conn.getresponse()
                assert response.status == 404
                response.read()
            finally:
                conn.close()
        assert victim.exists()
        assert victim.read_text() == "{ not json"


class TestErrorMapping:
    def test_unknown_app_is_400(self, served):
        client = ServiceClient(served.url)
        with pytest.raises(RuntimeConfigError, match="unknown app"):
            client.compile({"app": "noSuchApp"})

    def test_malformed_body_is_400(self, served):
        client = ServiceClient(served.url)
        status, data = client._request(
            "POST", "/v1/compile", payload={"sizes": "not-an-object"}
        )
        assert status == 400
        assert data["exit_code"] == 2

    def test_pipeline_failure_is_422_with_report(self, tmp_path):
        def failing(req, digest):
            exc = MappingError("unknown strategy")
            raise exc

        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache")),
            compile_fn=failing,
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            outcome = ServiceClient(server.url).compile(request())
            assert not outcome.ok
            assert outcome.error.error_type == "MappingError"
            assert outcome.error.exit_code == 3
        finally:
            server.shutdown()
            thread.join(timeout=30)
            service.close()

    def test_queue_full_is_503(self, tmp_path):
        gate = threading.Event()

        def gated(req, digest):
            if not gate.wait(timeout=30):
                raise TimeoutError("gate never opened")
            return fake_artifact(digest)

        service = CompileService(
            ServiceConfig(
                workers=1, queue_limit=1, cache_dir=str(tmp_path / "cache")
            ),
            compile_fn=gated,
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            client = ServiceClient(server.url)
            blocker = threading.Thread(
                target=lambda: client.compile(request(R=64, C=32))
            )
            blocker.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                if service.stats()["queue_depth"] >= 1:
                    break
                time.sleep(0.02)
            with pytest.raises(QueueFullError):
                client.compile(request(R=128, C=32))
            gate.set()
            blocker.join(timeout=30)
        finally:
            gate.set()
            server.shutdown()
            thread.join(timeout=30)
            service.close()

    def test_server_down_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()
