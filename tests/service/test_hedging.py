"""Hedged requests: warm-digest gating, first-success-wins, and the
structural no-duplicate-pipeline-work guarantee.

Hedging only ever fires for digests that completed once before (any
backend serves them from the shared store), so a hedge can duplicate a
*wire request* but never a *pipeline run* — asserted here via the
per-backend ``executions`` counters.
"""

import threading
import time

import pytest

from repro.service import (
    CompileRequest,
    FleetConfig,
    FleetRouter,
    ServiceClient,
    local_fleet,
)
from repro.service.fleet import Backend, _FleetJob
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


def request(**sizes) -> CompileRequest:
    return CompileRequest(app="sumRows", sizes=sizes or {"R": 64, "C": 32})


class SlowBackend(Backend):
    """Wraps a fleet member with a fixed per-dispatch stall."""

    def __init__(self, inner, delay_s: float):
        self.inner = inner
        self.name = inner.name
        self.delay_s = delay_s
        self.calls = 0

    def compile(self, req):
        self.calls += 1
        time.sleep(self.delay_s)
        return self.inner.compile(req)

    def alive(self):
        return self.inner.alive()

    def mark_dead(self):
        self.inner.mark_dead()

    def mark_alive(self):
        self.inner.mark_alive()

    def probe(self):
        return self.inner.probe()

    def close(self):
        self.inner.close()


def warm_fleet(tmp_path, hedge_delay_s=0.02):
    """2 backends sharing one store; router caches off so repeat
    submissions dispatch (the shape hedging exists for)."""
    fleet = local_fleet(
        2,
        str(tmp_path / "cache"),
        fleet_config=FleetConfig(
            lru_capacity=0,
            hedge_delay_s=hedge_delay_s,
            probe_interval_s=0,
            backoff_base_s=0.001,
            backoff_max_s=0.01,
        ),
        compile_fn=lambda req, digest: fake_artifact(digest),
    )
    fleet.store = None  # force dispatch; backends still share the disk tier
    return fleet


def total_executions(fleet) -> int:
    count = 0
    for backend in fleet.backends.values():
        inner = getattr(backend, "inner", backend)
        count += inner.service.executions
    return count


class TestHedging:
    def test_warm_slow_primary_is_hedged_and_duplicates_nothing(
        self, tmp_path
    ):
        fleet = warm_fleet(tmp_path)
        try:
            req = request()
            digest = req.digest()
            primary = fleet.ring.node_for(digest)
            secondary = next(
                n for n in fleet.backends if n != primary
            )
            # Wave 1 (cold): compiles once, marks the digest warm.
            first = fleet.submit(req).wait(timeout=30)
            assert first.ok and first.served_by == primary
            assert total_executions(fleet) == 1

            # Slow the primary down well past the hedge delay.
            fleet.backends[primary] = SlowBackend(
                fleet.backends[primary], delay_s=0.5
            )
            t0 = time.perf_counter()
            second = fleet.submit(req).wait(timeout=30)
            elapsed = time.perf_counter() - t0
            assert second.ok
            # The hedge won: served by the fast secondary, well under
            # the primary's stall.
            assert second.served_by == secondary
            assert elapsed < 0.45
            stats = fleet.stats()
            assert stats["hedges"] == 1
            assert stats["hedge_wins"] == 1
            # The structural guarantee: the hedge duplicated zero
            # pipeline work — both backends served from the shared
            # store.
            assert total_executions(fleet) == 1
        finally:
            fleet.close()

    def test_cold_digests_never_hedge(self, tmp_path):
        fleet = warm_fleet(tmp_path)
        try:
            digest = request().digest()
            primary = fleet.ring.node_for(digest)
            fleet.backends[primary] = SlowBackend(
                fleet.backends[primary], delay_s=0.1
            )
            # First-ever submission: not warm, so the slow primary is
            # simply awaited — no hedge, no duplicate dispatch.
            outcome = fleet.submit(request()).wait(timeout=30)
            assert outcome.ok and outcome.served_by == primary
            stats = fleet.stats()
            assert stats["hedges"] == 0
            assert stats["hedge_wins"] == 0
        finally:
            fleet.close()

    def test_primary_win_still_resolves_once(self, tmp_path):
        """A hedge that loses the race must not clobber the outcome."""
        fleet = warm_fleet(tmp_path, hedge_delay_s=0.0)
        try:
            req = request()
            assert fleet.submit(req).wait(timeout=30).ok  # warm it
            # Fast primary, hedge delay 0: both dispatches race; the
            # job resolves exactly once either way.
            outcomes = [
                fleet.submit(req).wait(timeout=30) for _ in range(4)
            ]
            assert all(o.ok for o in outcomes)
            assert total_executions(fleet) == 1
        finally:
            fleet.close()

    def test_single_backend_fleet_never_hedges(self, tmp_path):
        fleet = local_fleet(
            1,
            str(tmp_path / "cache"),
            fleet_config=FleetConfig(
                lru_capacity=0, hedge_delay_s=0.0, probe_interval_s=0
            ),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        fleet.store = None
        try:
            req = request()
            assert fleet.submit(req).wait(timeout=30).ok
            assert fleet.submit(req).wait(timeout=30).ok
            assert fleet.stats()["hedges"] == 0
        finally:
            fleet.close()


class TestHedgeDelayPolicy:
    def test_p99_mode_needs_samples(self, tmp_path):
        fleet = local_fleet(
            2,
            str(tmp_path / "cache"),
            fleet_config=FleetConfig(
                lru_capacity=0,
                hedge_p99=True,
                hedge_min_samples=10,
                hedge_min_delay_s=0.005,
                probe_interval_s=0,
            ),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            req = request()
            digest = req.digest()
            order = fleet.ring.preference(digest)
            fleet._hedgeable.put(digest, True)
            job = _FleetJob(digest, req)
            # Too few latency observations: the estimate is untrusted.
            assert fleet._hedge_delay(job, order) is None
            with fleet._lock:
                fleet._latencies_ms.extend([10.0] * 9 + [100.0])
            delay = fleet._hedge_delay(job, order)
            # p99 of the sample (100ms) floored at hedge_min_delay_s.
            assert delay == pytest.approx(0.1)
        finally:
            fleet.close()

    def test_fixed_delay_wins_over_p99(self, tmp_path):
        fleet = local_fleet(
            2,
            str(tmp_path / "cache"),
            fleet_config=FleetConfig(
                lru_capacity=0,
                hedge_delay_s=0.3,
                hedge_p99=True,
                probe_interval_s=0,
            ),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            req = request()
            digest = req.digest()
            fleet._hedgeable.put(digest, True)
            job = _FleetJob(digest, req)
            assert fleet._hedge_delay(
                job, fleet.ring.preference(digest)
            ) == pytest.approx(0.3)
        finally:
            fleet.close()


class TestInterleavedHedgeClient:
    def test_half_closed_keepalive_recovers_under_interleaved_threads(
        self, tmp_path
    ):
        """Satellite: one keep-alive ServiceClient shared by two threads
        (the hedge shape: dispatcher + hedge thread hitting one
        backend).  The server restarts between waves, half-closing both
        per-thread persistent sockets; each thread must transparently
        retry on a fresh connection, concurrently, without cross-thread
        interference."""
        from repro.service import CompileService, ServiceConfig
        from repro.service.http import make_server, serve_forever

        def new_service():
            return CompileService(
                ServiceConfig(cache_dir=None, memo_persistence=False),
                compile_fn=lambda req, digest: fake_artifact(digest),
            )

        svc = new_service()
        server = make_server(svc, "127.0.0.1", 0)
        port = server.port
        thread = threading.Thread(
            target=serve_forever, args=(server,), daemon=True
        )
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", timeout=30, keep_alive=True
        )

        def wave(results, index_base):
            def one(i):
                results[index_base + i] = client.compile(
                    request(R=64 + 32 * i, C=32)
                )

            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)

        results = {}
        try:
            # Wave 1 establishes a persistent connection per thread.
            wave(results, 0)
            assert all(results[i].ok for i in range(2))

            # Restart on the same port: both cached sockets are now
            # half-closed — readable EOF, unusable for a new request.
            server.shutdown()
            thread.join(timeout=10)
            svc.close()
            svc = new_service()
            server = make_server(svc, "127.0.0.1", port)
            thread = threading.Thread(
                target=serve_forever, args=(server,), daemon=True
            )
            thread.start()

            # Wave 2, interleaved: each thread's first reuse attempt
            # hits its own stale socket and must recover independently.
            wave(results, 2)
            assert all(results[i].ok for i in range(2, 4))
        finally:
            server.shutdown()
            thread.join(timeout=10)
            svc.close()
            client.close()
