"""Persistent content-addressed artifact store."""

import json

import pytest

from repro.service.store import (
    ARTIFACT_VERSION,
    ArtifactStore,
    CompileArtifact,
    build_artifact,
    is_valid_digest,
)


def make_artifact(digest: str = "ab" * 32, **overrides) -> CompileArtifact:
    fields = dict(
        digest=digest,
        program="sumRows",
        strategy="multidim",
        device="Tesla K20c",
        sizes={"R": 64, "C": 32},
        flags={"prealloc": True, "layout_opt": True, "shared_memory": True},
        mappings=["L0[dimy, 32, span(1)]"],
        cuda_source="__global__ void k() {}",
        cost={"total_us": 12.5, "kernels": [{"total_us": 12.5}]},
        compile_ms=3.0,
    )
    fields.update(overrides)
    return CompileArtifact(**fields)


class TestArtifactRoundTrip:
    def test_to_from_dict(self):
        artifact = make_artifact()
        clone = CompileArtifact.from_dict(artifact.to_dict())
        assert clone == artifact

    def test_version_is_stamped(self):
        assert make_artifact().to_dict()["version"] == ARTIFACT_VERSION

    def test_unsupported_version_rejected(self):
        data = make_artifact().to_dict()
        data["version"] = 999
        with pytest.raises(ValueError):
            CompileArtifact.from_dict(data)


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        assert path.exists()
        assert store.get(artifact.digest) == artifact

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        digest = "cd" * 32
        path = store.put(make_artifact(digest))
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.json"

    def test_missing_digest_is_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.get("00" * 32) is None

    def test_corrupt_object_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        path.write_text("{ not json")
        assert store.get(artifact.digest) is None
        assert not path.exists(), "corrupt object should be removed"

    def test_version_skew_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert store.get(artifact.digest) is None
        assert not path.exists()

    def test_digest_mismatch_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        # An object whose content claims a different digest than its
        # filename is either tampering or a copy error; drop it.
        wrong = store._path("ef" * 32)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(path.read_text())
        assert store.get("ef" * 32) is None
        assert not wrong.exists()

    def test_delete_and_len(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        store.put(make_artifact("ab" * 32))
        store.put(make_artifact("cd" * 32))
        assert len(store) == 2
        assert store.delete("ab" * 32)
        assert not store.delete("ab" * 32)
        assert len(store) == 1

    def test_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        for i in range(4):
            store.put(make_artifact(f"{i:02d}" * 32))
        assert store.clear() == 4
        assert len(store) == 0
        assert store.clear() == 0

    def test_digests_skip_temp_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        (path.parent / ".tmp-leftover.json").write_text("partial")
        assert list(store.digests()) == [artifact.digest]

    def test_stats(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.stats()["artifacts"] == 0
        store.put(make_artifact())
        stats = store.stats()
        assert stats["artifacts"] == 1
        assert stats["bytes"] > 0


class TestDigestSafety:
    """Digests come off the wire; only well-formed ones may touch disk."""

    def test_digest_validation(self):
        assert is_valid_digest("ab" * 32)
        assert not is_valid_digest("AB" * 32)          # case matters
        assert not is_valid_digest("ab" * 31)          # too short
        assert not is_valid_digest("zz" * 32)          # not hex
        assert not is_valid_digest("../../etc/passwd")
        assert not is_valid_digest("")
        assert not is_valid_digest(None)

    def test_traversal_digest_is_miss_and_touches_nothing(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        # A *.json file outside the store that would be quarantined
        # (unlinked) if the traversal ever reached open().
        victim = tmp_path / "victim.json"
        victim.write_text("{ not json")
        assert store.get("../../victim") is None
        assert victim.exists()
        assert victim.read_text() == "{ not json"

    def test_delete_rejects_malformed_digest(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        victim = tmp_path / "victim.json"
        victim.write_text("data")
        assert not store.delete("../../victim")
        assert victim.exists()

    def test_put_rejects_malformed_digest(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        with pytest.raises(ValueError):
            store.put(make_artifact("../../escape"))
        assert not (tmp_path / "escape.json").exists()

    def test_quarantine_confined_to_objects_tree(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        outside = tmp_path / "outside.json"
        outside.write_text("data")
        store._quarantine(outside)
        assert outside.exists(), "quarantine must never leave the store"
        inside = store.put(make_artifact())
        store._quarantine(inside)
        assert not inside.exists()


class TestConcurrencyStress:
    """Satellite: hammer one store root from threads *and* a second
    process — no torn reads, no lost writes, quarantine stays inside
    ``objects/``."""

    @staticmethod
    def _digest(tag: str) -> str:
        import hashlib

        return hashlib.sha256(tag.encode()).hexdigest()

    def test_threads_and_second_process(self, tmp_path):
        import os
        import subprocess
        import sys
        import threading

        root = str(tmp_path / "cache")
        store = ArtifactStore(root)
        victim = tmp_path / "victim.json"
        victim.write_text("{ not json")  # must survive every quarantine

        digests = [self._digest(f"obj-{i}") for i in range(24)]
        corrupt_targets = digests[:6]
        stop = threading.Event()
        errors = []

        def writer(slice_start: int):
            try:
                while not stop.is_set():
                    for digest in digests[slice_start::3]:
                        store.put(make_artifact(digest))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("writer", exc))

        def reader():
            try:
                i = 0
                while not stop.is_set():
                    digest = digests[i % len(digests)]
                    i += 1
                    artifact = store.get(digest)
                    # The one forbidden outcome is a torn read: a parsed
                    # artifact that is not exactly what a put wrote.
                    if artifact is not None:
                        assert artifact.digest == digest
                        assert artifact == make_artifact(digest)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("reader", exc))

        def corruptor():
            try:
                while not stop.is_set():
                    for digest in corrupt_targets:
                        path = store._path(digest)
                        try:
                            path.write_text("{ torn write")
                        except OSError:
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("corruptor", exc))

        threads = (
            [threading.Thread(target=writer, args=(s,)) for s in range(3)]
            + [threading.Thread(target=reader) for _ in range(3)]
            + [threading.Thread(target=corruptor)]
        )
        for thread in threads:
            thread.start()

        # A genuinely separate process works the same root mid-storm.
        script = (
            "import hashlib, sys\n"
            "from repro.service.store import ArtifactStore\n"
            "from repro.service.store import CompileArtifact\n"
            "def art(d):\n"
            "    return CompileArtifact(\n"
            "        digest=d, program='sumRows', strategy='multidim',\n"
            "        device='Tesla K20c', sizes={'R': 64, 'C': 32},\n"
            "        flags={'prealloc': True, 'layout_opt': True,\n"
            "               'shared_memory': True},\n"
            "        mappings=['L0[dimy, 32, span(1)]'],\n"
            "        cuda_source='__global__ void k() {}',\n"
            "        cost={'total_us': 12.5,\n"
            "              'kernels': [{'total_us': 12.5}]},\n"
            "        compile_ms=3.0)\n"
            "store = ArtifactStore(sys.argv[1])\n"
            "mine = [hashlib.sha256(f'proc-{i}'.encode()).hexdigest()\n"
            "        for i in range(12)]\n"
            "for d in mine:\n"
            "    store.put(art(d))\n"
            "theirs = [hashlib.sha256(f'obj-{i}'.encode()).hexdigest()\n"
            "          for i in range(24)]\n"
            "for _ in range(20):\n"
            "    for d in mine + theirs:\n"
            "        a = store.get(d)\n"
            "        assert a is None or a.digest == d, d\n"
            "for d in mine:\n"
            "    assert store.get(d) is not None, d\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script, root],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert proc.returncode == 0, proc.stderr
        assert not errors, errors

        # No lost writes: every digest the corruptor never touched is
        # present and intact (puts are atomic, so a valid object can
        # never be quarantined by a racing reader).
        for digest in digests[6:]:
            assert store.get(digest) == make_artifact(digest), digest
        for i in range(12):
            digest = self._digest(f"proc-{i}")
            assert store.get(digest) == make_artifact(digest), digest

        # Corrupted objects converge after one clean re-put.
        for digest in corrupt_targets:
            store.put(make_artifact(digest))
            assert store.get(digest) == make_artifact(digest), digest

        # Quarantine never left the objects tree.
        assert victim.exists()
        assert victim.read_text() == "{ not json"
        strays = [
            p
            for p in tmp_path.rglob("*")
            if p.is_file()
            and p != victim
            and (tmp_path / "cache" / "objects") not in p.parents
        ]
        assert strays == [], strays


class TestBuildArtifact:
    def test_extracts_compiled_program(self):
        from repro.apps import resolve_app
        from repro.runtime import GpuSession

        app = resolve_app("sumRows")
        compiled = GpuSession().compile(app.build(), R=64, C=32)
        artifact = build_artifact("ab" * 32, compiled, compile_ms=5.0)
        assert artifact.program == "sumRows"
        assert artifact.mappings
        assert "__global__" in artifact.cuda_source
        assert artifact.cost["total_us"] > 0
        assert artifact.cost["kernels"]
        assert artifact.provenance is not None
        assert artifact.created_at > 0

    def test_provenance_optional(self):
        from repro.apps import resolve_app
        from repro.runtime import GpuSession

        app = resolve_app("sumRows")
        compiled = GpuSession().compile(app.build(), R=64, C=32)
        artifact = build_artifact(
            "ab" * 32, compiled, compile_ms=5.0, with_provenance=False
        )
        assert artifact.provenance is None
