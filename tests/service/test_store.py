"""Persistent content-addressed artifact store."""

import json

import pytest

from repro.service.store import (
    ARTIFACT_VERSION,
    ArtifactStore,
    CompileArtifact,
    build_artifact,
    is_valid_digest,
)


def make_artifact(digest: str = "ab" * 32, **overrides) -> CompileArtifact:
    fields = dict(
        digest=digest,
        program="sumRows",
        strategy="multidim",
        device="Tesla K20c",
        sizes={"R": 64, "C": 32},
        flags={"prealloc": True, "layout_opt": True, "shared_memory": True},
        mappings=["L0[dimy, 32, span(1)]"],
        cuda_source="__global__ void k() {}",
        cost={"total_us": 12.5, "kernels": [{"total_us": 12.5}]},
        compile_ms=3.0,
    )
    fields.update(overrides)
    return CompileArtifact(**fields)


class TestArtifactRoundTrip:
    def test_to_from_dict(self):
        artifact = make_artifact()
        clone = CompileArtifact.from_dict(artifact.to_dict())
        assert clone == artifact

    def test_version_is_stamped(self):
        assert make_artifact().to_dict()["version"] == ARTIFACT_VERSION

    def test_unsupported_version_rejected(self):
        data = make_artifact().to_dict()
        data["version"] = 999
        with pytest.raises(ValueError):
            CompileArtifact.from_dict(data)


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        assert path.exists()
        assert store.get(artifact.digest) == artifact

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        digest = "cd" * 32
        path = store.put(make_artifact(digest))
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.json"

    def test_missing_digest_is_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.get("00" * 32) is None

    def test_corrupt_object_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        path.write_text("{ not json")
        assert store.get(artifact.digest) is None
        assert not path.exists(), "corrupt object should be removed"

    def test_version_skew_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert store.get(artifact.digest) is None
        assert not path.exists()

    def test_digest_mismatch_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        # An object whose content claims a different digest than its
        # filename is either tampering or a copy error; drop it.
        wrong = store._path("ef" * 32)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(path.read_text())
        assert store.get("ef" * 32) is None
        assert not wrong.exists()

    def test_delete_and_len(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        store.put(make_artifact("ab" * 32))
        store.put(make_artifact("cd" * 32))
        assert len(store) == 2
        assert store.delete("ab" * 32)
        assert not store.delete("ab" * 32)
        assert len(store) == 1

    def test_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        for i in range(4):
            store.put(make_artifact(f"{i:02d}" * 32))
        assert store.clear() == 4
        assert len(store) == 0
        assert store.clear() == 0

    def test_digests_skip_temp_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        artifact = make_artifact()
        path = store.put(artifact)
        (path.parent / ".tmp-leftover.json").write_text("partial")
        assert list(store.digests()) == [artifact.digest]

    def test_stats(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.stats()["artifacts"] == 0
        store.put(make_artifact())
        stats = store.stats()
        assert stats["artifacts"] == 1
        assert stats["bytes"] > 0


class TestDigestSafety:
    """Digests come off the wire; only well-formed ones may touch disk."""

    def test_digest_validation(self):
        assert is_valid_digest("ab" * 32)
        assert not is_valid_digest("AB" * 32)          # case matters
        assert not is_valid_digest("ab" * 31)          # too short
        assert not is_valid_digest("zz" * 32)          # not hex
        assert not is_valid_digest("../../etc/passwd")
        assert not is_valid_digest("")
        assert not is_valid_digest(None)

    def test_traversal_digest_is_miss_and_touches_nothing(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        # A *.json file outside the store that would be quarantined
        # (unlinked) if the traversal ever reached open().
        victim = tmp_path / "victim.json"
        victim.write_text("{ not json")
        assert store.get("../../victim") is None
        assert victim.exists()
        assert victim.read_text() == "{ not json"

    def test_delete_rejects_malformed_digest(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        victim = tmp_path / "victim.json"
        victim.write_text("data")
        assert not store.delete("../../victim")
        assert victim.exists()

    def test_put_rejects_malformed_digest(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        with pytest.raises(ValueError):
            store.put(make_artifact("../../escape"))
        assert not (tmp_path / "escape.json").exists()

    def test_quarantine_confined_to_objects_tree(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        outside = tmp_path / "outside.json"
        outside.write_text("data")
        store._quarantine(outside)
        assert outside.exists(), "quarantine must never leave the store"
        inside = store.put(make_artifact())
        store._quarantine(inside)
        assert not inside.exists()


class TestBuildArtifact:
    def test_extracts_compiled_program(self):
        from repro.apps import resolve_app
        from repro.runtime import GpuSession

        app = resolve_app("sumRows")
        compiled = GpuSession().compile(app.build(), R=64, C=32)
        artifact = build_artifact("ab" * 32, compiled, compile_ms=5.0)
        assert artifact.program == "sumRows"
        assert artifact.mappings
        assert "__global__" in artifact.cuda_source
        assert artifact.cost["total_us"] > 0
        assert artifact.cost["kernels"]
        assert artifact.provenance is not None
        assert artifact.created_at > 0

    def test_provenance_optional(self):
        from repro.apps import resolve_app
        from repro.runtime import GpuSession

        app = resolve_app("sumRows")
        compiled = GpuSession().compile(app.build(), R=64, C=32)
        artifact = build_artifact(
            "ab" * 32, compiled, compile_ms=5.0, with_provenance=False
        )
        assert artifact.provenance is None
