"""Fleet observability: stitched traces, aggregated metrics, routes.

This file holds the PR's acceptance gate: a request through a
2-subprocess-backend fleet must yield ONE stitched Perfetto-loadable
trace with cross-process parent links, aggregated ``/v1/metrics``
snapshots from every member plus the router, and a p-bucket exemplar
that resolves back to the request's trace id.
"""

import json
import threading

import pytest

from repro.observability import capture
from repro.observability.stitch import cross_process_links
from repro.observability.tracer import is_valid_trace_id, validate_chrome_trace
from repro.service import (
    CompileRequest,
    CompileService,
    FleetConfig,
    ServiceClient,
    ServiceConfig,
    local_fleet,
    spawn_http_fleet,
)
from repro.service.dashboard import render_fleet_top, run_fleet_top
from repro.service.http import make_server, serve_forever
from repro.service.store import CompileArtifact


def request(**sizes) -> CompileRequest:
    return CompileRequest(app="sumRows", sizes=sizes or {"R": 64, "C": 32})


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


class TestSubprocessFleetTrace:
    def test_two_backend_request_stitches_one_trace(self, tmp_path):
        """Acceptance: spawn 2 real server processes, trace a request."""
        fleet = spawn_http_fleet(
            2, str(tmp_path / "cache"), str(tmp_path / "logs"),
            FleetConfig(lru_capacity=0),
        )
        try:
            with capture():
                outcome = fleet.submit(request()).wait(timeout=300)
                assert outcome.ok
                assert is_valid_trace_id(outcome.trace_id)

                document = fleet.trace_document(outcome.trace_id)
                assert document is not None
                assert validate_chrome_trace(document) == []
                # The router fragment and the serving backend's fragment
                # are linked by a flow pair across process boundaries.
                links = cross_process_links(document)
                assert links, "no cross-process parent links in trace"
                names = {
                    e["args"]["name"]
                    for e in document["traceEvents"]
                    if e.get("ph") == "M"
                }
                assert "router" in names
                assert any(n.startswith("backend-") for n in names)

                merged = fleet.aggregated_metrics()["fleet"]
                assert sorted(merged["sources"]) == [
                    "backend-0", "backend-1", "router",
                ]
                assert merged["missing"] == []
                # The p-bucket exemplar resolves to this request's trace.
                latency = merged["histograms"].get("fleet.request_ms")
                assert latency is not None
                exemplars = latency.get("exemplars", {})
                assert outcome.trace_id in exemplars.values()
        finally:
            fleet.close()


class TestLocalFleetObservability:
    def test_trace_ids_absent_when_tracing_disabled(self, tmp_path):
        # The <5% overhead claim rests on the disabled path generating
        # no ids at all.
        fleet = local_fleet(2, str(tmp_path / "cache"))
        try:
            outcome = fleet.submit(request()).wait(timeout=300)
            assert outcome.ok
            assert outcome.trace_id is None
        finally:
            fleet.close()

    def test_local_backends_not_reported_missing(self, tmp_path):
        # LocalBackends share the router's process registry: they are
        # neither scraped nor listed as unreachable.
        fleet = local_fleet(2, str(tmp_path / "cache"))
        try:
            with capture():
                fleet.submit(request()).wait(timeout=300)
                merged = fleet.aggregated_metrics()["fleet"]
                assert merged["missing"] == []
                assert merged["sources"] == ["router"]
        finally:
            fleet.close()

    def test_stats_carries_cause_split_and_health(self, tmp_path):
        fleet = local_fleet(2, str(tmp_path / "cache"))
        try:
            fleet.submit(request()).wait(timeout=300)
            stats = fleet.stats()
            assert "reroutes_saturation" in stats
            assert "reroutes_transport" in stats
            for entry in stats["backends"].values():
                assert "failures_saturation" in entry
                assert "failures_transport" in entry
                assert "last_health" in entry
        finally:
            fleet.close()


@pytest.fixture
def served(tmp_path):
    """A live single server with observability enabled end to end."""
    with capture():
        service = CompileService(
            ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            thread.join(timeout=30)
            service.close()


class TestObservabilityRoutes:
    def test_metrics_route_snapshots_registry(self, served):
        client = ServiceClient(served.url)
        outcome = client.compile(request())
        assert outcome.ok
        payload = client.metrics()
        assert payload["enabled"] is True
        histograms = payload["metrics"]["histograms"]
        assert "service.request_ms" in histograms

    def test_trace_route_round_trips(self, served):
        client = ServiceClient(served.url)
        outcome = client.compile(request())
        assert is_valid_trace_id(outcome.trace_id)
        document = client.trace(outcome.trace_id)
        assert document is not None
        assert validate_chrome_trace(document) == []
        raw = client.trace(outcome.trace_id, raw=True)
        assert raw["process"] == "service"
        assert raw["events"]

    def test_trace_route_rejects_bad_and_unknown_ids(self, served):
        client = ServiceClient(served.url)
        assert client.trace("not-a-trace-id") is None
        assert client.trace("0" * 32) is None

    def test_events_route_supports_since_cursor(self, served):
        client = ServiceClient(served.url)
        envelope = client.events()
        assert set(envelope) >= {"events", "next_seq", "dropped"}
        cursor = envelope["next_seq"]
        fresh = client.events(since=cursor - 1)
        assert fresh["events"] == []


STATS_FIXTURE = {
    "service": {
        "uptime_s": 12.5,
        "queue_depth": 1,
        "queue_limit": 64,
        "dispatchers": 2,
        "requests": 10,
        "lru_hits": 2,
        "store_hits": 3,
        "misses": 5,
        "coalesced": 1,
        "reroutes": 3,
        "reroutes_saturation": 2,
        "reroutes_transport": 1,
        "hedges": 1,
        "hedge_wins": 1,
        "deadline_shed": 0,
        "errors": 1,
        "probes": 4,
        "breaker_opened": 1,
        "readmissions": 1,
        "latency_ms": {
            "count": 10, "p50": 1.5, "p95": 9.0, "p99": 20.0, "max": 30.0,
        },
        "lru": {"size": 0, "capacity": 0},
        "backends": {
            "backend-0": {
                "alive": True,
                "breaker": {"state": "closed"},
                "served": 6,
                "failures": 0,
                "failures_saturation": 0,
                "failures_transport": 0,
                "reroutes_from": 0,
                "last_health": {
                    "queue_depth": 1, "queue_limit": 64,
                    "saturation": 0.02,
                },
            },
            "backend-1": {
                "alive": False,
                "breaker": {"state": "open"},
                "served": 4,
                "failures": 3,
                "failures_saturation": 2,
                "failures_transport": 1,
                "reroutes_from": 3,
                "last_health": None,
            },
        },
    },
}

METRICS_FIXTURE = {
    "enabled": True,
    "fleet": {
        "counters": {"fleet.requests": 10},
        "gauges": {},
        "histograms": {
            "fleet.request_ms": {
                "buckets": [1, 10, 100],
                "counts": [5, 3, 2, 0],
                "sum": 60.0,
                "count": 10,
                "exemplars": {"2": "ab" * 16},
            },
        },
        "sources": ["backend-0", "backend-1", "router"],
        "missing": ["backend-2"],
        "unmerged": [],
    },
}


class TestDashboardRender:
    def test_frame_carries_fleet_state(self):
        frame = render_fleet_top(
            STATS_FIXTURE, METRICS_FIXTURE, url="http://x:1"
        )
        assert "backend-0" in frame and "backend-1" in frame
        assert "open" in frame  # breaker state column
        assert "saturation 2" in frame and "transport 1" in frame
        assert "1/64" in frame  # backend-0 queue from last_health
        assert "ab" * 16 in frame  # slowest-bucket exemplar line
        assert "backend-2" in frame  # missing scrape target notice

    def test_frame_without_metrics_still_renders(self):
        frame = render_fleet_top(STATS_FIXTURE, None, url="http://x:1")
        assert "backend-0" in frame
        assert "reroutes" in frame

    def test_run_fleet_top_once_emits_one_frame(self, served):
        client = ServiceClient(served.url)
        client.compile(request())
        frames = []
        code = run_fleet_top(
            client, iterations=1, emit=frames.append, clear=False,
            sleep=lambda _s: None,
        )
        assert code == 0
        assert len(frames) == 1

    def test_run_fleet_top_reports_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        emitted = []
        code = run_fleet_top(
            client, iterations=1, emit=emitted.append, clear=False,
            sleep=lambda _s: None,
        )
        assert code == 75
