"""CompileService: single-flight dedup, backpressure, cache layers."""

import threading

import pytest

from repro.errors import (
    EXIT_UNAVAILABLE,
    MappingError,
    QueueFullError,
    RuntimeConfigError,
    ServiceError,
    exit_code_for,
)
from repro.service import (
    STATUS_COALESCED,
    STATUS_ERROR,
    STATUS_HIT,
    STATUS_MISS,
    CompileRequest,
    CompileService,
    ServiceConfig,
)
from repro.service.store import CompileArtifact


def fake_artifact(digest: str) -> CompileArtifact:
    return CompileArtifact(
        digest=digest,
        program="fake",
        strategy="multidim",
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


def request(app: str = "sumRows", **sizes) -> CompileRequest:
    return CompileRequest(app=app, sizes=sizes or {"R": 64, "C": 32})


class GatedCompiler:
    """A compile_fn the test opens deliberately; counts executions."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, req, digest):
        self.started.set()
        with self._lock:
            self.calls += 1
        if not self.gate.wait(timeout=30):
            raise TimeoutError("test gate never opened")
        return fake_artifact(digest)


class TestSingleFlight:
    def test_concurrent_identical_requests_run_once(self, tmp_path):
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(workers=4, cache_dir=str(tmp_path / "cache")),
            compile_fn=compiler,
        )
        try:
            tickets = [service.submit(request()) for _ in range(8)]
            roles = [t.role for t in tickets]
            assert roles.count(STATUS_MISS) == 1
            assert roles.count(STATUS_COALESCED) == 7
            assert not any(t.done() for t in tickets)
            compiler.gate.set()
            outcomes = [t.result(timeout=30) for t in tickets]
            assert compiler.calls == 1
            assert service.executions == 1
            digests = {o.digest for o in outcomes}
            assert len(digests) == 1
            assert all(o.ok for o in outcomes)
        finally:
            compiler.gate.set()
            service.close()

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(workers=4, cache_dir=str(tmp_path / "cache")),
            compile_fn=compiler,
        )
        try:
            t1 = service.submit(request(R=64, C=32))
            t2 = service.submit(request(R=128, C=32))
            assert {t1.role, t2.role} == {STATUS_MISS}
            assert t1.digest != t2.digest
            compiler.gate.set()
            t1.result(timeout=30)
            t2.result(timeout=30)
            assert compiler.calls == 2
        finally:
            compiler.gate.set()
            service.close()

    def test_second_submit_after_completion_hits_store(self, tmp_path):
        service = CompileService(
            ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            first = service.compile(request())
            second = service.compile(request())
            assert first.status == STATUS_MISS
            assert second.status == STATUS_HIT
            assert second.cached
            assert service.executions == 1
        finally:
            service.close()


class TestBackpressure:
    def test_queue_full_raises_typed_error(self, tmp_path):
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(
                workers=1,
                queue_limit=1,
                cache_dir=str(tmp_path / "cache"),
            ),
            compile_fn=compiler,
        )
        try:
            service.submit(request(R=64, C=32))
            # Identical requests coalesce, so overflow needs a distinct
            # one; rejection happens at admission, never as a hang.
            with pytest.raises(QueueFullError) as excinfo:
                service.submit(request(R=128, C=32))
            assert exit_code_for(excinfo.value) == EXIT_UNAVAILABLE
            assert service.stats()["queue_rejections"] == 1
        finally:
            compiler.gate.set()
            service.close()

    def test_rejection_does_not_leak_admission_slots(self, tmp_path):
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(
                workers=1,
                queue_limit=1,
                cache_dir=str(tmp_path / "cache"),
            ),
            compile_fn=compiler,
        )
        try:
            ticket = service.submit(request(R=64, C=32))
            with pytest.raises(QueueFullError):
                service.submit(request(R=128, C=32))
            compiler.gate.set()
            ticket.result(timeout=30)
            # The slot freed by completion admits the next request.
            outcome = service.compile(request(R=256, C=32))
            assert outcome.ok
            assert service.stats()["queue_depth"] == 0
        finally:
            compiler.gate.set()
            service.close()

    def test_coalescing_is_exempt_from_admission(self, tmp_path):
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(
                workers=1,
                queue_limit=1,
                cache_dir=str(tmp_path / "cache"),
            ),
            compile_fn=compiler,
        )
        try:
            miss = service.submit(request())
            joined = service.submit(request())  # full queue, same digest
            assert joined.role == STATUS_COALESCED
            compiler.gate.set()
            assert miss.result(timeout=30).ok
            assert joined.result(timeout=30).ok
        finally:
            compiler.gate.set()
            service.close()


class TestErrors:
    def test_unknown_app_raises_at_submit(self):
        service = CompileService(ServiceConfig(workers=1))
        try:
            with pytest.raises(RuntimeConfigError):
                service.submit(request(app="noSuchApp"))
        finally:
            service.close()

    def test_pipeline_error_becomes_typed_outcome(self, tmp_path):
        def failing(req, digest):
            raise MappingError("unknown strategy 'nope'")

        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache")),
            compile_fn=failing,
        )
        try:
            outcome = service.compile(request())
            assert outcome.status == STATUS_ERROR
            assert not outcome.ok
            assert outcome.error.error_type == "MappingError"
            assert outcome.error.exit_code == 3
            # Errors are never persisted: the next request retries.
            assert len(service.store) == 0
            assert service.stats()["errors"] == 1
        finally:
            service.close()

    def test_real_pipeline_failure_carries_replayable_report(self, tmp_path):
        service = CompileService(
            ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        try:
            outcome = service.compile(
                CompileRequest(
                    app="sumRows",
                    sizes={"R": 64, "C": 32},
                    strategy="nope",
                )
            )
            assert outcome.status == STATUS_ERROR
            assert outcome.error.failure_report is not None
            from repro.resilience import FailureReport

            report = FailureReport.from_dict(outcome.error.failure_report)
            assert report.stage
        finally:
            service.close()

    def test_submit_after_close_raises(self):
        service = CompileService(ServiceConfig(workers=1))
        service.close()
        with pytest.raises(ServiceError):
            service.submit(request())

    def test_close_completes_admitted_jobs(self, tmp_path):
        # Jobs admitted before close() are queued ahead of the stop
        # sentinels, so workers drain them; no waiter blocks forever.
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(
                workers=1, queue_limit=4, cache_dir=str(tmp_path / "cache")
            ),
            compile_fn=compiler,
        )
        t1 = service.submit(request(R=64, C=32))
        t2 = service.submit(request(R=128, C=32))
        closer = threading.Thread(target=lambda: service.close(save=False))
        closer.start()
        compiler.gate.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        assert t1.result(timeout=30).ok
        assert t2.result(timeout=30).ok

    def test_submit_racing_close_resolves_or_rejects(self, tmp_path):
        # Whatever side of close() a submit lands on, its ticket must
        # either resolve or the submit must raise a typed error — a
        # future that never completes is the one forbidden outcome.
        service = CompileService(
            ServiceConfig(workers=2, queue_limit=16),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        results = []

        def submitter(rows):
            try:
                ticket = service.submit(request(R=rows, C=32))
                results.append(ticket.result(timeout=30))
            except ServiceError as exc:  # includes QueueFullError
                results.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(64 * (i + 1),))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        service.close(save=False)
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert len(results) == 6

    def test_stranded_queue_jobs_rejected_not_abandoned(self):
        # If a job somehow remains queued after the workers exit (e.g.
        # a worker overran the join timeout), close() resolves it with
        # a typed error instead of leaving its future pending.
        from repro.service.service import _Job

        service = CompileService(ServiceConfig(workers=1))
        service.close(save=False)
        job = _Job("ab" * 32, request())
        service._queue.put(job)
        service._reject_queued_jobs()
        outcome = job.future.result(timeout=5)
        assert outcome.status == STATUS_ERROR
        assert outcome.error.error_type == "ServiceError"

    def test_bad_config_rejected(self):
        with pytest.raises(ServiceError):
            CompileService(ServiceConfig(workers=0))
        with pytest.raises(ServiceError):
            CompileService(ServiceConfig(queue_limit=0))


class TestPersistence:
    def test_cache_survives_service_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = CompileService(
            ServiceConfig(workers=1, cache_dir=cache_dir),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            assert first.compile(request()).status == STATUS_MISS
        finally:
            first.close()

        second = CompileService(
            ServiceConfig(workers=1, cache_dir=cache_dir),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            outcome = second.compile(request())
            assert outcome.status == STATUS_HIT
            assert second.executions == 0
        finally:
            second.close()

    def test_memo_restored_across_restart(self, tmp_path):
        from repro.analysis.cache import get_search_cache

        cache_dir = str(tmp_path / "cache")
        first = CompileService(ServiceConfig(workers=1, cache_dir=cache_dir))
        try:
            assert first.compile(request()).ok
        finally:
            first.close()  # persists the sweep memo

        get_search_cache().clear()
        second = CompileService(ServiceConfig(workers=1, cache_dir=cache_dir))
        try:
            assert second.memo_restored["search"] > 0
        finally:
            second.close()

    def test_no_cache_dir_disables_persistence(self):
        service = CompileService(
            ServiceConfig(workers=1, cache_dir=None),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            assert service.store is None
            first = service.compile(request())
            second = service.compile(request())
            # Without a store every sequential request is a miss; only
            # concurrent identical requests dedup (single-flight).
            assert first.status == STATUS_MISS
            assert second.status == STATUS_MISS
        finally:
            service.close()


class TestStats:
    def test_counters_and_latency(self, tmp_path):
        service = CompileService(
            ServiceConfig(workers=2, cache_dir=str(tmp_path / "cache")),
            compile_fn=lambda req, digest: fake_artifact(digest),
        )
        try:
            service.compile(request())
            service.compile(request())
            stats = service.stats()
            assert stats["requests"] == 2
            assert stats["cache_misses"] == 1
            assert stats["cache_hits"] == 1
            assert stats["executions"] == 1
            assert stats["queue_depth"] == 0
            latency = stats["latency_ms"]
            assert latency["count"] == 2
            assert latency["p95"] >= latency["p50"] >= 0
            assert stats["store"]["artifacts"] == 1
        finally:
            service.close()

    def test_late_hit_reclassified_as_hit(self, tmp_path):
        # An artifact persisted (e.g. by another process sharing the
        # cache dir) while the job sat in the queue is served as a hit
        # at execution time; the admission-time miss count is corrected
        # so hit/miss counters agree with the outcome statuses.
        compiler = GatedCompiler()
        service = CompileService(
            ServiceConfig(
                workers=1, queue_limit=4, cache_dir=str(tmp_path / "cache")
            ),
            compile_fn=compiler,
        )
        try:
            blocker = service.submit(request(R=64, C=32))
            assert compiler.started.wait(timeout=30)
            queued = service.submit(request(R=128, C=32))
            assert queued.role == STATUS_MISS
            # Simulate the concurrent writer before the worker gets there.
            service.store.put(fake_artifact(queued.digest))
            compiler.gate.set()
            assert blocker.result(timeout=30).ok
            outcome = queued.result(timeout=30)
            assert outcome.status == STATUS_HIT
            stats = service.stats()
            assert stats["late_hits"] == 1
            assert stats["cache_hits"] == 1
            assert stats["cache_misses"] == 1  # only the executed job
            assert stats["executions"] == 1
        finally:
            compiler.gate.set()
            service.close()

    def test_metrics_mirrored_when_enabled(self, tmp_path):
        from repro.observability import capture

        with capture() as obs:
            service = CompileService(
                ServiceConfig(workers=1, cache_dir=str(tmp_path / "cache")),
                compile_fn=lambda req, digest: fake_artifact(digest),
            )
            try:
                service.compile(request())
                service.compile(request())
            finally:
                service.close()
            snapshot = obs.metrics.to_dict()
        counters = snapshot.get("counters", snapshot)
        flat = str(counters)
        assert "service.requests" in flat
        assert "service.cache.hits" in flat
        assert "service.cache.misses" in flat


class TestDigestMemo:
    """The request-digest memo: pure speedup, never a different answer."""

    def test_memoized_digest_matches_fresh(self):
        from repro.service import clear_digest_memo

        clear_digest_memo()
        fresh = request().digest()
        memoized = request().digest()
        clear_digest_memo()
        recomputed = request().digest()
        assert fresh == memoized == recomputed

    def test_distinct_requests_distinct_digests(self):
        assert request(R=64, C=32).digest() != request(R=128, C=32).digest()

    def test_resolution_errors_are_not_cached(self):
        bad = CompileRequest(app="noSuchApp")
        with pytest.raises(RuntimeConfigError):
            bad.digest()
        with pytest.raises(RuntimeConfigError):
            bad.digest()

    def test_memo_is_bounded(self):
        from repro.service.api import _DIGEST_MEMO, _DIGEST_MEMO_CAPACITY

        for i in range(8):
            request(R=64 + i, C=32).digest()
        assert len(_DIGEST_MEMO) <= _DIGEST_MEMO_CAPACITY
