"""Tests for the reified transformation-pass subsystem: registry,
pipeline semantics, ordering dependencies, and the pass-ordering tuner."""

import pytest

from repro import GpuSession, OptimizationFlags, TESLA_K20C
from repro.analysis.analyzer import analyze_program
from repro.errors import RecipeError
from repro.optim.passes.base import (
    PlanState,
    Transformation,
    feasible_order,
    get_pass,
    register_pass,
    registered_passes,
    run_pipeline,
)
from repro.optim.passes.library import (
    ControlDopPass,
    LayoutPass,
    PreallocPass,
    SharedMemoryPass,
)
from repro.optim.passes.tune import (
    DEFAULT_PASS_ORDER,
    autotune_pass_order,
    enumerate_pass_orders,
)
from repro.optim.pipeline import (
    build_plan,
    build_plan_with_recipe,
    default_pipeline,
)
from repro.resilience.budget import Budget


@pytest.fixture
def qpscd_kernel():
    """(analysis, mapping) for the QPSCD kernel — every pass applies."""
    from repro.apps.qpscd import build_qpscd

    session = GpuSession()
    compiled = session.compile(build_qpscd(), S=1024, N=1024, C=256)
    decision = compiled.decisions[0]
    return decision.analysis, decision.mapping


@pytest.fixture
def sum_rows_kernel():
    from repro.apps.sums import SUM_ROWS

    session = GpuSession()
    compiled = session.compile(SUM_ROWS.build(), R=128, C=64)
    decision = compiled.decisions[0]
    return decision.analysis, decision.mapping


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = set(registered_passes())
        assert {"prealloc", "layout", "shared_memory",
                "control_dop"} <= names

    def test_get_pass_unknown_name(self):
        with pytest.raises(RecipeError, match="unknown pass"):
            get_pass("fuse_everything")

    def test_reregistering_same_class_is_noop(self):
        assert register_pass(PreallocPass) is PreallocPass

    def test_name_collision_rejected(self):
        class Imposter(Transformation):
            name = "prealloc"

        with pytest.raises(RecipeError, match="already registered"):
            register_pass(Imposter)

    def test_unnamed_pass_rejected(self):
        class Nameless(Transformation):
            pass

        with pytest.raises(RecipeError, match="no name"):
            register_pass(Nameless)


class TestPassJson:
    @pytest.mark.parametrize(
        "cls", [PreallocPass, LayoutPass, SharedMemoryPass]
    )
    def test_parameterless_round_trip(self, cls):
        rebuilt = Transformation.from_json(cls().to_json())
        assert type(rebuilt) is cls
        assert rebuilt.params == {}

    def test_control_dop_params_round_trip(self):
        original = ControlDopPass(min_dop=96, max_dop=4096)
        rebuilt = Transformation.from_json(original.to_json())
        assert type(rebuilt) is ControlDopPass
        assert rebuilt.params == {"min_dop": 96, "max_dop": 4096}

    def test_unknown_params_rejected(self):
        with pytest.raises(RecipeError, match="no parameters"):
            PreallocPass(chunk=4)

    def test_undecodable_params_rejected(self):
        with pytest.raises(RecipeError, match="undecodable"):
            Transformation.from_json(
                {"name": "control_dop", "params": {"bogus": 1}}
            )

    def test_non_dict_params_rejected(self):
        with pytest.raises(RecipeError, match="params must be an object"):
            Transformation.from_json({"name": "prealloc", "params": [1]})


class TestPlanState:
    def test_digest_deterministic(self, sum_rows_kernel):
        analysis, mapping = sum_rows_kernel
        a = PlanState.initial(analysis, mapping, TESLA_K20C)
        b = PlanState.initial(analysis, mapping, TESLA_K20C)
        assert a.digest() == b.digest()

    def test_digest_tracks_decisions(self, sum_rows_kernel):
        analysis, mapping = sum_rows_kernel
        state = PlanState.initial(analysis, mapping, TESLA_K20C)
        assert state.evolve(prealloc=True).digest() != state.digest()

    def test_to_plan_carries_decisions(self, sum_rows_kernel):
        analysis, mapping = sum_rows_kernel
        state = PlanState.initial(analysis, mapping, TESLA_K20C).evolve(
            prealloc=True, extra_shared_bytes=256
        )
        plan = state.to_plan()
        assert plan.prealloc and plan.extra_shared_bytes == 256


class TestRunPipeline:
    def test_disabled_pass_recorded(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        state = PlanState.initial(analysis, mapping, TESLA_K20C)
        _, steps = run_pipeline(
            [(PreallocPass(), True), (LayoutPass(), False)], state
        )
        assert steps[1].applied is False
        assert steps[1].skip_reason == "disabled"
        assert steps[1].pre_digest == steps[1].post_digest

    def test_requires_enforced(self, qpscd_kernel):
        """Layout without a preceding prealloc must skip, not crash."""
        analysis, mapping = qpscd_kernel
        state = PlanState.initial(analysis, mapping, TESLA_K20C)
        _, steps = run_pipeline([(LayoutPass(), True)], state)
        assert steps[0].applied is False
        assert steps[0].skip_reason == "requires:prealloc"

    def test_applied_pass_moves_digest(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        state = PlanState.initial(analysis, mapping, TESLA_K20C)
        out, steps = run_pipeline([(PreallocPass(), True)], state)
        assert steps[0].applied is True
        assert steps[0].pre_digest != steps[0].post_digest
        assert steps[0].post_digest == out.digest()


class TestBuildPlan:
    def test_recipe_matches_plan(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        plan, recipe = build_plan_with_recipe(
            analysis, mapping, TESLA_K20C, OptimizationFlags.default()
        )
        assert recipe.plan_digest
        assert [r.name for r in recipe.passes] == list(DEFAULT_PASS_ORDER)
        assert plan == build_plan(
            analysis, mapping, TESLA_K20C, OptimizationFlags.default()
        )

    def test_flags_disable_passes(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        plan, recipe = build_plan_with_recipe(
            analysis, mapping, TESLA_K20C, OptimizationFlags.none()
        )
        assert all(not r.applied for r in recipe.passes)
        assert all(r.skip_reason == "disabled" for r in recipe.passes)
        assert not plan.prealloc and not plan.layout_strides

    def test_default_pipeline_order_is_contract(self):
        names = tuple(
            t.name for t, _ in default_pipeline(OptimizationFlags.default())
        )
        assert names == DEFAULT_PASS_ORDER


class TestOptimizationFlags:
    def test_default_returns_fresh_instances(self):
        assert OptimizationFlags.default() == OptimizationFlags.default()
        assert OptimizationFlags.default() is not OptimizationFlags.default()

    def test_from_names_round_trips_disabled(self):
        flags = OptimizationFlags.from_names(["layout", "shared_memory"])
        assert flags.disabled_names() == ("layout", "shared_memory")
        assert flags.prealloc and not flags.layout_opt

    def test_from_names_rejects_unknown(self):
        from repro.errors import RuntimeConfigError

        with pytest.raises(RuntimeConfigError, match="unknown optimization"):
            OptimizationFlags.from_names(["vectorize"])

    def test_none_disables_everything(self):
        assert OptimizationFlags.none().disabled_names() == (
            "prealloc", "layout", "shared_memory"
        )


class TestFeasibleOrder:
    def test_satisfied_dependency(self):
        assert feasible_order([PreallocPass(), LayoutPass()])

    def test_violated_dependency(self):
        assert not feasible_order([LayoutPass(), PreallocPass()])
        assert not feasible_order([LayoutPass()])

    def test_empty_is_feasible(self):
        assert feasible_order([])


class TestEnumerateOrders:
    def test_dependency_prunes_space(self):
        orders = [
            tuple(p.name for p in order)
            for order in enumerate_pass_orders(["prealloc", "layout"])
        ]
        assert orders == [
            (), ("prealloc",), ("prealloc", "layout")
        ]

    def test_default_order_enumerated(self):
        orders = {
            tuple(p.name for p in order)
            for order in enumerate_pass_orders(
                ["prealloc", "layout", "shared_memory"]
            )
        }
        assert DEFAULT_PASS_ORDER in orders


class TestAutotunePassOrder:
    def test_default_is_baseline(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        result = autotune_pass_order(analysis, mapping, TESLA_K20C)
        assert result.default.delta_us == 0.0
        assert result.default.passes == DEFAULT_PASS_ORDER
        assert result.best.time_us <= result.default.time_us
        assert result.improvement_us >= 0.0

    def test_frontier_sorted_and_deduplicated(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        result = autotune_pass_order(analysis, mapping, TESLA_K20C)
        times = [entry.time_us for entry in result.frontier]
        assert times == sorted(times)
        digests = [entry.plan_digest for entry in result.frontier]
        assert len(digests) == len(set(digests))
        assert result.distinct <= result.feasible <= result.enumerated

    def test_budget_degrades_gracefully(self, qpscd_kernel):
        analysis, mapping = qpscd_kernel
        result = autotune_pass_order(
            analysis, mapping, TESLA_K20C, budget=Budget(max_nodes=1)
        )
        assert result.degraded
        assert "exhausted" in result.degraded_reason
        # The default ordering is still priced under an exhausted budget.
        assert result.default.time_us > 0


class TestControlDopPass:
    def test_window_requires_device_or_params(self):
        with pytest.raises(RecipeError, match="needs a device"):
            ControlDopPass().window(None)

    def test_window_from_device(self):
        assert ControlDopPass().window(TESLA_K20C) == (
            TESLA_K20C.dop_window()
        )

    def test_explicit_window_wins(self):
        window = ControlDopPass(min_dop=7, max_dop=11).window(TESLA_K20C)
        assert (window.min_dop, window.max_dop) == (7, 11)

    def test_not_in_default_pipeline(self):
        """ControlDOP stays a launch-time rewrite, not a plan pass."""
        names = {
            t.name for t, _ in default_pipeline(OptimizationFlags.default())
        }
        assert "control_dop" not in names
