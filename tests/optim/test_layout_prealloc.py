"""Tests for layout selection and preallocation planning (Section V-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll
from repro.optim.layout import LayoutDecision, choose_layout, row_major
from repro.optim.prealloc import plan_preallocations


def mapping_x_outer():
    return Mapping(
        (
            LevelMapping(Dim.X, 32, Span(1)),
            LevelMapping(Dim.Y, 8, SpanAll()),
        )
    )


def mapping_y_outer():
    return Mapping(
        (
            LevelMapping(Dim.Y, 8, Span(1)),
            LevelMapping(Dim.X, 32, SpanAll()),
        )
    )


class TestRowMajor:
    def test_strides(self):
        assert row_major((4, 5, 6)) == (30, 6, 1)

    def test_rank_one(self):
        assert row_major((7,)) == (1,)


class TestChooseLayout:
    def test_dim_x_axis_gets_unit_stride(self):
        """Figure 11: the axis whose index rides dim x is innermost."""
        # axes: (outer level 0, inner level 1)
        outer_on_x = choose_layout("t", (100, 200), [0, 1], mapping_x_outer())
        assert outer_on_x.strides[0] == 1  # Fig 11(b): offset=m, stride=N
        assert outer_on_x.strides[1] == 100

        inner_on_x = choose_layout("t", (100, 200), [0, 1], mapping_y_outer())
        assert inner_on_x.strides[1] == 1  # Fig 11(a): offset=m*N, stride=1
        assert inner_on_x.strides[0] == 200

    def test_unknown_axis_stays_outer(self):
        layout = choose_layout("t", (10, 20), [None, 1], mapping_y_outer())
        assert layout.strides[1] == 1
        assert layout.strides[0] == 20

    def test_total_elems(self):
        layout = choose_layout("t", (10, 20), [0, 1], mapping_x_outer())
        assert layout.total_elems == 200


@given(
    shape=st.lists(st.integers(min_value=1, max_value=16),
                   min_size=1, max_size=3),
)
@settings(max_examples=40)
def test_layout_is_a_bijection(shape):
    """Chosen strides address every element exactly once."""
    layout = choose_layout(
        "t", tuple(shape), list(range(len(shape))), mapping_y_outer()
        if len(shape) <= 2
        else Mapping(
            (
                LevelMapping(Dim.Z, 2, Span(1)),
                LevelMapping(Dim.Y, 8, Span(1)),
                LevelMapping(Dim.X, 32, SpanAll()),
            )
        ),
    )
    seen = set()
    import itertools

    for coords in itertools.product(*(range(s) for s in shape)):
        offset = sum(c * s for c, s in zip(coords, layout.strides))
        seen.add(offset)
    assert len(seen) == layout.total_elems
    assert max(seen) == layout.total_elems - 1


class TestPlanPrealloc:
    def test_sum_weighted_cols_decision(self, sum_weighted_cols_program):
        pa = analyze_program(sum_weighted_cols_program, R=64, C=128)
        ka = pa.kernel(0)
        decisions = plan_preallocations(ka, mapping_x_outer())
        assert len(decisions) == 1
        d = decisions[0]
        # buffer covers the whole outer domain: (C, R) elements
        assert d.layout.shape == (128, 64)
        assert d.total_bytes == 128 * 64 * 8

    def test_layout_opt_flag(self, sum_weighted_cols_program):
        pa = analyze_program(sum_weighted_cols_program, R=64, C=128)
        ka = pa.kernel(0)
        optimized = plan_preallocations(ka, mapping_x_outer(),
                                        optimize_layout=True)[0]
        fixed = plan_preallocations(ka, mapping_x_outer(),
                                    optimize_layout=False)[0]
        # fixed layout is canonical row-major
        assert fixed.layout.strides == row_major(fixed.layout.shape)
        # optimized differs when the outer level rides x
        assert optimized.layout.strides != fixed.layout.strides

    def test_no_intermediates_no_decisions(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=64, C=64)
        decisions = plan_preallocations(pa.kernel(0), mapping_y_outer())
        assert decisions == []


class TestSharedMemoryPlan:
    def test_outer_reads_selected(self):
        from repro.apps.qpscd import build_qpscd
        from repro.optim.shared_memory import plan_shared_memory

        prog = build_qpscd()
        pa = analyze_program(prog, S=1024, N=1024, C=256)
        decision = plan_shared_memory(pa.kernel(0), mapping_y_outer())
        # y (read at the outer level) is a staging candidate
        assert "y" in decision.array_keys

    def test_budget_respected(self):
        from repro.apps.qpscd import build_qpscd
        from repro.optim.shared_memory import plan_shared_memory

        prog = build_qpscd()
        pa = analyze_program(prog, S=1024, N=1024, C=256)
        decision = plan_shared_memory(
            pa.kernel(0), mapping_y_outer(), shared_budget_bytes=9 * 1024,
            reserve_bytes=8 * 1024,
        )
        assert decision.shared_bytes_per_block <= 1024

    def test_innermost_reads_not_staged(self, sum_rows_program):
        from repro.optim.shared_memory import plan_shared_memory

        pa = analyze_program(sum_rows_program, R=64, C=64)
        decision = plan_shared_memory(pa.kernel(0), mapping_y_outer())
        assert "m" not in decision.array_keys


class TestPipeline:
    def test_flags_plumbed(self, sum_weighted_cols_program):
        from repro.gpusim.device import TESLA_K20C
        from repro.optim import OptimizationFlags, build_plan

        pa = analyze_program(sum_weighted_cols_program, R=64, C=64)
        ka = pa.kernel(0)
        full = build_plan(ka, mapping_x_outer(), TESLA_K20C)
        assert full.prealloc and len(full.layout_strides) == 1

        none = build_plan(
            ka, mapping_x_outer(), TESLA_K20C,
            OptimizationFlags(False, False, False),
        )
        assert not none.prealloc
        assert none.layout_strides == ()
        assert none.smem_prefetch == frozenset()
