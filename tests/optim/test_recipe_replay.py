"""Recipe round-trip and byte-identical replay over the difftest corpus.

The property under test: for every difftest-generator spec (depth <= 4),
the recipe a compile emits (a) survives ``to_json``/``from_json`` with a
stable content digest and (b) replays pass-by-pass to the exact
LaunchPlans, CUDA bytes, and modeled cost of a fresh compile.  A planted
divergence (tampered digest, flipped applied bit) must be detected and
must name the offending pass."""

import json

import pytest

from repro import GpuSession, OptimizationFlags
from repro.difftest.generator import ProgramGenerator, build_program, canonical_specs
from repro.errors import RecipeError, RecipeReplayError
from repro.optim.passes.recipe import (
    KernelRecipe,
    Recipe,
    load_recipe,
    recipe_diff,
    replay_kernel_recipe,
    verify_recipe,
)


def compile_with_recipe(program, strategy="multidim", **sizes):
    session = GpuSession(
        strategy=strategy, flags=OptimizationFlags.default()
    )
    compiled = session.compile(program, **sizes)
    return compiled, compiled.recipe()


def assert_replays_byte_identically(program):
    compiled, recipe = compile_with_recipe(program)
    # (a) JSON round-trip with a stable content digest.
    rebuilt = Recipe.from_json(json.loads(json.dumps(recipe.to_json())))
    assert rebuilt.content_digest() == recipe.content_digest()
    assert recipe_diff(recipe, rebuilt) == []
    # (b) replay reproduces the compile byte-for-byte.
    summary = verify_recipe(program, rebuilt)
    assert summary["ok"]
    assert summary["replayed"] + summary["skipped_degraded"] == (
        summary["kernels"]
    )
    assert summary["cuda_bytes"] == len(compiled.cuda_source)
    # cost is a pure function of (mapping, plan): a byte-identical
    # replay implies an identical modeled cost on a fresh compile.
    fresh = GpuSession(
        strategy="multidim", flags=OptimizationFlags.default()
    ).compile(program)
    assert fresh.estimate_time_us() == compiled.estimate_time_us()
    return recipe


DIFFTEST_SPECS = [
    spec for spec in canonical_specs() if spec.depth <= 4
]


class TestCorpusReplay:
    @pytest.mark.parametrize(
        "spec", DIFFTEST_SPECS, ids=[s.describe() for s in DIFFTEST_SPECS]
    )
    def test_canonical_spec_replays(self, spec):
        assert_replays_byte_identically(build_program(spec))

    def test_random_specs_replay(self):
        """Seeded sampler slice of the spec space (depth <= 4 by
        construction) — the property holds off the canonical templates
        too."""
        generator = ProgramGenerator(seed=7)
        checked = 0
        while checked < 6:
            spec = generator.random_spec()
            if spec.depth > 4:
                continue
            assert_replays_byte_identically(build_program(spec))
            checked += 1


class TestPlantedDivergence:
    @pytest.fixture
    def recipe_and_program(self):
        program = build_program(canonical_specs()[0])
        _, recipe = compile_with_recipe(program)
        return program, recipe

    def _first_applied(self, recipe):
        for kernel in recipe.kernels:
            for record in kernel.passes:
                if record.applied:
                    return kernel, record
        pytest.skip("no applied pass to tamper with")

    def test_tampered_post_digest_detected(self, recipe_and_program):
        program, recipe = recipe_and_program
        kernel, record = self._first_applied(recipe)
        record.post_digest = "0" * 64
        with pytest.raises(RecipeReplayError, match=record.name):
            verify_recipe(program, recipe)

    def test_tampered_pre_digest_detected(self, recipe_and_program):
        program, recipe = recipe_and_program
        kernel, record = self._first_applied(recipe)
        record.pre_digest = "f" * 64
        with pytest.raises(RecipeReplayError, match="tampered"):
            verify_recipe(program, recipe)

    def test_flipped_applied_bit_detected(self, recipe_and_program):
        program, recipe = recipe_and_program
        kernel, record = self._first_applied(recipe)
        record.applied = False
        record.skip_reason = "not-applicable"
        with pytest.raises(RecipeReplayError, match=record.name):
            verify_recipe(program, recipe)

    def test_tampered_plan_digest_detected(self, recipe_and_program):
        program, recipe = recipe_and_program
        kernel, _ = self._first_applied(recipe)
        kernel.plan_digest = "a" * 64
        with pytest.raises(RecipeReplayError, match="plan digest"):
            verify_recipe(program, recipe)

    def test_tampering_changes_content_digest(self, recipe_and_program):
        _, recipe = recipe_and_program
        before = recipe.content_digest()
        _, record = self._first_applied(recipe)
        record.post_digest = "0" * 64
        assert recipe.content_digest() != before

    def test_degraded_kernel_refuses_replay(self, recipe_and_program):
        program, recipe = recipe_and_program
        from repro.analysis.analyzer import analyze_program

        analysis = analyze_program(program)
        kernel = recipe.kernels[0]
        degraded = KernelRecipe(
            index=0, mapping=kernel.mapping, degraded=True
        )
        with pytest.raises(RecipeReplayError, match="degraded"):
            replay_kernel_recipe(
                analysis.kernels[0], degraded, recipe.resolve_device()
            )


class TestRecipeSerialization:
    def test_write_and_load(self, tmp_path):
        program = build_program(canonical_specs()[0])
        _, recipe = compile_with_recipe(program)
        path = str(tmp_path / "nested" / "recipe.json")
        recipe.write(path)
        loaded = load_recipe(path)
        assert loaded.content_digest() == recipe.content_digest()

    def test_unsupported_version_rejected(self):
        program = build_program(canonical_specs()[0])
        _, recipe = compile_with_recipe(program)
        data = recipe.to_json()
        data["version"] = 999
        with pytest.raises(RecipeError, match="version"):
            Recipe.from_json(data)

    def test_unknown_device_rejected(self):
        recipe = Recipe(program="p", device="TPU v9", strategy="multidim")
        with pytest.raises(RecipeError, match="unknown device"):
            recipe.resolve_device()

    def test_diff_reports_flag_changes(self):
        program = build_program(canonical_specs()[0])
        _, a = compile_with_recipe(program)
        _, b = compile_with_recipe(program)
        b.flags = dict(b.flags, shared_memory=False)
        lines = recipe_diff(a, b)
        assert lines and any("flags" in line for line in lines)
