"""Shared fixtures: canonical programs used across the test suite."""

import numpy as np
import pytest

from repro.ir import Builder, F64
from repro.ir.builder import let_vec


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_sum_rows():
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def make_sum_cols():
    b = Builder("sumCols")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_cols(lambda col: col.reduce("+")))


def make_sum_weighted_cols():
    b = Builder("sumWeightedCols")
    m = b.matrix("m", F64, rows="R", cols="C")
    v = b.vector("v", F64, length="R")
    out = m.map_cols(
        lambda c: let_vec(
            c.zip_with(v, lambda a, w: a * w), lambda t: t.reduce("+")
        )
    )
    return b.build(out)


@pytest.fixture
def sum_rows_program():
    return make_sum_rows()


@pytest.fixture
def sum_cols_program():
    return make_sum_cols()


@pytest.fixture
def sum_weighted_cols_program():
    return make_sum_weighted_cols()
