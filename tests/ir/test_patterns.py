"""Tests for the six parallel-pattern nodes (Table I coverage)."""

import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ir.expr import ArrayRead, Cmp, Const, Param, Store, Var
from repro.ir.patterns import (
    ALL_PATTERN_CLASSES,
    Filter,
    Foreach,
    GroupBy,
    Map,
    Program,
    Reduce,
    ZipWith,
)
from repro.ir.types import F64, I64, ArrayType


def idx(name="i"):
    return Var(name, I64)


def vec(name="xs"):
    return Param(name, ArrayType(F64, 1))


def elem(v, i):
    return ArrayRead(v, (i,))


class TestTableICoverage:
    """Every pattern of Table I is constructible and typed correctly."""

    def test_map(self):
        i = idx()
        m = Map(Const(10), i, elem(vec(), i))
        assert m.ty == ArrayType(F64, 1)
        assert not m.needs_global_sync

    def test_zipwith(self):
        i = idx()
        z = ZipWith(Const(10), i, elem(vec("a"), i))
        assert isinstance(z, Map)  # analyses treat it as a Map
        assert z.ty == ArrayType(F64, 1)

    def test_foreach(self):
        i = idx()
        f = Foreach(Const(10), i, (Store(vec(), (i,), Const(0.0)),))
        assert not f.needs_global_sync
        with pytest.raises(TypeMismatchError):
            f.ty  # produces no value

    def test_filter(self):
        i = idx()
        f = Filter(Const(10), i, Cmp(">", elem(vec(), i), Const(0.0)),
                   elem(vec(), i))
        assert f.needs_global_sync and f.dynamic_output_size
        assert f.ty == ArrayType(F64, 1)

    def test_reduce(self):
        i = idx()
        r = Reduce(Const(10), i, elem(vec(), i), "+")
        assert r.needs_global_sync and not r.dynamic_output_size
        assert r.ty == F64

    def test_groupby(self):
        i = idx()
        g = GroupBy(Const(10), i, i, elem(vec(), i))
        assert g.needs_global_sync and g.dynamic_output_size

    def test_six_pattern_classes(self):
        assert len(ALL_PATTERN_CLASSES) == 6


class TestValidation:
    def test_index_must_be_integer(self):
        with pytest.raises(TypeMismatchError):
            Map(Const(10), Var("i", F64), Const(1.0))

    def test_reduce_unknown_op(self):
        i = idx()
        with pytest.raises(IRError):
            Reduce(Const(10), i, elem(vec(), i), "concat")

    def test_reduce_body_must_be_scalar(self):
        i = idx()
        inner = Map(Const(5), idx("j"), Const(1.0))
        with pytest.raises(TypeMismatchError):
            Reduce(Const(10), i, inner, "+")

    def test_custom_combine_requires_custom_op(self):
        i = idx()
        a, b = Var("a", F64), Var("b", F64)
        from repro.ir.expr import BinOp

        with pytest.raises(IRError):
            Reduce(Const(10), i, elem(vec(), i), "+", (a, b, BinOp("+", a, b)))

    def test_filter_predicate_must_be_bool(self):
        i = idx()
        with pytest.raises(TypeMismatchError):
            Filter(Const(10), i, Const(1), elem(vec(), i))

    def test_groupby_key_must_be_integer(self):
        i = idx()
        with pytest.raises(TypeMismatchError):
            GroupBy(Const(10), i, Const(1.0), elem(vec(), i))

    def test_foreach_requires_body(self):
        with pytest.raises(IRError):
            Foreach(Const(10), idx(), ())


class TestStaticSize:
    def test_constant(self):
        m = Map(Const(7), idx(), Const(1.0))
        assert m.static_size == 7

    def test_dynamic(self):
        m = Map(Param("n", I64), idx(), Const(1.0))
        assert m.static_size is None


class TestNestedTypes:
    def test_map_of_map_is_rank2(self):
        j = idx("j")
        inner = Map(Const(4), j, Const(1.0))
        outer = Map(Const(3), idx("i"), inner)
        assert outer.ty == ArrayType(F64, 2)

    def test_map_of_reduce_is_rank1(self):
        i, j = idx("i"), idx("j")
        m = Param("m", ArrayType(F64, 2))
        inner = Reduce(Const(4), j, ArrayRead(m, (i, j)), "+")
        outer = Map(Const(3), i, inner)
        assert outer.ty == ArrayType(F64, 1)


class TestProgram:
    def test_param_lookup(self, sum_rows_program):
        assert sum_rows_program.param("m").name == "m"
        with pytest.raises(IRError):
            sum_rows_program.param("zzz")

    def test_array_shapes_recorded(self, sum_rows_program):
        assert "m" in sum_rows_program.array_shapes
        assert len(sum_rows_program.array_shapes["m"]) == 2
