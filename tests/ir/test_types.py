"""Tests for the IR type system."""

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    ArrayType,
    ScalarType,
    StructType,
    common_scalar,
    element_type,
)


class TestScalarTypes:
    def test_sizes(self):
        assert F32.size_bytes == 4
        assert F64.size_bytes == 8
        assert I32.size_bytes == 4
        assert I64.size_bytes == 8
        assert BOOL.size_bytes == 1

    def test_numpy_dtypes(self):
        assert F64.np_dtype == np.dtype(np.float64)
        assert I32.np_dtype == np.dtype(np.int32)
        assert BOOL.np_dtype == np.dtype(np.bool_)

    def test_cuda_names(self):
        assert F32.cuda_name == "float"
        assert F64.cuda_name == "double"
        assert I64.cuda_name == "long long"

    def test_classification(self):
        assert F64.is_float and not F64.is_integer
        assert I32.is_integer and not I32.is_float
        assert not BOOL.is_float and not BOOL.is_integer

    def test_equality_is_structural(self):
        assert F64 == ScalarType("f64", 8)
        assert F64 != F32


class TestPromotion:
    def test_same_type(self):
        assert common_scalar(F64, F64) == F64

    def test_float_beats_int(self):
        assert common_scalar(F32, I32) == F32
        assert common_scalar(I64, F64) == F64

    def test_wider_beats_narrower(self):
        assert common_scalar(I32, I64) == I64
        assert common_scalar(F32, F64) == F64

    def test_i64_f32_promotes_to_f64(self):
        assert common_scalar(I64, F32) == F64
        assert common_scalar(F32, I64) == F64

    def test_bool_promotes(self):
        assert common_scalar(BOOL, I32) == I32

    def test_non_scalar_rejected(self):
        with pytest.raises(TypeMismatchError):
            common_scalar(ArrayType(F64), F64)


class TestArrayType:
    def test_rank_validation(self):
        with pytest.raises(TypeMismatchError):
            ArrayType(F64, 0)

    def test_element_type(self):
        assert element_type(ArrayType(F32, 2)) == F32

    def test_element_type_rejects_scalar(self):
        with pytest.raises(TypeMismatchError):
            element_type(F64)

    def test_structural_equality(self):
        assert ArrayType(F64, 2) == ArrayType(F64, 2)
        assert ArrayType(F64, 1) != ArrayType(F64, 2)


class TestStructType:
    def test_of_preserves_order(self):
        s = StructType.of("S", {"a": F64, "b": ArrayType(I64)})
        assert s.field_names() == ("a", "b")

    def test_field_type(self):
        s = StructType.of("S", {"a": F64})
        assert s.field_type("a") == F64

    def test_missing_field(self):
        s = StructType.of("S", {"a": F64})
        with pytest.raises(TypeMismatchError):
            s.field_type("nope")

    def test_csr_graph_shape(self):
        csr = StructType.of(
            "Csr",
            {"offsets": ArrayType(I64), "nbrs": ArrayType(I64)},
        )
        assert isinstance(csr.field_type("nbrs"), ArrayType)
