"""Tests for expression and statement node construction and typing."""

import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ir.expr import (
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    FieldRead,
    If,
    Length,
    Param,
    RandomIndex,
    Select,
    Store,
    UnOp,
    Var,
)
from repro.ir.types import BOOL, F32, F64, I64, ArrayType, StructType


def arr(name="a", elem=F64, rank=1):
    return Param(name, ArrayType(elem, rank))


class TestLeaves:
    def test_const_infers_types(self):
        assert Const(1).ty == I64
        assert Const(1.5).ty == F64
        assert Const(True).ty == BOOL

    def test_const_rejects_junk(self):
        with pytest.raises(TypeMismatchError):
            Const("hello")

    def test_var_and_param(self):
        v = Var("x", F64)
        assert v.ty == F64 and v.children() == ()
        p = Param("n", I64)
        assert p.ty == I64

    def test_identity_equality(self):
        a, b = Const(1), Const(1)
        assert a != b and a == a
        assert len({a, b}) == 2

    def test_random_index(self):
        r = RandomIndex(Const(10))
        assert r.ty == I64
        assert r.children() == (Const(10),) or len(r.children()) == 1


class TestBinOp:
    def test_promotion(self):
        e = BinOp("+", Const(1), Const(2.0))
        assert e.ty == F64

    def test_true_division_yields_float(self):
        e = BinOp("/", Const(1), Const(2))
        assert e.ty == F64

    def test_floor_division_stays_int(self):
        e = BinOp("//", Const(1), Const(2))
        assert e.ty == I64

    def test_unknown_op(self):
        with pytest.raises(IRError):
            BinOp("**", Const(1), Const(2))

    def test_children_order(self):
        lhs, rhs = Const(1), Const(2)
        assert BinOp("+", lhs, rhs).children() == (lhs, rhs)


class TestUnOpCmp:
    def test_negate(self):
        assert UnOp("-", Const(1.0)).ty == F64

    def test_not_requires_bool(self):
        with pytest.raises(TypeMismatchError):
            UnOp("not", Const(1))

    def test_cmp_yields_bool(self):
        assert Cmp("<", Const(1), Const(2)).ty == BOOL

    def test_cmp_unknown_op(self):
        with pytest.raises(IRError):
            Cmp("<>", Const(1), Const(2))


class TestSelect:
    def test_type_promotion(self):
        e = Select(Const(True), Const(1), Const(2.0))
        assert e.ty == F64

    def test_requires_bool_condition(self):
        with pytest.raises(TypeMismatchError):
            Select(Const(1), Const(1), Const(2))

    def test_prob_range(self):
        with pytest.raises(IRError):
            Select(Const(True), Const(1), Const(2), prob=1.5)

    def test_mismatched_branches(self):
        with pytest.raises(TypeMismatchError):
            Select(Const(True), Const(1), arr())


class TestCall:
    def test_sqrt_promotes_int(self):
        assert Call("sqrt", [Const(4)]).ty == F64

    def test_pow_arity(self):
        assert Call("pow", [Const(2.0), Const(3.0)]).ty == F64
        with pytest.raises(IRError):
            Call("pow", [Const(2.0)])

    def test_unknown_intrinsic(self):
        with pytest.raises(IRError):
            Call("frobnicate", [Const(1)])


class TestArrayAccess:
    def test_read_type(self):
        e = ArrayRead(arr(rank=2), (Const(0), Const(1)))
        assert e.ty == F64

    def test_rank_mismatch(self):
        with pytest.raises(TypeMismatchError):
            ArrayRead(arr(rank=2), (Const(0),))

    def test_non_array(self):
        with pytest.raises(TypeMismatchError):
            ArrayRead(Param("x", F64), (Const(0),))

    def test_store_rank_check(self):
        with pytest.raises(TypeMismatchError):
            Store(arr(rank=1), (Const(0), Const(1)), Const(0.0))

    def test_length_axis_bounds(self):
        assert Length(arr(rank=2), 1).ty == I64
        with pytest.raises(IRError):
            Length(arr(rank=2), 2)


class TestStructAccess:
    def test_field_read(self):
        sty = StructType.of("S", {"xs": ArrayType(F64)})
        e = FieldRead(Param("s", sty), "xs")
        assert e.ty == ArrayType(F64)

    def test_field_read_non_struct(self):
        with pytest.raises(TypeMismatchError):
            FieldRead(Param("x", F64), "a")


class TestAllocBlock:
    def test_alloc_type(self):
        a = Alloc(F32, (Const(8), Const(4)))
        assert a.ty == ArrayType(F32, 2)

    def test_alloc_needs_shape(self):
        with pytest.raises(IRError):
            Alloc(F32, ())

    def test_block_type_is_result_type(self):
        v = Var("t", F64)
        b = Block((Bind(v, Const(1.0)),), v)
        assert b.ty == F64

    def test_if_prob_validation(self):
        with pytest.raises(IRError):
            If(Cmp("<", Const(1), Const(2)), (), (), prob=-0.1)

    def test_if_requires_bool(self):
        with pytest.raises(TypeMismatchError):
            If(Const(1), ())

    def test_cast(self):
        assert Cast(Const(1), F32).ty == F32
        with pytest.raises(TypeMismatchError):
            Cast(arr(), F32)
