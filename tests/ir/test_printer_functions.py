"""Tests for the pretty printer, symbols, and device-function registry."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import Builder, F64, pretty, pretty_program
from repro.ir.functions import (
    DeviceFunction,
    FnCall,
    get_function,
    has_function,
    register_function,
)
from repro.ir.expr import Const
from repro.ir.symbols import SymbolTable, fresh_name


class TestPrinter:
    def test_program_header(self, sum_rows_program):
        text = pretty_program(sum_rows_program)
        assert text.startswith("program sumRows(")
        assert "m: f64[:,:]" in text

    def test_nest_structure(self, sum_rows_program):
        text = pretty(sum_rows_program.result)
        assert "map(" in text
        assert "reduce(" in text
        assert text.index("map(") < text.index("reduce(")

    def test_inline_expressions(self, sum_weighted_cols_program):
        text = pretty(sum_weighted_cols_program.result)
        assert "zipWith(" in text
        assert "*" in text

    def test_filter_shape(self):
        b = Builder("f")
        xs = b.vector("xs", F64, length="N")
        text = pretty(xs.filter(lambda e: e > 0).expr)
        assert "filter(" in text and "pred:" in text and "value:" in text


class TestSymbols:
    def test_fresh_names_unique(self):
        table = SymbolTable()
        names = {table.fresh("i") for _ in range(100)}
        assert len(names) == 100

    def test_prefix_isolation(self):
        table = SymbolTable()
        assert table.fresh("a") == "a0"
        assert table.fresh("b") == "b0"
        assert table.fresh("a") == "a1"

    def test_reset(self):
        table = SymbolTable()
        table.fresh("x")
        table.reset()
        assert table.fresh("x") == "x0"

    def test_module_level_helper(self):
        assert fresh_name("zz") != fresh_name("zz")


class TestDeviceFunctions:
    def test_register_and_call(self):
        fn = DeviceFunction(
            name="triple_test_fn",
            arity=1,
            result_ty=F64,
            impl=lambda x: 3.0 * np.asarray(x),
            flops=1.0,
        )
        register_function(fn)
        assert has_function("triple_test_fn")
        call = FnCall("triple_test_fn", [Const(2.0)])
        assert call.ty == F64
        assert call.fn.flops == 1.0

    def test_arity_check(self):
        register_function(
            DeviceFunction("pair_test_fn", 2, F64, lambda a, b: a, 2.0)
        )
        with pytest.raises(IRError):
            FnCall("pair_test_fn", [Const(1.0)])

    def test_unknown_function(self):
        with pytest.raises(IRError):
            get_function("no_such_fn_xyz")

    def test_mandel_registered(self):
        # Importing the app registers the escape-time function.
        from repro.apps import mandelbrot  # noqa: F401

        assert has_function("mandel")
        fn = get_function("mandel")
        assert fn.cuda_source.startswith("__device__")
