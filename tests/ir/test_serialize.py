"""Program serialization: every app round-trips structurally and
semantically through the JSON format the reproducer artifacts use."""

import copy

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.errors import IRError
from repro.interp.evaluator import Evaluator
from repro.ir import Builder, F64
from repro.ir.serialize import (
    dumps,
    loads,
    program_from_dict,
    program_to_dict,
)
from repro.ir.traversal import structurally_equal


def _small_params(app):
    return {name: max(2, min(value, 8))
            for name, value in app.default_params.items()}


def _same(a, b):
    if isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            _same(a[key], b[key])
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _same(x, y)
        return
    if a is None:
        assert b is None
        return
    a_arr, b_arr = np.asarray(a), np.asarray(b)
    if a_arr.dtype == object or b_arr.dtype == object:
        for x, y in zip(a, b):
            _same(x, y)
        return
    assert np.array_equal(a_arr, b_arr)


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_apps_round_trip(name):
    app = ALL_APPS[name]
    params = _small_params(app)
    program = app.build(**params)
    rebuilt = loads(dumps(program))

    assert rebuilt.name == program.name
    assert [p.name for p in rebuilt.params] == [p.name for p in program.params]
    assert rebuilt.size_hints == program.size_hints
    assert structurally_equal(program.result, rebuilt.result)

    inputs = app.workload(app.make_rng(3), **params)
    original = Evaluator(program, seed=3).run(**copy.deepcopy(inputs))
    replayed = Evaluator(rebuilt, seed=3).run(**copy.deepcopy(inputs))
    _same(original, replayed)


def test_version_mismatch_rejected():
    b = Builder("tiny")
    v = b.vector("v", F64, "N")
    data = program_to_dict(b.build(v.map(lambda e: e * 2.0)))
    data["version"] = 999
    with pytest.raises(IRError):
        program_from_dict(data)


def test_unknown_node_tag_rejected():
    with pytest.raises(IRError):
        from repro.ir.serialize import node_from_dict

        node_from_dict({"n": "mystery"})


class TestCompileDigest:
    """The content address every service cache layer keys on."""

    @staticmethod
    def _digest(program, **kwargs):
        from repro.gpusim.device import DEVICES
        from repro.ir.serialize import compile_digest

        defaults = dict(
            device=DEVICES["Tesla K20c"],
            strategy="multidim",
            sizes={"R": 64, "C": 32},
        )
        defaults.update(kwargs)
        return compile_digest(program, **defaults)

    def test_semantically_equal_builds_hash_equal(self):
        # Two builds of the same app gensym different binder names
        # ("i0" vs "i7"); the digest must not see them.
        app = ALL_APPS["sumRows"]
        assert self._digest(app.build()) == self._digest(app.build())

    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_every_app_digests_stably(self, name):
        app = ALL_APPS[name]
        assert self._digest(app.build()) == self._digest(app.build())

    def test_distinct_apps_hash_apart(self):
        digests = {
            self._digest(ALL_APPS[name].build()) for name in sorted(ALL_APPS)
        }
        assert len(digests) == len(ALL_APPS)

    def test_size_order_is_canonical(self):
        program = ALL_APPS["sumRows"].build()
        assert self._digest(program, sizes={"R": 64, "C": 32}) == \
            self._digest(program, sizes={"C": 32, "R": 64})

    def test_inputs_that_matter_change_the_digest(self):
        from repro.gpusim.device import DEVICES
        from repro.optim.pipeline import OptimizationFlags

        program = ALL_APPS["sumRows"].build()
        base = self._digest(program)
        assert base != self._digest(program, sizes={"R": 128, "C": 32})
        assert base != self._digest(program, strategy="1d")
        assert base != self._digest(program, device=DEVICES["Tesla C2050"])
        assert base != self._digest(
            program, flags=OptimizationFlags(shared_memory=False)
        )

    def test_schema_bump_changes_every_digest(self, monkeypatch):
        import repro.ir.serialize as serialize

        program = ALL_APPS["sumRows"].build()
        base = self._digest(program)
        monkeypatch.setattr(serialize, "PIPELINE_VERSION", 999)
        assert self._digest(program) != base

    def test_format_bump_changes_every_digest(self, monkeypatch):
        import repro.ir.serialize as serialize

        program = ALL_APPS["sumRows"].build()
        base = self._digest(program)
        monkeypatch.setattr(serialize, "FORMAT_VERSION", 999)
        assert self._digest(program) != base

    def test_canonical_rename_preserves_free_names(self):
        # Parameters and symbolic sizes are free names the size_hints /
        # array_shapes keys refer to; alpha-renaming must not touch them.
        from repro.ir.serialize import canonical_program_dict

        data = canonical_program_dict(ALL_APPS["sumRows"].build())
        assert [p["name"] for p in data["params"]] == ["R", "C", "m"]
        shape_names = [s["name"] for s in data["array_shapes"]["m"]]
        assert shape_names == ["R", "C"]

    def test_canonical_rename_round_trips(self):
        # The canonical form is still a loadable program with identical
        # semantics (binder names are meaningless by construction).
        program = ALL_APPS["sumRows"].build()
        from repro.ir.serialize import canonical_program_dict

        rebuilt = program_from_dict(canonical_program_dict(program))
        inputs = ALL_APPS["sumRows"].workload(
            ALL_APPS["sumRows"].make_rng(3), R=8, C=4
        )
        original = Evaluator(program, seed=3).run(
            **copy.deepcopy(inputs)
        )
        replayed = Evaluator(rebuilt, seed=3).run(**copy.deepcopy(inputs))
        _same(original, replayed)


class TestWireIRDigestSoundness:
    """Hand-crafted (wire) IR is under no unique-binder contract; the
    digest must never canonicalize two different programs together."""

    @staticmethod
    def _program(index_name, body_name):
        from repro.ir.expr import Const, Param, Var
        from repro.ir.patterns import Map, Program
        from repro.ir.types import I32
        from repro.ir.validate import validate_program

        program = Program(
            "wire",
            (Param("%b0", I32),),
            Map(
                Const(4, I32),
                Var(index_name, I32),
                Var(body_name, I32),
            ),
        )
        validate_program(program)  # both spellings are legal wire IR
        return program

    def test_param_spelled_like_canonical_binder_does_not_merge(self):
        from repro.ir.serialize import compile_digest

        # Same shape, different meaning: one body reads the *parameter*
        # "%b0", the other reads the map *index*.  The flat rename used
        # to send both to map(%b0 -> %b0), serving one's cached artifact
        # for the other; with the contract check they hash apart.
        uses_param = self._program("i", "%b0")
        uses_binder = self._program("j", "j")
        assert compile_digest(uses_param) != compile_digest(uses_binder)

    def test_shadowed_binders_fall_back_to_raw_names(self):
        from repro.ir.expr import Const, Param, Var
        from repro.ir.patterns import Map, Program
        from repro.ir.serialize import (
            canonical_program_dict,
            compile_digest,
        )
        from repro.ir.types import I32
        from repro.ir.validate import validate_program

        def nest(outer, inner, body):
            program = Program(
                "wire",
                (Param("n", I32),),
                Map(
                    Var("n", I32),
                    Var(outer, I32),
                    Map(Const(4, I32), Var(inner, I32), Var(body, I32)),
                ),
            )
            validate_program(program)
            return program

        shadowed = nest("i", "i", "i")        # body reads the inner index
        distinct = nest("i", "j", "i")        # body reads the outer index
        assert compile_digest(shadowed) != compile_digest(distinct)
        # The shadowed program is digested with its names as-is (no
        # rename map is sound for it), deterministically.
        data = canonical_program_dict(shadowed)
        assert data == program_to_dict(shadowed)
        assert compile_digest(shadowed) == compile_digest(nest("i", "i", "i"))

    def test_contract_satisfying_programs_still_renamed(self):
        import json

        from repro.ir.serialize import canonical_program_dict

        data = canonical_program_dict(ALL_APPS["sumRows"].build())
        assert "%b0" in json.dumps(data)
