"""Program serialization: every app round-trips structurally and
semantically through the JSON format the reproducer artifacts use."""

import copy

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.errors import IRError
from repro.interp.evaluator import Evaluator
from repro.ir import Builder, F64
from repro.ir.serialize import (
    dumps,
    loads,
    program_from_dict,
    program_to_dict,
)
from repro.ir.traversal import structurally_equal


def _small_params(app):
    return {name: max(2, min(value, 8))
            for name, value in app.default_params.items()}


def _same(a, b):
    if isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            _same(a[key], b[key])
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _same(x, y)
        return
    if a is None:
        assert b is None
        return
    a_arr, b_arr = np.asarray(a), np.asarray(b)
    if a_arr.dtype == object or b_arr.dtype == object:
        for x, y in zip(a, b):
            _same(x, y)
        return
    assert np.array_equal(a_arr, b_arr)


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_apps_round_trip(name):
    app = ALL_APPS[name]
    params = _small_params(app)
    program = app.build(**params)
    rebuilt = loads(dumps(program))

    assert rebuilt.name == program.name
    assert [p.name for p in rebuilt.params] == [p.name for p in program.params]
    assert rebuilt.size_hints == program.size_hints
    assert structurally_equal(program.result, rebuilt.result)

    inputs = app.workload(app.make_rng(3), **params)
    original = Evaluator(program, seed=3).run(**copy.deepcopy(inputs))
    replayed = Evaluator(rebuilt, seed=3).run(**copy.deepcopy(inputs))
    _same(original, replayed)


def test_version_mismatch_rejected():
    b = Builder("tiny")
    v = b.vector("v", F64, "N")
    data = program_to_dict(b.build(v.map(lambda e: e * 2.0)))
    data["version"] = 999
    with pytest.raises(IRError):
        program_from_dict(data)


def test_unknown_node_tag_rejected():
    with pytest.raises(IRError):
        from repro.ir.serialize import node_from_dict

        node_from_dict({"n": "mystery"})
