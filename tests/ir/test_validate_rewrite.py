"""Tests for validation and rewriting."""

import pytest

from repro.errors import ValidationError
from repro.ir import Builder, F64
from repro.ir.expr import (
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Const,
    Param,
    Var,
)
from repro.ir.patterns import Map, Program, Reduce
from repro.ir.rewrite import rewrite, substitute, substitute_var
from repro.ir.types import ArrayType, I64
from repro.ir.validate import validate_expr, validate_program


class TestValidate:
    def test_valid_program_passes(self, sum_rows_program):
        validate_program(sum_rows_program)

    def test_unbound_variable(self):
        i = Var("i", I64)
        loose = Var("loose", F64)
        prog = Program("bad", (), Map(Const(3), i, loose))
        with pytest.raises(ValidationError, match="unbound"):
            validate_program(prog)

    def test_duplicate_params(self):
        p = Param("x", F64)
        prog = Program("bad", (p, Param("x", F64)), Const(1))
        with pytest.raises(ValidationError, match="duplicate"):
            validate_program(prog)

    def test_size_may_not_contain_pattern(self):
        i, j = Var("i", I64), Var("j", I64)
        inner = Reduce(Const(3), j, Const(1), "+")
        with pytest.raises(ValidationError, match="pattern"):
            validate_expr(Map(inner, i, Const(1.0)))

    def test_negative_size(self):
        i = Var("i", I64)
        with pytest.raises(ValidationError, match="negative"):
            validate_expr(Map(Const(-1), i, Const(1.0)))

    def test_combiner_may_only_use_binders(self):
        i = Var("i", I64)
        a, b = Var("a", F64), Var("b", F64)
        outsider = Var("outsider", F64)
        bad = Reduce(
            Const(3), i, Const(1.0), "custom",
            (a, b, BinOp("+", a, outsider)),
        )
        with pytest.raises(ValidationError, match="combiner"):
            validate_expr(bad)

    def test_block_bind_ordering(self):
        t = Var("t", F64)
        # use before bind
        bad = Block((Bind(Var("u", F64), t), Bind(t, Const(1.0))), t)
        with pytest.raises(ValidationError, match="unbound"):
            validate_expr(bad)


class TestRewrite:
    def test_identity_preserved_when_unchanged(self, sum_rows_program):
        root = sum_rows_program.result
        result = rewrite(root, lambda n: None)
        assert result is root

    def test_constant_replacement(self):
        e = BinOp("+", Const(1), Const(2))

        def transform(n):
            if isinstance(n, Const) and n.value == 1:
                return Const(10)
            return None

        out = rewrite(e, transform)
        assert out.lhs.value == 10
        assert out.rhs is e.rhs  # untouched subtree keeps identity

    def test_substitute_by_identity(self):
        target = Const(5)
        e = BinOp("*", target, Const(2))
        out = substitute(e, {target: Const(7)})
        assert out.lhs.value == 7

    def test_substitute_var(self):
        x = Var("x", I64)
        e = BinOp("+", x, Const(1))
        out = substitute_var(e, "x", Const(9))
        assert out.lhs.value == 9

    def test_substitute_var_respects_shadowing(self):
        # map binds its own 'i'; outer substitution must not reach inside.
        i = Var("i", I64)
        arr = Param("xs", ArrayType(F64, 1))
        inner = Map(Const(3), i, ArrayRead(arr, (i,)))
        out = substitute_var(inner, "i", Const(0))
        assert out is inner

    def test_substitute_var_in_block_respects_rebinding(self):
        x_outer = Var("x", I64)
        x_rebound = Var("x", I64)
        use_before = BinOp("+", x_outer, Const(1))
        use_after = BinOp("+", Var("x", I64), Const(2))
        block = Block(
            (
                Bind(Var("a", I64), use_before),
                Bind(x_rebound, Const(99)),
                Bind(Var("b", I64), use_after),
            ),
            Var("b", I64),
        )
        out = substitute_var(block, "x", Const(7))
        # first use substituted, second (after rebind) untouched
        assert out.stmts[0].value.lhs.value == 7
        assert isinstance(out.stmts[2].value.lhs, Var)

    def test_rewrite_rebuilds_patterns(self, sum_rows_program):
        root = sum_rows_program.result

        def transform(n):
            if isinstance(n, Const) and n.value == 0:
                return Const(1)
            return None

        # no zeros in tree: unchanged
        assert rewrite(root, transform) is root
