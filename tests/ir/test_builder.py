"""Tests for the front-end DSL (builder lowering to canonical IR)."""

import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ir import Builder, F64, I64
from repro.ir.builder import (
    EH,
    Vec,
    let,
    let_vec,
    lift,
    maximum,
    minimum,
    range_foreach,
    range_map,
    range_reduce,
    sqrt,
    store,
)
from repro.ir.expr import (
    ArrayRead,
    BinOp,
    Block,
    Bind,
    Cmp,
    Const,
    Param,
    Select,
    Var,
)
from repro.ir.patterns import Filter, Foreach, GroupBy, Map, Reduce, ZipWith
from repro.ir.types import ArrayType, StructType


class TestLift:
    def test_numbers(self):
        assert isinstance(lift(3), Const)
        assert lift(3.5).ty == F64
        assert lift(True).ty.name == "bool"

    def test_handles_and_nodes(self):
        c = Const(1)
        assert lift(EH(c)) is c
        assert lift(c) is c

    def test_junk(self):
        with pytest.raises(TypeMismatchError):
            lift("nope")


class TestOperators:
    def test_arithmetic_builds_binops(self):
        x = EH(Var("x", F64))
        expr = ((x + 1) * 2 - 3) / 4
        assert isinstance(expr.expr, BinOp)

    def test_reflected_operators(self):
        x = EH(Var("x", F64))
        assert isinstance((1 + x).expr, BinOp)
        assert isinstance((2.0 / x).expr, BinOp)

    def test_comparisons(self):
        x = EH(Var("x", F64))
        assert isinstance((x < 1).expr, Cmp)
        assert isinstance(x.eq(1).expr, Cmp)
        assert isinstance(x.ne(1).expr, Cmp)

    def test_where(self):
        x = EH(Var("x", F64))
        sel = (x > 0).where(x, -x, prob=0.8)
        assert isinstance(sel.expr, Select)
        assert sel.expr.prob == 0.8

    def test_min_max_helpers(self):
        x = EH(Var("x", F64))
        assert minimum(x, 0).expr.op == "min"
        assert maximum(x, 0).expr.op == "max"

    def test_intrinsic_helpers(self):
        x = EH(Var("x", F64))
        assert sqrt(x).expr.fn == "sqrt"


class TestBuilderParams:
    def test_duplicate_param_rejected(self):
        b = Builder("p")
        b.scalar("x", F64)
        with pytest.raises(IRError):
            b.scalar("x", F64)

    def test_size_reuse_by_name(self):
        b = Builder("p")
        m = b.matrix("m", F64, rows="N", cols="N")
        # N declared once even though referenced twice.
        assert [p.name for p in b._params] == ["N", "m"]

    def test_size_hint_recorded(self):
        b = Builder("p")
        b.size("N", hint=42)
        v = b.vector("xs", F64, length="N")
        prog = b.build(v.reduce("+"))
        assert prog.size_hints["N"] == 42


class TestLowering:
    def test_map_rows_produces_map_reduce_nest(self, sum_rows_program):
        root = sum_rows_program.result
        assert isinstance(root, Map)
        assert isinstance(root.body, Reduce)
        read = root.body.body
        assert isinstance(read, ArrayRead)
        # row view: indices are (outer, inner)
        assert read.indices[0] is root.index
        assert read.indices[1] is root.body.index

    def test_map_cols_swaps_indices(self, sum_cols_program):
        root = sum_cols_program.result
        read = root.body.body
        assert read.indices[0] is root.body.index  # row index is inner
        assert read.indices[1] is root.index

    def test_zip_with_builds_zipwith_node(self):
        b = Builder("z")
        a = b.vector("a", F64, length="N")
        c = b.vector("c", F64, length="N")
        out = a.zip_with(c, lambda x, y: x + y)
        assert isinstance(out.expr, ZipWith)

    def test_filter_and_groupby(self):
        b = Builder("f")
        xs = b.vector("xs", F64, length="N")
        assert isinstance(xs.filter(lambda e: e > 0).expr, Filter)
        b2 = Builder("g")
        ys = b2.vector("ys", F64, length="N")
        assert isinstance(ys.group_by(lambda e: e.cast(I64)).expr, GroupBy)

    def test_custom_reduce(self):
        b = Builder("r")
        xs = b.vector("xs", F64, length="N")
        r = xs.reduce_fn(lambda a, c: maximum(a, c))
        assert isinstance(r.expr, Reduce)
        assert r.expr.op == "custom"

    def test_foreach_builds_stores(self):
        b = Builder("fe")
        xs = b.vector("xs", F64, length="N")
        out = b.vector("out", F64, length="N")
        node = xs.foreach(lambda e, i: [store(out, i, e * 2)])
        assert isinstance(node, Foreach)

    def test_range_helpers(self):
        v = range_map(10, lambda i: EH(Const(1.0)))
        assert isinstance(v.expr, Map)
        r = range_reduce(10, lambda i: EH(Const(1.0)))
        assert isinstance(r.expr, Reduce)
        f = range_foreach(10, lambda i: [store(_outvec(), i, 0.0)])
        assert isinstance(f, Foreach)

    def test_nested_range_map_returns_plain_handle(self):
        out = range_map(4, lambda i: range_map(5, lambda j: EH(Const(1.0))))
        assert isinstance(out, EH) and not isinstance(out, Vec)
        assert out.expr.ty == ArrayType(F64, 2)


def _outvec():
    b = Builder("tmp")
    return b.vector("out", F64, length="N")


class TestFusion:
    """Consuming an unmaterialized Map fuses instead of reading a temp."""

    def test_map_reduce_fuses(self):
        b = Builder("f")
        xs = b.vector("xs", F64, length="N")
        r = xs.map(lambda e: e * 2).reduce("+")
        node = r.expr
        assert isinstance(node, Reduce)
        # The reduce body is the map body (a multiply), not an ArrayRead
        # of a temp.
        assert isinstance(node.body, BinOp)

    def test_map_map_fuses(self):
        b = Builder("f")
        xs = b.vector("xs", F64, length="N")
        v = xs.map(lambda e: e + 1).map(lambda e: e * 2)
        assert isinstance(v.expr, Map)
        assert isinstance(v.expr.body, BinOp)
        # fused: no nested Map in the body
        from repro.ir.traversal import find_patterns

        assert len(find_patterns(v.expr)) == 1

    def test_let_vec_materializes(self):
        b = Builder("f")
        xs = b.vector("xs", F64, length="N")
        out = let_vec(xs.map(lambda e: e * 2), lambda t: t.reduce("+"))
        block = out.expr
        assert isinstance(block, Block)
        assert isinstance(block.stmts[0], Bind)
        assert isinstance(block.stmts[0].value, Map)


class TestLet:
    def test_let_builds_block(self):
        b = Builder("l")
        x = b.scalar("x", F64)
        out = let(x * 2, lambda t: t + 1)
        assert isinstance(out.expr, Block)
        assert isinstance(out.expr.stmts[0], Bind)

    def test_nested_let_flattens(self):
        b = Builder("l")
        x = b.scalar("x", F64)
        out = let(x * 2, lambda t: let(t + 1, lambda u: u * u))
        assert isinstance(out.expr, Block)
        assert len(out.expr.stmts) == 2


class TestStructHandle:
    def test_field_vector_registers_shape(self):
        sty = StructType.of("S", {"xs": ArrayType(F64, 1)})
        b = Builder("s")
        n = b.size("N")
        s = b.struct("s", sty)
        s.field_vector("xs", n)
        prog = b.build(s.field_vector("xs", n).reduce("+"))
        assert "s.xs" in prog.array_shapes
