"""Tests for IR traversal utilities."""

import pytest

from repro.ir import Builder, F64
from repro.ir.expr import BinOp, Const, Var
from repro.ir.patterns import Map, Reduce
from repro.ir.traversal import (
    child_patterns,
    count_nodes,
    find_instances,
    find_patterns,
    free_vars,
    max_nest_depth,
    pattern_paths,
    structurally_equal,
    walk,
)
from repro.ir.types import I64


class TestWalk:
    def test_preorder_root_first(self, sum_rows_program):
        nodes = list(walk(sum_rows_program.result))
        assert nodes[0] is sum_rows_program.result

    def test_visits_all(self):
        e = BinOp("+", Const(1), BinOp("*", Const(2), Const(3)))
        assert count_nodes(e) == 5

    def test_find_instances(self, sum_rows_program):
        reduces = find_instances(sum_rows_program.result, Reduce)
        assert len(reduces) == 1


class TestPatternStructure:
    def test_find_patterns(self, sum_rows_program):
        pats = find_patterns(sum_rows_program.result)
        assert len(pats) == 2

    def test_child_patterns_direct_only(self):
        k = Var("k", I64)
        innermost = Map(Const(2), k, Const(1.0))
        j = Var("j", I64)
        mid = Map(Const(3), j, innermost)
        i = Var("i", I64)
        outer = Map(Const(4), i, mid)
        assert child_patterns(outer) == [mid]
        assert child_patterns(mid) == [innermost]

    def test_pattern_paths_levels(self, sum_rows_program):
        paths = pattern_paths(sum_rows_program.result)
        depths = sorted(len(p) for p in paths)
        assert depths == [1, 2]

    def test_max_nest_depth(self, sum_rows_program):
        assert max_nest_depth(sum_rows_program.result) == 2

    def test_siblings_at_same_level(self):
        # Fig 5 style: two patterns nested in the same body.
        from repro.ir.expr import Bind, Block

        j = Var("j", I64)
        k = Var("k", I64)
        inner_map = Map(Const(5), j, Const(1.0))
        inner_red = Reduce(Const(5), k, Const(1.0), "+")
        t = Var("t", inner_map.ty)
        body = Block((Bind(t, inner_map),), inner_red)
        i = Var("i", I64)
        outer = Map(Const(4), i, body)
        assert len(child_patterns(outer)) == 2
        assert max_nest_depth(outer) == 2


class TestFreeVars:
    def test_pattern_index_is_bound(self, sum_rows_program):
        names = {v.name for v in free_vars(sum_rows_program.result)}
        root = sum_rows_program.result
        assert root.index.name not in names

    def test_free_variable_detected(self):
        i = Var("i", I64)
        loose = Var("loose", F64)
        m = Map(Const(3), i, BinOp("+", loose, Const(1.0)))
        assert [v.name for v in free_vars(m)] == ["loose"]

    def test_bind_scopes(self):
        from repro.ir.expr import Bind, Block

        t = Var("t", F64)
        block = Block((Bind(t, Const(1.0)),), t)
        assert free_vars(block) == []


class TestStructuralEquality:
    def test_alpha_equivalence(self):
        def build(idx_name):
            b = Builder("p" + idx_name)
            m = b.matrix("m", F64, rows="R", cols="C")
            return b.build(
                m.map_rows(lambda r: r.reduce("+", index_name=idx_name),
                           index_name=idx_name + "o")
            )

        a = build("x")
        c = build("y")
        assert structurally_equal(a.result, c.result)

    def test_different_ops_differ(self):
        a = BinOp("+", Const(1), Const(2))
        b = BinOp("*", Const(1), Const(2))
        assert not structurally_equal(a, b)

    def test_different_constants_differ(self):
        assert not structurally_equal(Const(1), Const(2))

    def test_zipwith_is_not_plain_map(self):
        from repro.ir.patterns import ZipWith

        i, j = Var("i", I64), Var("j", I64)
        assert not structurally_equal(
            Map(Const(3), i, Const(1.0)), ZipWith(Const(3), j, Const(1.0))
        )
