"""Tests for host-driver generation (complete .cu files)."""

import pytest

from repro.codegen import compile_program, generate_host_driver


def driver_for(program, sizes, strategy="multidim", **compile_kwargs):
    module = compile_program(program, strategy, **sizes, **compile_kwargs)
    return generate_host_driver(module, sizes)


class TestHostDriver:
    def test_complete_translation_unit(self, sum_rows_program):
        src = driver_for(sum_rows_program, {"R": 1024, "C": 4096})
        assert "#include <cuda_runtime.h>" in src
        assert "int main()" in src
        assert "__global__" in src
        assert src.index("__global__") < src.index("int main()")

    def test_buffer_sizes_from_shapes(self, sum_rows_program):
        src = driver_for(sum_rows_program, {"R": 1024, "C": 4096})
        assert "cudaMalloc(&d_m, 4194304 * sizeof(double))" in src
        assert "cudaMalloc(&d_out_sumRows_kernel0, 1024 * sizeof(double))" in src

    def test_launch_geometry_from_mapping(self, sum_rows_program):
        src = driver_for(sum_rows_program, {"R": 1024, "C": 4096})
        assert "dim3 grid_sumRows_kernel0(" in src
        assert "<<<grid_sumRows_kernel0, block_sumRows_kernel0>>>" in src

    def test_memcpy_round_trip(self, sum_rows_program):
        src = driver_for(sum_rows_program, {"R": 64, "C": 64})
        assert "cudaMemcpyHostToDevice" in src
        assert "cudaMemcpyDeviceToHost" in src
        assert "cudaDeviceSynchronize()" in src

    def test_error_checking_everywhere(self, sum_rows_program):
        src = driver_for(sum_rows_program, {"R": 64, "C": 64})
        assert "CUDA_CHECK" in src
        assert "cudaGetLastError()" in src

    def test_combiner_launch_for_split(self):
        from repro.analysis.mapping import (
            Dim, LevelMapping, Mapping, Span, Split,
        )
        from tests.conftest import make_sum_rows

        program = make_sum_rows()
        split_mapping = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(1)),
                LevelMapping(Dim.X, 256, Split(4)),
            )
        )
        module = compile_program(program, split_mapping, R=64, C=100000)
        src = generate_host_driver(module, {"R": 64, "C": 100000})
        assert "d_partials_" in src
        assert "_combine<<<" in src

    def test_struct_fields_flattened(self):
        from repro.apps.pagerank import build_pagerank

        module = compile_program(
            build_pagerank(), "multidim", N=1024, E=16384
        )
        src = generate_host_driver(module, {"N": 1024, "E": 16384})
        assert "d_graph_offsets" in src
        assert "d_graph_nbrs" in src
        # offsets sized N+1
        assert "cudaMalloc(&d_graph_offsets, 1025 * sizeof(long long))" in src

    def test_prealloc_buffer_allocated(self, sum_weighted_cols_program):
        src = driver_for(
            sum_weighted_cols_program, {"R": 256, "C": 256},
        )
        assert "_buf" in src
        assert "cudaMalloc(&d_" in src

    def test_filter_counter_initialized(self):
        from repro.apps.outlier_histogram import build_outlier_filter

        module = compile_program(
            build_outlier_filter(), "multidim", N=4096
        )
        src = generate_host_driver(module, {"N": 4096})
        assert "cudaMemset(d_count_" in src

    def test_multi_kernel_program(self):
        from repro.apps.naive_bayes import build_naive_bayes

        module = compile_program(
            build_naive_bayes(), "multidim", DOCS=512, WORDS=256
        )
        src = generate_host_driver(module, {"DOCS": 512, "WORDS": 256})
        assert src.count("<<<grid_") == 2 + src.count("_combine<<<") * 0
