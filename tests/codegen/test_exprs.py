"""Tests for expression lowering to CUDA C."""

import pytest

from repro.errors import CodegenError
from repro.codegen.exprs import (
    ArrayInfo,
    CodegenContext,
    array_ref,
    c_type,
    lower_expr,
)
from repro.ir.expr import (
    ArrayRead,
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    FieldRead,
    Param,
    Select,
    UnOp,
    Var,
)
from repro.ir.types import BOOL, F32, F64, I64, ArrayType, StructType


def ctx_with(name="m", strides=("C", "1")):
    ctx = CodegenContext()
    ctx.arrays[name] = ArrayInfo(name, tuple(strides))
    return ctx


class TestCTypes:
    def test_scalars(self):
        assert c_type(F64) == "double"
        assert c_type(F32) == "float"
        assert c_type(I64) == "long long"
        assert c_type(BOOL) == "bool"

    def test_arrays(self):
        assert c_type(ArrayType(F64, 2)) == "double*"


class TestLowering:
    def test_constants(self):
        ctx = CodegenContext()
        assert lower_expr(Const(3), ctx) == "3"
        assert lower_expr(Const(2.5), ctx) == "2.5"
        assert lower_expr(Const(True), ctx) == "true"
        assert lower_expr(Const(1.0), ctx) == "1.0"

    def test_binops(self):
        ctx = CodegenContext()
        e = BinOp("+", Const(1), Const(2))
        assert lower_expr(e, ctx) == "(1 + 2)"

    def test_min_max_as_functions(self):
        ctx = CodegenContext()
        e = BinOp("min", Const(1), Const(2))
        assert lower_expr(e, ctx) == "min(1, 2)"

    def test_comparison_and_select(self):
        ctx = CodegenContext()
        sel = Select(Cmp("<", Const(1), Const(2)), Const(3), Const(4))
        assert lower_expr(sel, ctx) == "((1 < 2) ? 3 : 4)"

    def test_intrinsics(self):
        ctx = CodegenContext()
        assert lower_expr(Call("sqrt", [Const(2.0)]), ctx) == "sqrt(2.0)"
        assert lower_expr(Call("abs", [Const(-1.0)]), ctx) == "fabs(-1.0)"

    def test_cast(self):
        ctx = CodegenContext()
        assert lower_expr(Cast(Const(1), F32), ctx) == "((float)1)"

    def test_renames(self):
        ctx = CodegenContext(renames={"i": "tid_x"})
        assert lower_expr(Var("i", I64), ctx) == "tid_x"

    def test_substitutions_by_identity(self):
        node = Const(7)
        ctx = CodegenContext()
        ctx.substitutions[node] = "pv0"
        assert lower_expr(node, ctx) == "pv0"
        assert lower_expr(Const(7), ctx) == "7"  # different node


class TestArrayRef:
    def test_row_major_linearization(self):
        ctx = ctx_with()
        m = Param("m", ArrayType(F64, 2))
        e = ArrayRead(m, (Var("i", I64), Var("j", I64)))
        assert lower_expr(e, ctx) == "m[i * C + j]"

    def test_unit_stride_elided(self):
        ctx = ctx_with(strides=("1",))
        xs = Param("m", ArrayType(F64, 1))
        e = ArrayRead(xs, (Var("i", I64),))
        assert lower_expr(e, ctx) == "m[i]"

    def test_offset_prepended(self):
        ctx = CodegenContext()
        ctx.arrays["t"] = ArrayInfo("t_buf", ("1",), offset="j0 * R")
        t = Var("t", ArrayType(F64, 1))
        e = ArrayRead(t, (Var("k", I64),))
        assert lower_expr(e, ctx) == "t_buf[j0 * R + k]"

    def test_struct_field_flattening(self):
        sty = StructType.of("G", {"nbrs": ArrayType(I64, 1)})
        g = Param("g", sty)
        ctx = CodegenContext()
        # the kernel generator registers flattened struct fields under
        # their C identifier
        ctx.arrays["g_nbrs"] = ArrayInfo("g_nbrs", ("1",))
        e = ArrayRead(FieldRead(g, "nbrs"), (Var("i", I64),))
        assert lower_expr(e, ctx) == "g_nbrs[i]"

    def test_unregistered_array_fails(self):
        ctx = CodegenContext()
        m = Param("m", ArrayType(F64, 1))
        with pytest.raises(CodegenError, match="no layout"):
            lower_expr(ArrayRead(m, (Const(0),)), ctx)

    def test_too_many_indices(self):
        ctx = ctx_with(strides=("1",))
        m = Param("m", ArrayType(F64, 2))
        with pytest.raises(CodegenError):
            array_ref(m, (Const(0), Const(1)), ctx)
