"""Golden-file snapshot tests for generated CUDA.

Each snapshot is a checked-in ``.cu`` file; the tests regenerate the same
kernel (with the fresh-name counters reset for determinism) and compare
byte for byte, catching any unintended codegen change.

Note on Figure 9: the paper's illustrative decision ([DimY, 64] x
[DimX, 32]) totals 2048 threads per block, above CUDA's 1024 limit — our
mapping validator rightly rejects it, so the snapshot uses the legal
16 x 64 shape with the identical code structure.
"""

import pathlib

import pytest

from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll, Split
from repro.codegen.kernels import KernelGenerator
from repro.ir import Builder, F64
from repro.ir.symbols import reset_names

SNAPSHOTS = pathlib.Path(__file__).parent / "snapshots"


def build_sum_rows_fresh():
    reset_names()
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def generate(program, mapping, name, **sizes):
    pa = analyze_program(program, **sizes)
    return KernelGenerator(pa.kernel(0), mapping, program, name).generate()


class TestSnapshots:
    def test_sumrows_fig9(self):
        program = build_sum_rows_fresh()
        mapping = Mapping(
            (LevelMapping(Dim.Y, 16, Span(1)),
             LevelMapping(Dim.X, 64, SpanAll()))
        )
        kernel = generate(program, mapping, "sumRows_fig9", R=4096, C=4096)
        expected = (SNAPSHOTS / "sumrows_fig9.cu").read_text()
        assert kernel.source == expected

    def test_sumrows_split_with_combiner(self):
        program = build_sum_rows_fresh()
        mapping = Mapping(
            (LevelMapping(Dim.Y, 1, Span(1)),
             LevelMapping(Dim.X, 256, Split(4)))
        )
        kernel = generate(
            program, mapping, "sumRows_split", R=64, C=1000000
        )
        expected = (SNAPSHOTS / "sumrows_split.cu").read_text()
        assert kernel.full_source == expected

    def test_minrows_split_combiner_min_op(self):
        """Split(k) combiner for a non-default reduce op: the partials
        fold with min() in both the block reduction and the combiner."""
        reset_names()
        b = Builder("minRows")
        m = b.matrix("m", F64, rows="R", cols="C")
        program = b.build(m.map_rows(lambda row: row.reduce("min")))
        mapping = Mapping(
            (LevelMapping(Dim.Y, 1, Span(1)),
             LevelMapping(Dim.X, 256, Split(4)))
        )
        kernel = generate(
            program, mapping, "minRows_split", R=64, C=1000000
        )
        expected = (SNAPSHOTS / "minrows_split.cu").read_text()
        assert kernel.full_source == expected
        assert kernel.combiner_source

    def test_custom_reduce_split_combiner(self):
        """The difftest custom-op template: the user combine expression
        must appear in both kernels of the Split(k) pair."""
        from repro.difftest.generator import build_program
        from repro.difftest.specs import LevelSpec, ProgramSpec

        spec = ProgramSpec(
            kind="nest",
            levels=(LevelSpec("map"), LevelSpec("reduce", op="custom")),
            leaf="array",
        )
        program = build_program(spec)
        mapping = Mapping(
            (LevelMapping(Dim.Y, 1, Span(1)),
             LevelMapping(Dim.X, 256, Split(4)))
        )
        kernel = generate(
            program, mapping, "customReduce_split", R=64, C=100000
        )
        expected = (SNAPSHOTS / "custom_reduce_split.cu").read_text()
        assert kernel.full_source == expected

    def test_groupby_template(self):
        from repro.difftest.generator import build_program
        from repro.difftest.specs import ProgramSpec
        from repro.gpusim import TESLA_K20C, decide_mapping

        program = build_program(
            ProgramSpec(kind="groupby", key="mod", leaf="affine")
        )
        pa = analyze_program(program, R=4096, C=8)
        decision = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        kernel = KernelGenerator(
            pa.kernel(0), decision.mapping, program, "groupby_snapshot"
        ).generate()
        expected = (SNAPSHOTS / "groupby_mod.cu").read_text()
        assert kernel.source == expected

    def test_filter_template(self):
        from repro.difftest.generator import build_program
        from repro.difftest.specs import ProgramSpec
        from repro.gpusim import TESLA_K20C, decide_mapping

        program = build_program(
            ProgramSpec(kind="filter", pred="threshold", leaf="array")
        )
        pa = analyze_program(program, R=4096, C=8)
        decision = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        kernel = KernelGenerator(
            pa.kernel(0), decision.mapping, program, "filter_snapshot"
        ).generate()
        expected = (SNAPSHOTS / "filter_threshold.cu").read_text()
        assert kernel.source == expected

    def test_pagerank(self):
        from repro.apps.pagerank import build_pagerank
        from repro.gpusim import TESLA_K20C, decide_mapping

        reset_names()
        program = build_pagerank()
        pa = analyze_program(program, N=65536, E=65536 * 16)
        decision = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        kernel = KernelGenerator(
            pa.kernel(0), decision.mapping, program, "pagerank_snapshot"
        ).generate()
        expected = (SNAPSHOTS / "pagerank.cu").read_text()
        assert kernel.source == expected

    def test_snapshots_contain_expected_structures(self):
        fig9 = (SNAPSHOTS / "sumrows_fig9.cu").read_text()
        assert "__shared__" in fig9 and "__syncthreads" in fig9
        split = (SNAPSHOTS / "sumrows_split.cu").read_text()
        assert "partials" in split and "_combine(" in split
        pagerank = (SNAPSHOTS / "pagerank.cu").read_text()
        assert "graph_offsets" in pagerank
        min_split = (SNAPSHOTS / "minrows_split.cu").read_text()
        assert "min(" in min_split and "_combine(" in min_split
        custom = (SNAPSHOTS / "custom_reduce_split.cu").read_text()
        assert "max(" in custom and "_combine(" in custom
        groupby = (SNAPSHOTS / "groupby_mod.cu").read_text()
        assert "atomicAdd" in groupby and "group_counts" in groupby
        filt = (SNAPSHOTS / "filter_threshold.cu").read_text()
        assert "atomicAdd" in filt
