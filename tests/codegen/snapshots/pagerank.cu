// Mapping decision:
//   Level 0: [dimy, 32, span(1)]
//   Level 1: [dimx, 32, span(all)]
__global__ void pagerank_snapshot(long long N, long long E, const long long* graph_offsets, const long long* graph_nbrs, const double* graph_degrees, const double* prev, double* out) {
    long long n0 = blockIdx.y * blockDim.y + threadIdx.y;
    if (n0 < N) {
        double pv0 = 0;
        double acc_i0 = 0;
        for (long long i0 = threadIdx.x; i0 < (graph_offsets[(n0 + 1)] - graph_offsets[n0]); i0 += blockDim.x) {
            acc_i0 = acc_i0 + (prev[graph_nbrs[(graph_offsets[n0] + i0)]] / graph_degrees[graph_nbrs[(graph_offsets[n0] + i0)]]);
        }
        __shared__ double smem1[1024];
        int lin_smem1 = threadIdx.x + threadIdx.y * blockDim.x + threadIdx.z * blockDim.x * blockDim.y;
        smem1[lin_smem1] = acc_i0;
        __syncthreads();
        for (int off = blockDim.x / 2; off > 0; off >>= 1) {
            if (threadIdx.x < off) {
                smem1[lin_smem1] = smem1[lin_smem1] + smem1[lin_smem1 + off * 1];
            }
            __syncthreads();
        }
        pv0 = smem1[lin_smem1 - threadIdx.x * 1];
        if (threadIdx.x == 0) {
            out[n0] = ((0.15000000000000002 / ((double)N)) + (0.85 * pv0));
        }
    }
}
