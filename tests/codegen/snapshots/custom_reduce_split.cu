// Mapping decision:
//   Level 0: [dimy, 1, span(1)]
//   Level 1: [dimx, 256, split(4)]
__global__ void customReduce_split(long long R, long long C, const double* m, const double* v, const double* u, double* out) {
    long long i0 = blockIdx.y * blockDim.y + threadIdx.y;
    if (i0 < R) {
        double acc_i2 = 0;
        long long region_i2 = (C + 4 - 1) / 4;
        long long start_i2 = blockIdx.x * region_i2;
        long long end_i2 = min((long long)C, start_i2 + region_i2);
        for (long long i2 = start_i2 + threadIdx.x; i2 < end_i2; i2 += blockDim.x) {
            acc_i2 = (max(acc_i2, ((m[i0 * (C) + i2] + (v[i0] * u[i2])) + 0.0)) + 0.0);
        }
        __shared__ double smem0[256];
        int lin_smem0 = threadIdx.x + threadIdx.y * blockDim.x + threadIdx.z * blockDim.x * blockDim.y;
        smem0[lin_smem0] = acc_i2;
        __syncthreads();
        for (int off = blockDim.x / 2; off > 0; off >>= 1) {
            if (threadIdx.x < off) {
                smem0[lin_smem0] = (max(smem0[lin_smem0], smem0[lin_smem0 + off * 1]) + 0.0);
            }
            __syncthreads();
        }
        if (threadIdx.x == 0) {
            partials[(i0) * 4 + blockIdx.x] = smem0[lin_smem0 - threadIdx.x * 1];
        }
    }
}

__global__ void customReduce_split_combine(const double* partials, double* out, int n_out, int k) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n_out) return;
    double acc = 0;
    for (int j = 0; j < k; j++) {
        acc = (max(acc, partials[i * k + j]) + 0.0);
    }
    out[i] = acc;
}
