// Mapping decision:
//   Level 0: [dimy, 16, span(1)]
//   Level 1: [dimx, 64, span(all)]
__global__ void sumRows_fig9(long long R, long long C, const double* m, double* out) {
    long long i0 = blockIdx.y * blockDim.y + threadIdx.y;
    if (i0 < R) {
        double acc_k0 = 0;
        for (long long k0 = threadIdx.x; k0 < C; k0 += blockDim.x) {
            acc_k0 = acc_k0 + m[i0 * (C) + k0];
        }
        __shared__ double smem0[1024];
        int lin_smem0 = threadIdx.x + threadIdx.y * blockDim.x + threadIdx.z * blockDim.x * blockDim.y;
        smem0[lin_smem0] = acc_k0;
        __syncthreads();
        for (int off = blockDim.x / 2; off > 0; off >>= 1) {
            if (threadIdx.x < off) {
                smem0[lin_smem0] = smem0[lin_smem0] + smem0[lin_smem0 + off * 1];
            }
            __syncthreads();
        }
        if (threadIdx.x == 0) {
            out[i0] = smem0[lin_smem0 - threadIdx.x * 1];
        }
    }
}
