// Mapping decision:
//   Level 0: [dimx, 1024, split(4)]
__global__ void filter_snapshot(long long R, long long C, const double* m, const double* v, const double* u, double* out) {
    long long region_i0 = (R + 4 - 1) / 4;
    long long start_i0 = blockIdx.x * region_i0;
    long long end_i0 = min((long long)R, start_i0 + region_i0);
    for (long long i0 = start_i0 + threadIdx.x; i0 < end_i0; i0 += blockDim.x) {
        if ((fabs(v[i0]) < 0.75)) {
            int pos = atomicAdd(out_count, 1);
            out[pos] = ((v[i0] * 2.0) + 1.0);
        }
    }
}
