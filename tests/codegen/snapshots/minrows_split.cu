// Mapping decision:
//   Level 0: [dimy, 1, span(1)]
//   Level 1: [dimx, 256, split(4)]
__global__ void minRows_split(long long R, long long C, const double* m, double* out) {
    long long i0 = blockIdx.y * blockDim.y + threadIdx.y;
    if (i0 < R) {
        double acc_k0 = DBL_MAX;
        long long region_k0 = (C + 4 - 1) / 4;
        long long start_k0 = blockIdx.x * region_k0;
        long long end_k0 = min((long long)C, start_k0 + region_k0);
        for (long long k0 = start_k0 + threadIdx.x; k0 < end_k0; k0 += blockDim.x) {
            acc_k0 = min(acc_k0, m[i0 * (C) + k0]);
        }
        __shared__ double smem0[256];
        int lin_smem0 = threadIdx.x + threadIdx.y * blockDim.x + threadIdx.z * blockDim.x * blockDim.y;
        smem0[lin_smem0] = acc_k0;
        __syncthreads();
        for (int off = blockDim.x / 2; off > 0; off >>= 1) {
            if (threadIdx.x < off) {
                smem0[lin_smem0] = min(smem0[lin_smem0], smem0[lin_smem0 + off * 1]);
            }
            __syncthreads();
        }
        if (threadIdx.x == 0) {
            partials[(i0) * 4 + blockIdx.x] = smem0[lin_smem0 - threadIdx.x * 1];
        }
    }
}

__global__ void minRows_split_combine(const double* partials, double* out, int n_out, int k) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n_out) return;
    double acc = DBL_MAX;
    for (int j = 0; j < k; j++) {
        acc = min(acc, partials[i * k + j]);
    }
    out[i] = acc;
}
