"""Tests for CUDA kernel generation, including the Figure 9 golden test."""

import pytest

from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll, Split, seq_level
from repro.codegen.compiler import compile_program
from repro.codegen.kernels import KernelGenerator
from repro.analysis.analyzer import analyze_program


def generate(program, mapping, **sizes):
    pa = analyze_program(program, **sizes)
    gen = KernelGenerator(pa.kernel(0), mapping, program, "k")
    return gen.generate()


class TestFigure9Golden:
    """The generated sumRows kernel must match Figure 9's structure."""

    MAPPING = Mapping(
        (
            LevelMapping(Dim.Y, 64, Span(1)),
            LevelMapping(Dim.X, 16, SpanAll()),
        )
    )

    def test_structure(self, sum_rows_program):
        k = generate(sum_rows_program, self.MAPPING, R=4096, C=4096)
        src = k.source
        # outer index from block/thread y
        assert "blockIdx.y * blockDim.y + threadIdx.y" in src
        # strided inner loop over columns
        assert "+= blockDim.x" in src
        # local accumulation, then shared-memory tree
        assert "__shared__" in src
        assert "__syncthreads();" in src
        assert "blockDim.x / 2" in src
        # thread 0 of x writes the row result
        assert "threadIdx.x == 0" in src
        assert "out[" in src

    def test_mapping_comment(self, sum_rows_program):
        k = generate(sum_rows_program, self.MAPPING, R=4096, C=4096)
        assert "Level 0: [dimy, 64, span(1)]" in k.source
        assert "Level 1: [dimx, 16, span(all)]" in k.source

    def test_launch_config(self, sum_rows_program):
        k = generate(sum_rows_program, self.MAPPING, R=4096, C=4096)
        cfg = k.launch_config([4096, 4096])
        assert cfg.block == (16, 64, 1)
        assert cfg.grid == (1, 64, 1)  # 4096/64 blocks along y, 1 along x

    def test_row_major_access(self, sum_rows_program):
        k = generate(sum_rows_program, self.MAPPING, R=4096, C=4096)
        assert "* (C) +" in k.source.replace("  ", " ")


class TestTemplateSelection:
    """Different mappings produce different code structures, not just
    launch parameters (Section IV-E)."""

    def test_sequential_reduce_no_shared_memory(self, sum_rows_program):
        m = Mapping((LevelMapping(Dim.X, 256, Span(1)), seq_level()))
        k = generate(sum_rows_program, m, R=4096, C=4096)
        assert "__shared__" not in k.source
        assert "for (long long" in k.source

    def test_split_emits_combiner(self, sum_rows_program):
        m = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(1)),
                LevelMapping(Dim.X, 256, Split(4)),
            )
        )
        k = generate(sum_rows_program, m, R=64, C=10**6)
        assert "partials" in k.source
        assert k.combiner_source
        assert "_combine(" in k.combiner_source

    def test_span_n_emits_span_loop(self, sum_rows_program):
        m = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(4)),
                LevelMapping(Dim.X, 256, SpanAll()),
            )
        )
        k = generate(sum_rows_program, m, R=4096, C=4096)
        assert "for (int s_" in k.source

    def test_guarded_outer_write(self):
        """Outer-level stores are guarded when inner dims are parallel."""
        from repro.ir import Builder, F64
        from repro.ir.builder import range_foreach, store, store2
        from repro.ir.expr import ExprStmt

        b = Builder("guard")
        n = b.size("N")
        marks = b.vector("marks", F64, length="N")
        out = b.matrix("outm", F64, rows="N", cols="N")
        body = range_foreach(
            n,
            lambda i: [
                store(marks, i, 1.0),  # outer-level store
                ExprStmt(
                    range_foreach(
                        n,
                        lambda j: [store2(out, i, j, 2.0)],
                        index_name="j",
                    )
                ),
            ],
            index_name="i",
        )
        prog = b.build(body)
        m = Mapping(
            (
                LevelMapping(Dim.Y, 4, Span(1)),
                LevelMapping(Dim.X, 64, Span(1)),
            )
        )
        k = generate(prog, m, N=512)
        # the marks store is guarded on the inner (x) dimension
        assert "if (threadIdx.x == 0) marks[" in k.source
        # the inner store is not guarded
        assert "if (threadIdx.x == 0) outm[" not in k.source

    def test_prealloc_buffer_parameter(self, sum_weighted_cols_program):
        mod = compile_program(
            sum_weighted_cols_program, "multidim", prealloc=True,
            R=256, C=256,
        )
        src = mod.kernels[0].source
        assert "_buf" in src
        assert "malloc" not in src

    def test_malloc_path(self, sum_weighted_cols_program):
        mod = compile_program(
            sum_weighted_cols_program, "multidim", prealloc=False,
            R=256, C=256,
        )
        assert "malloc(sizeof(double)" in mod.kernels[0].source

    def test_filter_uses_atomic_compaction(self):
        from repro.ir import Builder, F64

        b = Builder("f")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.filter(lambda e: e > 0))
        mod = compile_program(prog, "multidim", N=10000)
        src = mod.kernels[0].source
        assert "atomicAdd(out_count, 1)" in src

    def test_groupby_uses_bucket_scatter(self):
        from repro.ir import Builder, F64, I64

        b = Builder("g")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.group_by(lambda e: e.cast(I64)))
        mod = compile_program(prog, "multidim", N=10000)
        src = mod.kernels[0].source
        assert "atomicAdd(&group_counts" in src


class TestEmbeddedPatterns:
    def test_pagerank_hoists_reduce_value(self):
        from repro.apps.pagerank import build_pagerank

        mod = compile_program(build_pagerank(), "multidim", N=4096, E=65536)
        src = mod.kernels[0].source
        # the reduce result lands in a hoisted local used by the final
        # expression
        assert "pv" in src
        assert "0.85" in src

    def test_device_function_preamble(self):
        from repro.apps.mandelbrot import build_mandelbrot

        mod = compile_program(build_mandelbrot(), "multidim", H=64, W=64)
        assert "__device__ double mandel" in mod.source
        assert "mandel(" in mod.kernels[0].source


class TestModule:
    def test_one_kernel_per_outer_pattern(self):
        from repro.apps.naive_bayes import build_naive_bayes

        mod = compile_program(build_naive_bayes(), "multidim",
                              DOCS=256, WORDS=256)
        assert len(mod.kernels) == 2
        assert mod.kernels[0].name != mod.kernels[1].name
        # two main kernels, plus combiner kernels if ControlDOP split one
        assert mod.source.count("__global__") >= 2

    def test_struct_params_flattened(self):
        from repro.apps.pagerank import build_pagerank

        mod = compile_program(build_pagerank(), "multidim", N=4096, E=65536)
        sig_names = [name for _, name in mod.kernels[0].params]
        assert "graph_offsets" in sig_names
        assert "graph_nbrs" in sig_names

    def test_fixed_strategy_codegen(self, sum_rows_program):
        mod = compile_program(sum_rows_program, "warp-based", R=512, C=512)
        assert "__global__" in mod.source
