"""Tests for the functional interpreter."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.interp import Evaluator, run_program
from repro.ir import Builder, F32, F64, I64
from repro.ir.builder import (
    EH,
    let,
    let_vec,
    maximum,
    minimum,
    range_foreach,
    range_map,
    range_reduce,
    sqrt,
    store,
)
from repro.ir.expr import Const


class TestExpressions:
    def test_arithmetic(self, rng):
        b = Builder("p")
        x = b.scalar("x", F64)
        prog = b.build((x + 1) * 2 - 0.5)
        assert run_program(prog, x=3.0) == pytest.approx(7.5)

    def test_division_semantics(self):
        b = Builder("p")
        x = b.scalar("x", I64)
        prog = b.build(x / 4)
        assert run_program(prog, x=10) == pytest.approx(2.5)
        b2 = Builder("p2")
        y = b2.scalar("y", I64)
        prog2 = b2.build(y // 4)
        assert run_program(prog2, y=10) == 2

    def test_intrinsics(self):
        b = Builder("p")
        x = b.scalar("x", F64)
        prog = b.build(sqrt(x))
        assert run_program(prog, x=16.0) == pytest.approx(4.0)

    def test_min_max(self):
        b = Builder("p")
        x = b.scalar("x", F64)
        prog = b.build(minimum(maximum(x, 0.0), 1.0))
        assert run_program(prog, x=3.0) == 1.0
        assert run_program(prog, x=-3.0) == 0.0

    def test_select_scalar(self):
        b = Builder("p")
        x = b.scalar("x", F64)
        prog = b.build((x > 0).where(x, -x))
        assert run_program(prog, x=-5.0) == 5.0

    def test_cast(self):
        b = Builder("p")
        x = b.scalar("x", F64)
        prog = b.build(x.cast(I64))
        assert run_program(prog, x=3.9) == 3

    def test_let_binding(self):
        b = Builder("p")
        x = b.scalar("x", F64)
        prog = b.build(let(x * 2, lambda t: t + t))
        assert run_program(prog, x=3.0) == 12.0

    def test_missing_input(self, sum_rows_program):
        with pytest.raises(ExecutionError, match="missing input"):
            run_program(sum_rows_program, R=2, C=2)


class TestPatterns:
    def test_map(self, rng):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.map(lambda e: e * 2 + 1))
        data = rng.random(64)
        assert np.allclose(run_program(prog, xs=data, N=64), data * 2 + 1)

    def test_zip_with(self, rng):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        ys = b.vector("ys", F64, length="N")
        prog = b.build(xs.zip_with(ys, lambda a, c: a * c))
        x, y = rng.random(32), rng.random(32)
        assert np.allclose(run_program(prog, xs=x, ys=y, N=32), x * y)

    def test_reduce_ops(self, rng):
        data = rng.random(100)
        for op, expected in (
            ("+", data.sum()),
            ("*", data.prod()),
            ("min", data.min()),
            ("max", data.max()),
        ):
            b = Builder("p" + op)
            xs = b.vector("xs", F64, length="N")
            prog = b.build(xs.reduce(op))
            assert run_program(prog, xs=data, N=100) == pytest.approx(expected)

    def test_custom_reduce(self, rng):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.reduce_fn(lambda a, c: maximum(a, c)))
        data = rng.random(50)
        assert run_program(prog, xs=data, N=50) == pytest.approx(data.max())

    def test_empty_sum_reduce_identity(self):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.reduce("+"))
        assert run_program(prog, xs=np.zeros(0), N=0) == 0.0

    def test_empty_min_reduce_raises(self):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.reduce("min"))
        with pytest.raises(ExecutionError, match="identity"):
            run_program(prog, xs=np.zeros(0), N=0)

    def test_filter(self, rng):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.filter(lambda e: e > 0.5))
        data = rng.random(200)
        assert np.allclose(run_program(prog, xs=data, N=200),
                           data[data > 0.5])

    def test_groupby(self):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        prog = b.build(xs.group_by(lambda e: (e * 3).cast(I64)))
        data = np.array([0.1, 0.5, 0.9, 0.2])
        groups = run_program(prog, xs=data, N=4)
        assert set(groups) == {0, 1, 2}
        assert np.allclose(groups[0], [0.1, 0.2])

    def test_foreach_stores(self, rng):
        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        out = b.vector("out", F64, length="N")
        prog = b.build(xs.foreach(lambda e, i: [store(out, i, e * e)]))
        data = rng.random(16)
        buffer = np.zeros(16)
        run_program(prog, xs=data, out=buffer, N=16)
        assert np.allclose(buffer, data * data)

    def test_nested_map_stacks(self, rng):
        prog_b = Builder("p")
        n = prog_b.size("N")
        m = prog_b.size("M")
        out = range_map(
            n, lambda i: range_map(
                m, lambda j: i.cast(F64) * 10 + j.cast(F64),
                index_name="j",
            ),
            index_name="i",
        )
        prog = prog_b.build(out)
        result = run_program(prog, N=3, M=4)
        assert result.shape == (3, 4)
        assert result[2, 3] == 23.0

    def test_ragged_nested_map(self):
        b = Builder("p")
        n = b.size("N")
        out = range_map(
            n,
            lambda i: range_map(i + 1, lambda j: j.cast(F64), index_name="j"),
            index_name="i",
        )
        prog = b.build(out)
        result = run_program(prog, N=3)
        assert result.dtype == object
        assert len(result[2]) == 3

    def test_random_index_reproducible(self):
        b = Builder("p")
        n = b.size("N")
        xs = b.vector("xs", F64, length="N")
        from repro.ir.builder import random_index

        out = range_map(
            n, lambda s: xs[random_index(n).cast(I64)], index_name="s"
        )
        prog = b.build(out)
        data = np.arange(50, dtype=np.float64)
        a = run_program(prog, seed=3, xs=data, N=50)
        c = run_program(prog, seed=3, xs=data, N=50)
        d = run_program(prog, seed=4, xs=data, N=50)
        assert np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_struct_inputs(self):
        from repro.ir.types import ArrayType, StructType

        sty = StructType.of("S", {"xs": ArrayType(F64, 1)})
        b = Builder("p")
        n = b.size("N")
        s = b.struct("s", sty)
        prog = b.build(s.field_vector("xs", n).reduce("+"))
        assert run_program(
            prog, s={"xs": np.ones(5)}, N=5
        ) == pytest.approx(5.0)

    def test_let_vec_materialization_matches_fusion(self, rng):
        data = rng.random(64)
        b1 = Builder("fused")
        xs1 = b1.vector("xs", F64, length="N")
        fused = b1.build(xs1.map(lambda e: e * 2).reduce("+"))
        b2 = Builder("mat")
        xs2 = b2.vector("xs", F64, length="N")
        materialized = b2.build(
            let_vec(xs2.map(lambda e: e * 2), lambda t: t.reduce("+"))
        )
        assert run_program(fused, xs=data, N=64) == pytest.approx(
            run_program(materialized, xs=data, N=64)
        )
