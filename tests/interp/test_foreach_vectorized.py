"""Tests for the vectorized Foreach fast path: every supported shape must
match the sequential loop exactly, and every unsafe shape must fall back."""

import numpy as np
import pytest

from repro.interp import Evaluator, run_program
from repro.ir import Builder, F64, I64
from repro.ir.builder import if_then, range_foreach, store, store2
from repro.ir.expr import ExprStmt


def run_both(make_program, inputs_factory, rng):
    """Run once through whatever path the evaluator takes, and once with
    the fast path disabled; results must agree."""
    prog = make_program()
    fast_inputs = inputs_factory(rng)
    slow_inputs = {
        k: (v.copy() if isinstance(v, np.ndarray) else v)
        for k, v in fast_inputs.items()
    }
    run_program(prog, **fast_inputs)

    evaluator = Evaluator(prog)
    evaluator._try_vectorized_foreach = lambda *a, **k: False
    evaluator.run(**slow_inputs)
    return fast_inputs, slow_inputs


class TestAgreementWithSequentialLoop:
    def test_plain_scatter(self, rng):
        def build():
            b = Builder("p")
            xs = b.vector("xs", F64, length="N")
            out = b.vector("out", F64, length="N")
            return b.build(
                xs.foreach(lambda e, i: [store(out, i, e * 2 + 1)])
            )

        fast, slow = run_both(
            build,
            lambda r: {"xs": r.random(64), "out": np.zeros(64), "N": 64},
            rng,
        )
        assert np.allclose(fast["out"], slow["out"])
        assert np.allclose(fast["out"], fast["xs"] * 2 + 1)

    def test_guarded_scatter(self, rng):
        def build():
            b = Builder("p")
            xs = b.vector("xs", F64, length="N")
            out = b.vector("out", F64, length="N")
            return b.build(
                xs.foreach(
                    lambda e, i: [
                        if_then(e > 0.5, [store(out, i, e)],
                                [store(out, i, -e)])
                    ]
                )
            )

        fast, slow = run_both(
            build,
            lambda r: {"xs": r.random(100), "out": np.zeros(100), "N": 100},
            rng,
        )
        assert np.allclose(fast["out"], slow["out"])

    def test_read_own_position(self, rng):
        """a[i] = a[i] * 2: reads only the iteration's own write slot."""

        def build():
            b = Builder("p")
            a = b.vector("a", F64, length="N")
            return b.build(a.foreach(lambda e, i: [store(a, i, e * 2)]))

        fast, slow = run_both(
            build, lambda r: {"a": r.random(50), "N": 50}, rng
        )
        assert np.allclose(fast["a"], slow["a"])

    def test_gaussian_style_rank1_update(self, rng):
        """The Fan2 inner loop: reads a row never written by the loop."""

        def build():
            b = Builder("p")
            n = b.size("N")
            a = b.matrix("a", F64, rows="N", cols="N")
            return b.build(
                range_foreach(
                    n - 1,
                    lambda j: [
                        store2(a, 1 + j, j, a[1 + j, j] - a[0, j])
                    ],
                    index_name="j",
                )
            )

        fast, slow = run_both(
            build, lambda r: {"a": r.random((12, 12)), "N": 12}, rng
        )
        assert np.allclose(fast["a"], slow["a"])

    def test_duplicate_targets_last_wins(self, rng):
        """Non-injective scatter: both paths keep the last iteration."""

        def build():
            b = Builder("p")
            n = b.size("N")
            out = b.vector("out", F64, length="N")
            return b.build(
                range_foreach(
                    n, lambda i: [store(out, (i // 2), i.cast(F64))],
                    index_name="i",
                )
            )

        fast, slow = run_both(
            build, lambda r: {"out": np.zeros(32), "N": 32}, rng
        )
        assert np.allclose(fast["out"], slow["out"])


class TestFallbacks:
    def test_cross_iteration_dependency_falls_back(self, rng):
        """prefix-sum-style a[i] = a[i] + a[i-1] must stay sequential."""
        from repro.ir.builder import maximum

        b = Builder("p")
        a = b.vector("a", F64, length="N")
        prog = b.build(
            a.foreach(
                lambda e, i: [store(a, i, e + a[maximum(i - 1, 0)])]
            )
        )
        data = rng.random(20)
        expected = data.copy()
        for i in range(20):
            expected[i] = expected[i] + expected[max(i - 1, 0)]
        work = data.copy()
        run_program(prog, a=work, N=20)
        assert np.allclose(work, expected)

    def test_nested_foreach_outer_falls_back(self, rng):
        """Nested Foreach bodies (ExprStmt) aren't batched at the outer
        level but still compute correctly."""
        b = Builder("p")
        n = b.size("N")
        out = b.matrix("out", F64, rows="N", cols="N")
        prog = b.build(
            range_foreach(
                n,
                lambda i: [
                    ExprStmt(
                        range_foreach(
                            n,
                            lambda j: [
                                store2(out, i, j, i.cast(F64) * 100
                                       + j.cast(F64))
                            ],
                            index_name="j",
                        )
                    )
                ],
                index_name="i",
            )
        )
        grid = np.zeros((8, 8))
        run_program(prog, out=grid, N=8)
        expected = (np.arange(8)[:, None] * 100
                    + np.arange(8)[None, :]).astype(float)
        assert np.allclose(grid, expected)

    def test_bfs_still_correct(self, rng):
        """BFS's neighbor scatter aliases across iterations: the fast path
        must decline and the result stays right."""
        from repro.apps.bfs import BFS

        inp = BFS.workload(rng, N=60, avg_degree=4)
        state = {
            k: (v.copy() if isinstance(v, np.ndarray) else v)
            for k, v in inp.items()
            if k != "graph"
        }
        state["graph"] = inp["graph"]
        run_program(BFS.build(), **state)
        expected = BFS.reference(inp)
        assert np.array_equal(state["cost"], expected["cost"])


class TestSpeedup:
    def test_vectorized_is_materially_faster(self, rng):
        import time

        b = Builder("p")
        xs = b.vector("xs", F64, length="N")
        out = b.vector("out", F64, length="N")
        prog = b.build(xs.foreach(lambda e, i: [store(out, i, e * 2)]))
        n = 200_000
        data = rng.random(n)

        fast_buf = np.zeros(n)
        t0 = time.perf_counter()
        run_program(prog, xs=data, out=fast_buf, N=n)
        fast_time = time.perf_counter() - t0

        slow_buf = np.zeros(n)
        evaluator = Evaluator(prog)
        evaluator._try_vectorized_foreach = lambda *a, **k: False
        t0 = time.perf_counter()
        evaluator.run(xs=data, out=slow_buf, N=n)
        slow_time = time.perf_counter() - t0

        assert np.allclose(fast_buf, slow_buf)
        assert fast_time < slow_time / 5
