"""Vectorized vs per-iteration-loop evaluation: every app must agree.

The evaluator's vectorized NumPy fast path is an optimization over the
reference loop semantics; ``Evaluator(vectorize=False)`` disables it.  The
two paths may legally sum floats in different orders, so the comparison
uses a tight tolerance rather than bit equality.
"""

import copy

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.interp.evaluator import Evaluator


def _small_params(app):
    return {name: max(2, min(value, 8))
            for name, value in app.default_params.items()}


def _agree(a, b):
    if isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b)
        for key in a:
            _agree(a[key], b[key])
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _agree(x, y)
        return
    if a is None:
        assert b is None
        return
    a_arr, b_arr = np.asarray(a), np.asarray(b)
    if a_arr.dtype == object or b_arr.dtype == object:
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _agree(x, y)
        return
    np.testing.assert_allclose(
        a_arr.astype(float), b_arr.astype(float), rtol=1e-9, atol=1e-12
    )


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_vectorized_and_loop_paths_agree(name):
    app = ALL_APPS[name]
    params = _small_params(app)
    program = app.build(**params)
    inputs = app.workload(app.make_rng(7), **params)

    loop_inputs = copy.deepcopy(inputs)
    vec_inputs = copy.deepcopy(inputs)
    loop_result = Evaluator(program, seed=7, vectorize=False).run(**loop_inputs)
    vec_result = Evaluator(program, seed=7, vectorize=True).run(**vec_inputs)

    _agree(loop_result, vec_result)
    # Foreach apps mutate their inputs; the mutations must match too.
    _agree(loop_inputs, vec_inputs)
