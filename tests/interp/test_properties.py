"""Property-based tests: interpreter semantics vs NumPy on random data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.interp import run_program
from repro.ir import Builder, F64, I64

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
float_arrays = arrays(
    np.float64, st.integers(min_value=1, max_value=64), elements=finite_floats
)


@given(data=float_arrays)
@settings(max_examples=40, deadline=None)
def test_sum_reduce_matches_numpy(data):
    b = Builder("sum")
    xs = b.vector("xs", F64, length="N")
    prog = b.build(xs.reduce("+"))
    result = run_program(prog, xs=data, N=len(data))
    assert np.isclose(result, data.sum(), rtol=1e-9, atol=1e-9)


@given(data=float_arrays)
@settings(max_examples=40, deadline=None)
def test_map_then_reduce_equals_fused(data):
    """map(f) . reduce == map_reduce(f) for the interpreter."""
    b1 = Builder("two")
    xs1 = b1.vector("xs", F64, length="N")
    two_step = b1.build(xs1.map(lambda e: e * 2 + 1).reduce("+"))
    b2 = Builder("one")
    xs2 = b2.vector("xs", F64, length="N")
    fused = b2.build(xs2.map_reduce(lambda e: e * 2 + 1))
    a = run_program(two_step, xs=data, N=len(data))
    c = run_program(fused, xs=data, N=len(data))
    assert np.isclose(a, c, rtol=1e-9)


@given(data=float_arrays, threshold=finite_floats)
@settings(max_examples=40, deadline=None)
def test_filter_partition_invariant(data, threshold):
    """filter(p) and filter(not p) partition the input."""
    b1 = Builder("keep")
    xs1 = b1.vector("xs", F64, length="N")
    keep = b1.build(xs1.filter(lambda e: e > threshold))
    b2 = Builder("drop")
    xs2 = b2.vector("xs", F64, length="N")
    drop = b2.build(xs2.filter(lambda e: e <= threshold))
    kept = run_program(keep, xs=data, N=len(data))
    dropped = run_program(drop, xs=data, N=len(data))
    assert len(kept) + len(dropped) == len(data)
    assert np.isclose(
        np.sum(kept) + np.sum(dropped), data.sum(), rtol=1e-9, atol=1e-9
    )


@given(data=arrays(np.float64, st.integers(min_value=1, max_value=48),
                   elements=st.floats(min_value=0, max_value=10)))
@settings(max_examples=40, deadline=None)
def test_groupby_partitions_elements(data):
    b = Builder("g")
    xs = b.vector("xs", F64, length="N")
    prog = b.build(xs.group_by(lambda e: e.cast(I64)))
    groups = run_program(prog, xs=data, N=len(data))
    total = sum(len(v) for v in groups.values())
    assert total == len(data)
    for key, values in groups.items():
        assert np.all(values.astype(np.int64) == key)


@given(data=float_arrays)
@settings(max_examples=40, deadline=None)
def test_zipwith_add_commutes(data):
    b1 = Builder("ab")
    xs1 = b1.vector("xs", F64, length="N")
    ys1 = b1.vector("ys", F64, length="N")
    ab = b1.build(xs1.zip_with(ys1, lambda a, c: a + c))
    b2 = Builder("ba")
    xs2 = b2.vector("xs", F64, length="N")
    ys2 = b2.vector("ys", F64, length="N")
    ba = b2.build(ys2.zip_with(xs2, lambda a, c: a + c))
    other = data[::-1].copy()
    r1 = run_program(ab, xs=data, ys=other, N=len(data))
    r2 = run_program(ba, xs=data, ys=other, N=len(data))
    assert np.allclose(r1, r2)


@given(
    rows=st.integers(min_value=1, max_value=12),
    cols=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_sum_rows_cols_consistency(rows, cols, seed):
    """Total mass is conserved whichever way the matrix is reduced."""
    from tests.conftest import make_sum_cols, make_sum_rows

    rng = np.random.default_rng(seed)
    m = rng.random((rows, cols))
    by_rows = run_program(make_sum_rows(), m=m, R=rows, C=cols)
    by_cols = run_program(make_sum_cols(), m=m, R=rows, C=cols)
    assert np.isclose(np.sum(by_rows), np.sum(by_cols), rtol=1e-9)
    assert np.allclose(by_rows, m.sum(axis=1))
    assert np.allclose(by_cols, m.sum(axis=0))
