"""Pipeline smoke matrix: every registered app through every stage.

For each of the 18 registered applications: the analysis runs, the chosen
mapping is hard-feasible with DOP near the device window, the optimizer
builds a plan, CUDA (kernel + host driver) generates, and the cost model
returns a positive finite time — under both the MultiDim and 1D strategies.
"""

import math

import numpy as np
import pytest

from repro.analysis import analyze_program
from repro.analysis.scoring import hard_feasible
from repro.apps import ALL_APPS
from repro.codegen import compile_program, generate_host_driver
from repro.gpusim import TESLA_K20C, decide_mapping, estimate_kernel_cost

APP_NAMES = sorted(ALL_APPS)


@pytest.mark.parametrize("name", APP_NAMES)
def test_multidim_pipeline(name):
    app = ALL_APPS[name]
    params = dict(app.default_params)
    program = app.build()
    pa = analyze_program(program, **params)

    for ka in pa.kernels:
        decision = decide_mapping(ka, "multidim", TESLA_K20C)
        sizes = ka.level_sizes()
        assert hard_feasible(decision.mapping, ka.constraints, sizes), name
        dop = decision.mapping.dop(sizes)
        total = math.prod(sizes)
        # DOP is bounded by the domain and (modulo rounding and
        # single-shot ControlDOP) by the device window.
        assert dop <= max(total, TESLA_K20C.min_dop * 2), name
        cost = estimate_kernel_cost(
            ka, decision.mapping, TESLA_K20C, pa.env, decision.plan
        )
        assert np.isfinite(cost.total_us) and cost.total_us > 0, name

    module = compile_program(program, "multidim", **params)
    assert module.source.count("__global__") >= len(pa.kernels), name
    host = generate_host_driver(module, params)
    assert "int main()" in host, name


@pytest.mark.parametrize("name", APP_NAMES)
def test_one_d_pipeline(name):
    app = ALL_APPS[name]
    params = dict(app.default_params)
    program = app.build()
    pa = analyze_program(program, **params)
    for ka in pa.kernels:
        decision = decide_mapping(ka, "1d", TESLA_K20C)
        cost = estimate_kernel_cost(
            ka, decision.mapping, TESLA_K20C, pa.env, decision.plan
        )
        assert np.isfinite(cost.total_us) and cost.total_us > 0, name
    module = compile_program(program, "1d", **params)
    assert "__global__" in module.source, name


#: Single-level Filter/GroupBy apps: the analysis honors the paper's hard
#: Span(all)/Split rule for dynamic-output patterns (a scan-based
#: compaction needs it), while the 1D baseline freely launches one thread
#: per element — with our atomic-compaction codegen that over-conservatism
#: costs up to ~1.5x.  A faithful trade-off, so these two get a looser
#: bound.
_DYNAMIC_OUTPUT_APPS = {"outlierFilter", "histogram"}


@pytest.mark.parametrize("name", APP_NAMES)
def test_multidim_never_slower_than_1d_materially(name):
    """The headline claim, across the entire app registry: the analysis
    is never materially worse than ignoring inner parallelism."""
    from repro.gpusim import simulate_program

    app = ALL_APPS[name]
    params = dict(app.default_params)
    program = app.build()
    multidim = simulate_program(
        program, "multidim", TESLA_K20C, **params
    ).total_us
    oned = simulate_program(program, "1d", TESLA_K20C, **params).total_us
    allowance = 2.0 if name in _DYNAMIC_OUTPUT_APPS else 1.10
    assert multidim <= oned * allowance, (name, multidim, oned)
