"""End-to-end iterative algorithm drivers: full eliminations,
factorizations, and traversals validated against textbook references."""

import numpy as np
import pytest

from repro.apps.drivers import (
    bfs_reference,
    lu_reconstruct,
    pathfinder_reference,
    run_bfs,
    run_gaussian_elimination,
    run_lud,
    run_pagerank,
    run_pathfinder,
)


class TestGaussianFull:
    def test_full_elimination_upper_triangular(self, rng):
        n = 10
        a = rng.random((n, n)) + np.eye(n) * n
        result = run_gaussian_elimination(a)
        assert result.iterations == n - 1
        assert np.allclose(np.tril(result.result, -1), 0.0, atol=1e-9)

    def test_preserves_linear_system(self, rng):
        """Elimination preserves the solution of A x = b (applied to the
        augmented matrix)."""
        n = 8
        a = rng.random((n, n)) + np.eye(n) * n
        x_true = rng.random(n)
        b = a @ x_true
        augmented = np.hstack([a, b[:, None], np.zeros((n, 1))])
        square = np.zeros((n + 2, n + 2))
        square[:n, :n + 1] = augmented[:, :n + 1]
        square[np.arange(n, n + 2), np.arange(n, n + 2)] = 1.0
        result = run_gaussian_elimination(square)
        u = result.result[:n, :n]
        c = result.result[:n, n]
        x = np.linalg.solve(u, c)
        assert np.allclose(x, x_true, atol=1e-8)

    def test_simulated_time_accumulates(self, rng):
        a = rng.random((6, 6)) + np.eye(6) * 6
        result = run_gaussian_elimination(a)
        assert result.simulated_us > 0


class TestLudFull:
    def test_factorization_reconstructs(self, rng):
        n = 12
        a = rng.random((n, n)) + np.eye(n) * n
        result = run_lud(a)
        assert np.allclose(lu_reconstruct(result.result), a, atol=1e-8)

    def test_matches_scipy_style_doolittle(self, rng):
        n = 6
        a = rng.random((n, n)) + np.eye(n) * n
        result = run_lud(a)
        u = np.triu(result.result)
        # U's diagonal equals the pivots of unpivoted elimination
        ref = a.copy()
        for t in range(n - 1):
            ref[t + 1:, t] /= ref[t, t]
            ref[t + 1:, t + 1:] -= np.outer(ref[t + 1:, t], ref[t, t + 1:])
        assert np.allclose(result.result, ref, atol=1e-9)


class TestPathfinderFull:
    def test_full_dp_matches_reference(self, rng):
        wall = rng.random((12, 40)) * 10
        result = run_pathfinder(wall)
        assert result.iterations == 11
        assert np.allclose(result.result, pathfinder_reference(wall))

    def test_costs_monotone_in_rows(self, rng):
        wall = np.abs(rng.random((6, 20)))
        result = run_pathfinder(wall)
        # accumulated costs can only grow with nonnegative walls
        assert np.all(result.result >= wall[0].min())


class TestBfsFull:
    def test_levels_match_textbook_bfs(self, rng):
        from repro.apps.bfs import workload

        inputs = workload(rng, N=120, avg_degree=4)
        graph = inputs["graph"]
        result = run_bfs(graph, source=0, n=120)
        expected = bfs_reference(graph, source=0, n=120)
        assert np.array_equal(result.result, expected)

    def test_terminates_on_disconnected_graph(self):
        graph = {
            "offsets": np.array([0, 1, 2, 2], dtype=np.int64),
            "nbrs": np.array([1, 0], dtype=np.int64),
        }
        result = run_bfs(graph, source=0, n=3)
        assert result.result[2] == -1  # unreachable
        assert result.iterations <= 3


class TestPageRankFull:
    def test_converges(self, rng):
        from repro.apps.pagerank import workload

        inputs = workload(rng, N=80, avg_degree=5)
        result = run_pagerank(
            inputs["graph"], n=80, e=inputs["E"], tolerance=1e-12
        )
        assert result.iterations < 200
        # a further iteration changes nothing
        from repro.apps.pagerank import build_pagerank
        from repro.interp import run_program

        again = run_program(
            build_pagerank(),
            graph=inputs["graph"], prev=result.result,
            N=80, E=inputs["E"],
        )
        assert np.allclose(again, result.result, atol=1e-10)

    def test_ranks_positive(self, rng):
        from repro.apps.pagerank import workload

        inputs = workload(rng, N=60, avg_degree=4)
        result = run_pagerank(inputs["graph"], n=60, e=inputs["E"])
        assert np.all(result.result > 0)


class TestHotspotDriver:
    def test_temperatures_approach_steady_state(self, rng):
        from repro.apps.drivers import run_hotspot
        from repro.apps.hotspot import HOTSPOT

        inputs = HOTSPOT.workload(rng, R=20, C=20)
        short = run_hotspot(inputs["temp"], inputs["power"], steps=5)
        long = run_hotspot(inputs["temp"], inputs["power"], steps=50)
        # successive steps change less and less
        one_more = run_hotspot(long.result, inputs["power"], steps=1)
        first_delta = np.abs(
            run_hotspot(inputs["temp"], inputs["power"], steps=1).result
            - inputs["temp"]
        ).max()
        late_delta = np.abs(one_more.result - long.result).max()
        assert late_delta < first_delta

    def test_simulated_time_scales_with_steps(self, rng):
        from repro.apps.drivers import run_hotspot
        from repro.apps.hotspot import HOTSPOT

        inputs = HOTSPOT.workload(rng, R=16, C=16)
        five = run_hotspot(inputs["temp"], inputs["power"], steps=5)
        ten = run_hotspot(inputs["temp"], inputs["power"], steps=10)
        assert ten.simulated_us == pytest.approx(2 * five.simulated_us)
