"""Mapping decisions per app: the analysis must reproduce the paper's
qualitative choices."""

import pytest

from repro.analysis import Dim, Seq, Span, SpanAll, Split, analyze_program
from repro.gpusim import TESLA_K20C, decide_mapping, simulate_program


def multidim_mapping(program, kernel=0, **sizes):
    pa = analyze_program(program, **sizes)
    return decide_mapping(pa.kernel(kernel), "multidim", TESLA_K20C).mapping


class TestSumExamples:
    def test_sum_rows_inner_on_x(self):
        from repro.apps.sums import build_sum_rows

        m = multidim_mapping(build_sum_rows(), R=1024, C=65536)
        assert m.level(1).dim == Dim.X  # coalesce along columns
        assert isinstance(m.level(1).span, (SpanAll, Split))

    def test_sum_cols_outer_on_x(self):
        from repro.apps.sums import build_sum_cols

        m = multidim_mapping(build_sum_cols(), R=65536, C=1024)
        assert m.level(0).dim == Dim.X  # coalesce along the column index

    def test_multidim_time_flat_across_shapes(self):
        """Fig 3: MultiDim time is ~constant for a constant element count."""
        from repro.apps.sums import build_sum_rows

        prog = build_sum_rows()
        times = [
            simulate_program(prog, "multidim", R=r, C=c).total_us
            for r, c in ((65536, 1024), (8192, 8192), (1024, 65536))
        ]
        assert max(times) / min(times) < 1.3


class TestGraphApps:
    def test_pagerank_inner_span_all(self):
        """Launch-dynamic neighbor lists force Span(all) at level 1 — the
        warp-per-node family of mappings."""
        from repro.apps.pagerank import build_pagerank

        m = multidim_mapping(build_pagerank(), N=65536, E=65536 * 16)
        assert isinstance(m.level(1).span, SpanAll)
        assert m.level(1).dim == Dim.X  # nbr reads coalesce along edges

    def test_bfs_inner_span_all(self):
        from repro.apps.bfs import build_bfs_step

        m = multidim_mapping(build_bfs_step(), N=65536, E=65536 * 12)
        assert isinstance(m.level(1).span, SpanAll)


class TestRealWorldMappings:
    def test_qpscd_inner_on_x(self):
        """The random outer pattern cannot coalesce; the sequential inner
        row traversal must ride dimension x (Section VI-E)."""
        from repro.apps.qpscd import build_qpscd

        m = multidim_mapping(build_qpscd(), S=65536, N=65536, C=1024)
        assert m.level(1).dim == Dim.X
        assert m.level(1).block_size % 32 == 0

    def test_msmbuilder_exploits_three_levels(self):
        from repro.apps.msmbuilder import build_msmbuilder

        m = multidim_mapping(build_msmbuilder(), P=2048, K=100, D=100)
        parallel = m.parallel_levels()
        assert len(parallel) == 3
        dims = {m.level(i).dim for i in parallel}
        assert dims == {Dim.X, Dim.Y, Dim.Z}


class TestPerformanceOrdering:
    def test_qpscd_multidim_beats_1d_heavily(self):
        from repro.apps.qpscd import build_qpscd

        prog = build_qpscd()
        params = {"S": 65536, "N": 65536, "C": 1024}
        multidim = simulate_program(prog, "multidim", **params).total_us
        oned = simulate_program(prog, "1d", **params).total_us
        assert oned > 4 * multidim

    def test_msmbuilder_multidim_beats_1d_heavily(self):
        from repro.apps.msmbuilder import build_msmbuilder

        prog = build_msmbuilder()
        params = {"P": 2048, "K": 100, "D": 100}
        multidim = simulate_program(prog, "multidim", **params).total_us
        oned = simulate_program(prog, "1d", **params).total_us
        assert oned > 4 * multidim

    def test_bfs_multidim_beats_manual_1d(self):
        """The paper: Rodinia's BFS only uses top-level parallelism and
        our analysis beats it via load balancing."""
        from repro.apps.bfs import BFS

        params = dict(BFS.default_params)
        prog = BFS.build()
        multidim = simulate_program(prog, "multidim", **params).total_us
        manual = BFS.manual_time_us(TESLA_K20C, **params)
        assert multidim < manual

    def test_gaussian_multidim_beats_manual(self):
        """The manual Gaussian misses a coalescing opportunity."""
        from repro.apps.gaussian import GAUSSIAN

        params = dict(GAUSSIAN.default_params)
        ours = simulate_program(
            GAUSSIAN.build(), "multidim", **params
        ).total_us
        manual = GAUSSIAN.manual_time_us(TESLA_K20C, **params)
        assert ours < manual

    def test_pathfinder_manual_beats_multidim(self):
        """Fused-stencil manual kernels win (Section VI-C)."""
        from repro.apps.pathfinder import PATHFINDER

        params = dict(PATHFINDER.default_params)
        ours = simulate_program(
            PATHFINDER.build(), "multidim", **params
        ).total_us
        manual = PATHFINDER.manual_time_us(TESLA_K20C, **params)
        assert manual < ours

    def test_lud_manual_beats_multidim(self):
        from repro.apps.lud import LUD

        params = dict(LUD.default_params)
        ours = simulate_program(LUD.build(), "multidim", **params).total_us
        manual = LUD.manual_time_us(TESLA_K20C, **params)
        assert manual < ours

    @pytest.mark.parametrize("order", ["R", "C"])
    def test_hotspot_multidim_at_least_matches_fixed(self, order):
        from repro.apps.hotspot import build_hotspot

        prog = build_hotspot(order)
        params = {"R": 2048, "C": 2048}
        base = simulate_program(prog, "multidim", **params).total_us
        for strategy in ("thread-block/thread", "warp-based"):
            other = simulate_program(prog, strategy, **params).total_us
            assert other > base * 0.85  # small model-noise allowance

    def test_column_major_hurts_fixed_strategies_only(self):
        """Fig 13's core claim: (C) variants slow fixed strategies down
        much more than MultiDim."""
        from repro.apps.srad import build_srad

        params = {"R": 2048, "C": 2048}
        multidim_r = simulate_program(
            build_srad("R"), "multidim", **params
        ).total_us
        multidim_c = simulate_program(
            build_srad("C"), "multidim", **params
        ).total_us
        warp_c = simulate_program(
            build_srad("C"), "warp-based", **params
        ).total_us
        # MultiDim adapts: (C) within 2x of (R); warp-based does not.
        assert multidim_c < 2 * multidim_r
        assert warp_c > 3 * multidim_c
