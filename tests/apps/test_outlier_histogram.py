"""Tests for the Filter/GroupBy coverage app."""

import numpy as np
import pytest

from repro.analysis import SpanAll, analyze_program
from repro.apps.outlier_histogram import (
    HISTOGRAM,
    NUM_BUCKETS,
    OUTLIER_FILTER,
    reference_filter,
    reference_histogram,
)
from repro.gpusim import TESLA_K20C, decide_mapping
from repro.interp import run_program


class TestCorrectness:
    def test_filter_matches_reference(self, rng):
        inputs = OUTLIER_FILTER.workload(rng, N=500)
        out = run_program(OUTLIER_FILTER.build(), **inputs)
        assert np.allclose(out, reference_filter(inputs))

    def test_histogram_matches_reference(self, rng):
        inputs = HISTOGRAM.workload(rng, N=500)
        groups = run_program(HISTOGRAM.build(), **inputs)
        expected = reference_histogram(inputs)
        assert set(groups) == set(expected)
        for key in expected:
            assert np.allclose(np.sort(groups[key]),
                               np.sort(expected[key]))

    def test_histogram_keys_in_range(self, rng):
        inputs = HISTOGRAM.workload(rng, N=300)
        groups = run_program(HISTOGRAM.build(), **inputs)
        assert all(0 <= k < NUM_BUCKETS for k in groups)


class TestMapping:
    def test_filter_forces_span_all(self):
        pa = analyze_program(OUTLIER_FILTER.build(), N=1 << 20)
        d = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        from repro.analysis import Split

        assert isinstance(d.mapping.level(0).span, (SpanAll, Split))

    def test_filter_charges_atomics(self):
        pa = analyze_program(OUTLIER_FILTER.build(), N=1 << 20)
        d = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        cost = d.cost(TESLA_K20C, pa.env)
        assert cost.atomic_us > 0

    def test_histogram_charges_atomics(self):
        pa = analyze_program(HISTOGRAM.build(), N=1 << 20)
        d = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        assert d.cost(TESLA_K20C, pa.env).atomic_us > 0

    def test_codegen_emits_atomics(self):
        from repro.codegen import compile_program

        filter_src = compile_program(
            OUTLIER_FILTER.build(), "multidim", N=1 << 20
        ).source
        assert "atomicAdd(out_count" in filter_src
        histo_src = compile_program(
            HISTOGRAM.build(), "multidim", N=1 << 20
        ).source
        assert "atomicAdd(&group_counts" in histo_src
