"""Correctness of every benchmark app: interpreter vs NumPy reference."""

import numpy as np
import pytest

from repro.interp import run_program


class TestSums:
    def test_sum_rows(self, rng):
        from repro.apps.sums import SUM_ROWS

        inp = SUM_ROWS.workload(rng, R=40, C=30)
        out = run_program(SUM_ROWS.build(), **inp)
        assert np.allclose(out, SUM_ROWS.reference(inp))

    def test_sum_cols(self, rng):
        from repro.apps.sums import SUM_COLS

        inp = SUM_COLS.workload(rng, R=40, C=30)
        out = run_program(SUM_COLS.build(), **inp)
        assert np.allclose(out, SUM_COLS.reference(inp))

    def test_sum_weighted_rows(self, rng):
        from repro.apps.sums import SUM_WEIGHTED_ROWS

        inp = SUM_WEIGHTED_ROWS.workload(rng, R=24, C=16)
        out = run_program(SUM_WEIGHTED_ROWS.build(), **inp)
        assert np.allclose(out, SUM_WEIGHTED_ROWS.reference(inp))

    def test_sum_weighted_cols(self, rng):
        from repro.apps.sums import SUM_WEIGHTED_COLS

        inp = SUM_WEIGHTED_COLS.workload(rng, R=24, C=16)
        out = run_program(SUM_WEIGHTED_COLS.build(), **inp)
        assert np.allclose(out, SUM_WEIGHTED_COLS.reference(inp))


class TestPageRank:
    def test_one_iteration(self, rng):
        from repro.apps.pagerank import PAGERANK

        inp = PAGERANK.workload(rng, N=150, avg_degree=6)
        out = run_program(PAGERANK.build(), **inp)
        assert np.allclose(out, PAGERANK.reference(inp))

    def test_ranks_sum_near_one(self, rng):
        from repro.apps.pagerank import PAGERANK

        inp = PAGERANK.workload(rng, N=100, avg_degree=4)
        out = run_program(PAGERANK.build(), **inp)
        # with uniform priors, mass stays near 1 (not exact: dangling mass)
        assert 0.5 < out.sum() < 2.0


class TestRodinia:
    def test_nearest_neighbor(self, rng):
        from repro.apps.nearest_neighbor import NEAREST_NEIGHBOR

        inp = NEAREST_NEIGHBOR.workload(rng, N=200)
        out = run_program(NEAREST_NEIGHBOR.build(), **inp)
        assert np.allclose(out, NEAREST_NEIGHBOR.reference(inp))

    @pytest.mark.parametrize("order", ["R", "C"])
    def test_hotspot(self, rng, order):
        from repro.apps.hotspot import HOTSPOT, reference

        inp = HOTSPOT.workload(rng, R=18, C=22)
        out = run_program(HOTSPOT.build(order=order), **inp)
        assert np.allclose(out, reference(inp, order))

    @pytest.mark.parametrize("order", ["R", "C"])
    def test_srad(self, rng, order):
        from repro.apps.srad import SRAD, reference

        inp = SRAD.workload(rng, R=14, C=17)
        out = run_program(SRAD.build(order=order), **inp)
        assert np.allclose(out, reference(inp, order))

    def test_mandelbrot(self, rng):
        from repro.apps.mandelbrot import MANDELBROT

        inp = MANDELBROT.workload(rng, H=12, W=16)
        out = run_program(MANDELBROT.build(), **inp)
        assert np.allclose(out, MANDELBROT.reference(inp))

    def test_mandelbrot_oriented_variants_agree(self, rng):
        from repro.apps.mandelbrot import (
            MANDELBROT,
            build_mandelbrot_oriented,
        )

        inp = MANDELBROT.workload(rng, H=8, W=10)
        expected = MANDELBROT.reference(inp)
        for order in ("R", "C"):
            img = np.zeros((8, 10))
            run_program(build_mandelbrot_oriented(order), img=img, **inp)
            assert np.allclose(img, expected), order

    @pytest.mark.parametrize("order", ["R", "C"])
    def test_gaussian_step(self, rng, order):
        from repro.apps.gaussian import GAUSSIAN

        inp = GAUSSIAN.workload(rng, N=15, T=3)
        state = {**inp, "a": inp["a"].copy(), "mult": inp["mult"].copy()}
        run_program(GAUSSIAN.build(order=order), **state)
        expected = GAUSSIAN.reference(inp)
        assert np.allclose(state["a"], expected["a"])
        assert np.allclose(state["mult"], expected["mult"])

    def test_gaussian_zeroes_column(self, rng):
        """After a full elimination run, the sub-diagonal is zero."""
        from repro.apps.gaussian import GAUSSIAN

        inp = GAUSSIAN.workload(rng, N=8, T=0)
        a = inp["a"].copy()
        mult = inp["mult"].copy()
        prog = GAUSSIAN.build(order="R")
        for t in range(7):
            run_program(prog, a=a, mult=mult, N=8, T=t)
        assert np.allclose(np.tril(a, -1), 0.0, atol=1e-9)

    def test_pathfinder_step(self, rng):
        from repro.apps.pathfinder import PATHFINDER

        inp = PATHFINDER.workload(rng, R=5, C=60)
        out = run_program(PATHFINDER.build(), **inp)
        assert np.allclose(out, PATHFINDER.reference(inp))

    def test_lud_step(self, rng):
        from repro.apps.lud import LUD

        inp = LUD.workload(rng, N=14, T=4)
        a = inp["a"].copy()
        run_program(LUD.build(), a=a, N=14, T=4)
        assert np.allclose(a, LUD.reference(inp))

    def test_bfs_step(self, rng):
        from repro.apps.bfs import BFS

        inp = BFS.workload(rng, N=80, avg_degree=4)
        state = {
            k: (v.copy() if isinstance(v, np.ndarray) else v)
            for k, v in inp.items()
            if k != "graph"
        }
        state["graph"] = inp["graph"]
        run_program(BFS.build(), **state)
        expected = BFS.reference(inp)
        assert np.array_equal(state["cost"], expected["cost"])
        assert np.array_equal(
            state["next_frontier"], expected["next_frontier"]
        )


class TestRealWorld:
    def test_qpscd(self, rng):
        from repro.apps.qpscd import QPSCD

        inp = QPSCD.workload(rng, S=15, N=40, C=12)
        out = run_program(QPSCD.build(), seed=11, **inp)
        assert np.allclose(out, QPSCD.reference(inp, seed=11))

    def test_msmbuilder(self, rng):
        from repro.apps.msmbuilder import MSMBUILDER

        inp = MSMBUILDER.workload(rng, P=9, K=7, D=5)
        out = run_program(MSMBUILDER.build(), **inp)
        assert np.allclose(out, MSMBUILDER.reference(inp))

    def test_msmbuilder_distances_nonnegative(self, rng):
        from repro.apps.msmbuilder import MSMBUILDER

        inp = MSMBUILDER.workload(rng, P=6, K=5, D=4)
        out = run_program(MSMBUILDER.build(), **inp)
        assert np.all(out >= 0)

    def test_naive_bayes_kernels(self, rng):
        from repro.apps.naive_bayes import (
            NAIVE_BAYES,
            build_spam_counts,
            build_words_per_doc,
        )

        inp = NAIVE_BAYES.workload(rng, DOCS=25, WORDS=18)
        expected = NAIVE_BAYES.reference(inp)
        wpd = run_program(
            build_words_per_doc(), m=inp["m"], DOCS=25, WORDS=18
        )
        spam = run_program(
            build_spam_counts(),
            m=inp["m"], labels=inp["labels"], DOCS=25, WORDS=18,
        )
        assert np.allclose(wpd, expected["words_per_doc"])
        assert np.allclose(spam, expected["spam_counts"])


class TestRegistry:
    def test_all_apps_registered(self):
        from repro.apps import ALL_APPS, RODINIA_APPS

        assert len(ALL_APPS) == 18
        assert len(RODINIA_APPS) == 8

    def test_every_app_builds_and_validates(self):
        from repro.apps import ALL_APPS
        from repro.ir.validate import validate_program

        for app in ALL_APPS.values():
            program = app.build()
            validate_program(program)

    def test_every_app_analyzes(self):
        from repro.apps import ALL_APPS
        from repro.analysis import analyze_program

        for app in ALL_APPS.values():
            pa = analyze_program(app.build(), **{
                k: v for k, v in app.default_params.items()
            })
            assert len(pa) >= 1


class TestSradFullIteration:
    """SRAD's two phases composed: coefficients, then diffusion update."""

    @pytest.mark.parametrize("order", ["R", "C"])
    def test_update_kernel(self, rng, order):
        from repro.apps.srad import (
            SRAD,
            build_srad_update,
            reference_update,
        )
        from repro.interp import run_program

        base = SRAD.workload(rng, R=13, C=15)
        coeff = rng.random((13, 15))
        inputs = {**base, "coeff": coeff, "lam": 0.5}
        out = run_program(build_srad_update(order=order), **inputs)
        assert np.allclose(out, reference_update(inputs, order))

    def test_two_phase_iteration_smooths(self, rng):
        """A full coefficient+update step reduces image variance
        (anisotropic diffusion smooths speckle)."""
        from repro.apps.srad import (
            SRAD,
            build_srad,
            build_srad_update,
        )
        from repro.interp import run_program

        inputs = SRAD.workload(rng, R=24, C=24)
        img = inputs["img"]
        for _ in range(3):
            coeff = run_program(build_srad("R"), img=img, R=24, C=24)
            img = run_program(
                build_srad_update("R"),
                img=img, coeff=coeff, lam=0.25, R=24, C=24,
            )
        assert img.var() < inputs["img"].var()
