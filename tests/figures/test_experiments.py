"""Tests for the experiment harness: every figure regenerates and its
qualitative claims hold."""

import pytest

from repro.figures import EXPERIMENTS, run_all, run_experiment
from repro.figures.tables import render_table


@pytest.fixture(scope="module")
def results():
    """Run every experiment once per test module."""
    return {eid: run_experiment(eid) for eid in EXPERIMENTS}


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2",
            "fig3", "fig7", "fig12", "fig13", "fig14", "fig16", "fig17",
            "passorder",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_render(self, results):
        text = results["fig3"].render()
        assert "Figure 3" in text
        assert "sumCols" in text


class TestFig3:
    def test_multidim_time_constant(self, results):
        times = results["fig3"].column_values("multidim_ms")
        assert max(times) / min(times) < 1.3

    def test_one_d_worst_on_skew(self, results):
        rows = {
            (r["kernel"], r["shape"]): r for r in results["fig3"].rows
        }
        # 1D collapses on the shapes with a narrow outer level / strided
        # inner access
        assert rows[("sumCols", "[64K,1K]")]["1d"] > 5
        assert rows[("sumRows", "[1K,64K]")]["1d"] > 5
        # but is fine when the outer level is wide and coalesced
        assert rows[("sumCols", "[1K,64K]")]["1d"] < 2

    def test_fixed_2d_bad_on_sum_cols(self, results):
        for row in results["fig3"].rows:
            if row["kernel"] == "sumCols":
                assert row["thread-block/thread"] > 5
                assert row["warp-based"] > 5

    def test_warp_good_on_sum_rows(self, results):
        for row in results["fig3"].rows:
            if row["kernel"] == "sumRows":
                assert row["warp-based"] < 1.5

    def test_block_overhead_on_64k_outer(self, results):
        rows = {(r["kernel"], r["shape"]): r for r in results["fig3"].rows}
        assert rows[("sumRows", "[64K,1K]")]["thread-block/thread"] > 1.5


class TestFig7:
    def test_dop_formulas_hold(self, results):
        for row in results["fig7"].rows:
            assert row["dop"] == row["expected_dop"], row


class TestFig12:
    def test_all_eight_apps_present(self, results):
        assert len(results["fig12"].rows) == 8

    def test_winners_match_paper(self, results):
        rows = {r["app"]: r for r in results["fig12"].rows}
        # we beat manual where the paper says so
        assert rows["gaussian"]["multidim"] < 1.0
        assert rows["bfs"]["multidim"] < 1.0
        # manual wins where the paper says so (fused stencils)
        assert rows["pathfinder"]["multidim"] > 1.5
        assert rows["lud"]["multidim"] > 1.5
        # comparable cases stay within ~25% (paper: 24% average gap)
        for app in ("hotspot", "mandelbrot", "srad", "nearestNeighbor"):
            assert rows[app]["multidim"] < 1.3

    def test_one_d_never_beats_multidim_badly(self, results):
        for row in results["fig12"].rows:
            assert row["1d"] >= row["multidim"] * 0.95

    def test_one_d_collapses_on_2d_apps(self, results):
        rows = {r["app"]: r for r in results["fig12"].rows}
        for app in ("hotspot", "mandelbrot", "srad", "lud"):
            assert rows[app]["1d"] > 3


class TestFig13:
    def test_column_major_hurts_fixed(self, results):
        for row in results["fig13"].rows:
            if row["order"] == "C":
                assert row["thread-block/thread"] > 1.5
                assert row["warp-based"] > 1.5

    def test_row_major_close_to_multidim(self, results):
        for row in results["fig13"].rows:
            if row["order"] == "R":
                assert row["thread-block/thread"] < 1.7
                assert row["warp-based"] < 1.7

    def test_slowdown_band_matches_paper(self, results):
        """Paper: (C) slowdowns fall between 1.5x and 9.6x."""
        worst = max(
            max(r["thread-block/thread"], r["warp-based"])
            for r in results["fig13"].rows
            if r["order"] == "C"
        )
        assert 3 < worst < 15


class TestFig14:
    def test_multidim_beats_cpu_everywhere(self, results):
        for row in results["fig14"].rows:
            if row["app"] in ("qpscd", "msmbuilder", "naiveBayes"):
                assert row["multidim"] < 1.0

    def test_qpscd_1d_worse_than_cpu(self, results):
        rows = {r["app"]: r for r in results["fig14"].rows}
        assert rows["qpscd"]["1d"] > 1.0

    def test_multidim_beats_1d(self, results):
        for row in results["fig14"].rows:
            if row["1d"] != "":
                assert row["multidim"] < row["1d"]

    def test_transfer_narrows_gap(self, results):
        rows = {r["app"]: r for r in results["fig14"].rows}
        assert (
            rows["naiveBayes+transfer"]["multidim"]
            > rows["naiveBayes"]["multidim"]
        )
        # but stays better than the CPU (Section VI-E: 15% better)
        assert rows["naiveBayes+transfer"]["multidim"] < 1.0


class TestFig16:
    def test_malloc_order_of_magnitude(self, results):
        rows = {r["kernel"]: r for r in results["fig16"].rows}
        assert 10 < rows["sumWeightedRows"]["malloc"] < 40
        assert 10 < rows["sumWeightedCols"]["malloc"] < 40

    def test_layout_matters_only_for_cols(self, results):
        rows = {r["kernel"]: r for r in results["fig16"].rows}
        assert rows["sumWeightedRows"]["prealloc_only"] < 1.2
        assert rows["sumWeightedCols"]["prealloc_only"] > 3


class TestFig17:
    def test_chosen_mapping_in_best_region(self, results):
        notes = results["fig17"].notes
        # the note records chosen-vs-best; parse the factor
        import re

        match = re.search(r"chosen mapping time ([0-9.]+)x", notes)
        assert match and float(match.group(1)) < 1.5

    def test_warp_based_in_slow_region(self, results):
        import re

        match = re.search(r"warp-based ([0-9.]+)x", results["fig17"].notes)
        assert match and float(match.group(1)) > 2.0

    def test_scores_normalized(self, results):
        scores = results["fig17"].column_values("score")
        assert all(0 <= s <= 1 for s in scores)

    def test_high_score_implies_good_performance(self, results):
        """Region A: top-scoring mappings perform near-best.  (The
        converse — false negatives, region C — is allowed.)"""
        rows = results["fig17"].rows
        top = [r for r in rows if r["score"] > 0.9]
        assert top, "expected some top-scored samples"
        assert all(r["time_norm"] < 3 for r in top)


class TestRunAll:
    def test_run_all_covers_registry(self):
        all_results = run_all()
        assert len(all_results) == len(EXPERIMENTS)


class TestRenderTable:
    def test_alignment_and_notes(self):
        text = render_table(
            "T", ["a", "b"], [{"a": 1, "b": 2.5}], notes="hello"
        )
        assert "T\n=" in text
        assert "hello" in text

    def test_float_formatting(self):
        text = render_table("T", ["x"], [{"x": 1234.5}])
        assert "1,234" in text or "1234" in text


class TestCsvExport:
    def test_to_csv_round_trips(self, results):
        import csv
        import io

        text = results["fig3"].to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(results["fig3"].rows)
        assert rows[0]["kernel"] == "sumCols"

    def test_cli_csv_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["figures", "fig7", "--csv-dir", str(tmp_path)]
        ) == 0
        assert (tmp_path / "fig7.csv").exists()


class TestTables:
    def test_table1_all_patterns_ok(self, results):
        rows = results["table1"].rows
        assert {r["pattern"] for r in rows} == {
            "map", "zipWith", "foreach", "filter", "reduce", "groupBy"
        }
        assert all(r["cuda"] == "ok" for r in rows)

    def test_table2_covers_taxonomy(self, results):
        rows = results["table2"].rows
        cells = {(r["weight"], r["scope"]) for r in rows}
        assert cells == {
            ("Hard", "Local"), ("Hard", "Global"),
            ("Soft", "Local"), ("Soft", "Global"),
        }


class TestPassOrder:
    def test_finds_cost_sensitive_nest(self, results):
        """Acceptance bar: at least one nest where a non-default
        ordering/subset changes the modeled cost."""
        rows = results["passorder"].rows
        assert any(
            row["improvement_pct"] > 0 or row["worst_delta_us"] != 0
            for row in rows
        )

    def test_control_dop_wins_on_tiny_nest(self, results):
        by_case = {
            (row["app"], row["sizes"]): row
            for row in results["passorder"].rows
        }
        tiny = by_case[("sumRows", "R=8 C=8")]
        assert "control_dop" in tiny["best_order"]
        assert tiny["improvement_pct"] > 0

    def test_ordering_dependency_is_expensive(self, results):
        """prealloc without layout forfeits the Fig 16 column win."""
        by_app = {row["app"]: row for row in results["passorder"].rows}
        assert by_app["sumWeightedCols"]["worst_delta_us"] > 0
        assert by_app["sumWeightedCols"]["best_order"] == (
            "prealloc -> layout"
        )
