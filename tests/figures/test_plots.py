"""Tests for the terminal bar-chart rendering."""

import pytest

from repro.figures import run_experiment
from repro.figures.plots import render_bars, render_experiment_bars


@pytest.fixture(scope="module")
def fig12():
    return run_experiment("fig12")


class TestBars:
    def test_bars_scale_monotonically(self, fig12):
        text = render_bars(fig12, ["multidim", "1d"], width=20)
        lines = [l for l in text.split("\n") if "1d" in l or "multidim" in l]
        assert lines
        # the longest bar belongs to the largest value
        def bar_len(line):
            return line.count("█")

        def value(line):
            return float(line.split()[1])

        pairs = [(value(l), bar_len(l)) for l in lines]
        ordered = sorted(pairs)
        lengths = [b for _, b in ordered]
        assert lengths == sorted(lengths)

    def test_registered_experiments_plot(self):
        for eid in ("fig3", "fig16"):
            text = render_experiment_bars(run_experiment(eid))
            assert "█" in text

    def test_unregistered_falls_back_to_table(self):
        text = render_experiment_bars(run_experiment("fig7"))
        assert "dop" in text

    def test_cli_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["figures", "fig16", "--plot"]) == 0
        assert "█" in capsys.readouterr().out
