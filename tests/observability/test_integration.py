"""Pipeline-wide observability: spans, metrics, and report embedding.

These tests drive the real session pipeline under ``capture`` and assert
the tracing contract the CLI relies on: broad stage coverage, a valid
Chrome export, metrics that match the search's own telemetry, and —
crucially — that instrumentation never changes search results.
"""

import pytest

from repro.analysis.cache import clear_caches
from repro.analysis.constraints import ConstraintSet
from repro.analysis.search import search_mapping
from repro.errors import ReproError
from repro.observability import capture, configure, get_tracer, get_metrics
from repro.observability import validate_chrome_trace
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultPlan, inject_faults
from repro.runtime.session import GpuSession

#: The acceptance bar: a traced compile+estimate+run covers at least
#: this many distinct pipeline stages.
MIN_DISTINCT_STAGES = 6


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestPipelineCoverage:
    def test_traced_compile_covers_pipeline_stages(self, sum_cols_program):
        import numpy as np

        with capture() as obs:
            compiled = GpuSession().compile(sum_cols_program, R=32, C=32)
            compiled.estimate_cost()
            compiled.run(m=np.ones((32, 32)), R=32, C=32)
        stages = obs.tracer.span_names()
        expected = {
            "analysis", "constraints", "search", "control_dop",
            "optimize", "codegen", "simulate", "interpret", "compile",
        }
        assert expected <= stages
        assert len(stages) >= MIN_DISTINCT_STAGES
        assert validate_chrome_trace(obs.tracer.to_chrome()) == []

    def test_metrics_capture_pipeline_counters(self, sum_cols_program):
        with capture() as obs:
            compiled = GpuSession().compile(sum_cols_program, R=32, C=32)
            compiled.estimate_cost()
        snap = obs.metrics.to_dict()
        counters = snap["counters"]
        assert counters["compile.runs"] == 1
        assert counters["search.runs"] >= 1
        assert counters["simulate.kernels"] >= 1
        assert counters["cache.search.misses"] >= 1
        # Constraint taxonomy counts (Hard/Soft x scope) are recorded.
        assert any(k.startswith("constraints.hard.") for k in counters)
        assert any(k.startswith("constraints.soft.") for k in counters)
        # Cost-model component sums flow into cost.* counters.
        assert counters["cost.launch_us"] > 0
        # Per-stage wall time lands in stage_ms.* histograms.
        assert snap["histograms"]["stage_ms.compile"]["count"] == 1

    def test_cache_hit_counted_on_second_search(self, sum_cols_program):
        with capture() as obs:
            GpuSession().compile(sum_cols_program, R=32, C=32)
            GpuSession().compile(sum_cols_program, R=32, C=32)
        counters = obs.metrics.to_dict()["counters"]
        assert counters["cache.search.hits"] >= 1
        assert counters["search.cache.served"] >= 1


class TestSearchEquivalenceUnderTracing:
    def test_tracing_does_not_change_the_result(self):
        cset = ConstraintSet()
        sizes = (64, 64)
        baseline = search_mapping(2, cset, sizes, use_cache=False)
        with capture(detail=True):
            traced = search_mapping(2, cset, sizes, use_cache=False)
        assert traced.mapping == baseline.mapping
        assert traced.score == baseline.score
        assert traced.candidates_scored == baseline.candidates_scored
        assert traced.nodes_pruned == baseline.nodes_pruned

    def test_detail_mode_emits_search_events(self):
        cset = ConstraintSet()
        with capture(detail=True) as obs:
            search_mapping(2, cset, (64, 64), use_cache=False)
        names = {e["name"] for e in obs.tracer.events() if e["ph"] == "i"}
        assert "search.visit" in names
        # Compact mode keeps the high-volume instants out of the trace.
        with capture(detail=False) as obs:
            search_mapping(2, cset, (64, 64), use_cache=False)
        names = {e["name"] for e in obs.tracer.events() if e["ph"] == "i"}
        assert "search.visit" not in names


class TestElapsedReporting:
    def test_budget_exhausted_search_reports_true_elapsed_once(self):
        """Regression: the budget-exhausted path used to leave elapsed_ms
        at the fallback constructor's value instead of the measured wall
        time of the attempt."""
        cset = ConstraintSet()
        result = search_mapping(
            3, cset, (32, 32, 32), use_cache=False,
            budget=Budget(max_nodes=50),
        )
        assert result.degraded
        assert result.elapsed_ms > 0.0
        assert result.telemetry()["elapsed_ms"] == result.elapsed_ms

    def test_cache_hit_preserves_original_elapsed(self, sum_cols_program):
        first = search_mapping(2, ConstraintSet(), (64, 64))
        second = search_mapping(2, ConstraintSet(), (64, 64))
        assert second.cache_hit
        assert second.elapsed_ms == first.elapsed_ms

    def test_telemetry_is_single_source_for_explain(self):
        from repro.analysis.explain import render_telemetry

        result = search_mapping(2, ConstraintSet(), (32, 32), use_cache=False)
        lines = "\n".join(render_telemetry(result))
        data = result.telemetry()
        assert f"strategy: {data['strategy']}" in lines
        assert str(data["candidates_scored"]) in lines


class TestFailureReportTraceEmbed:
    def test_report_embeds_trace_tail_when_tracing(self, sum_rows_program):
        plan = FaultPlan.single("codegen", kind="exception")
        with capture():
            with inject_faults(plan):
                with pytest.raises(ReproError) as info:
                    GpuSession().compile(sum_rows_program, R=32, C=32)
        report = info.value.failure_report
        assert report.trace
        assert any(e.get("name") == "search" for e in report.trace)
        # The embedded tail survives serialization round trips.
        from repro.resilience.reports import FailureReport

        clone = FailureReport.from_dict(report.to_dict())
        assert clone.trace == report.trace

    def test_report_omits_trace_when_disabled(self, sum_rows_program):
        plan = FaultPlan.single("codegen", kind="exception")
        with inject_faults(plan):
            with pytest.raises(ReproError) as info:
                GpuSession().compile(sum_rows_program, R=32, C=32)
        report = info.value.failure_report
        assert report.trace is None
        assert "trace" not in report.to_dict()


class TestBackendSwitching:
    def test_disabled_by_default(self):
        assert get_tracer().enabled is False
        assert get_metrics().enabled is False

    def test_capture_restores_previous_backends(self):
        before_tracer, before_metrics = get_tracer(), get_metrics()
        with pytest.raises(RuntimeError):
            with capture():
                assert get_tracer().enabled
                assert get_metrics().enabled
                raise RuntimeError("escape")
        assert get_tracer() is before_tracer
        assert get_metrics() is before_metrics

    def test_configure_installs_and_removes(self):
        try:
            configure(tracing=True, metrics=True, detail=True)
            assert get_tracer().enabled and get_tracer().detail
            assert get_metrics().enabled
        finally:
            configure(tracing=False, metrics=False)
        assert not get_tracer().enabled
        assert not get_metrics().enabled
