"""Unit tests for fleet-wide metrics snapshot merging."""

import pytest

from repro.observability.aggregate import (
    histogram_quantile,
    merge_histograms,
    merge_snapshots,
)
from repro.observability.metrics import MetricsRegistry


def _snapshot(**observe_ms):
    """One registry snapshot with the given request latencies."""
    registry = MetricsRegistry()
    for name, values in observe_ms.items():
        for value in values:
            registry.histogram(name).observe(value)
    return registry.to_dict()


class TestMergeHistograms:
    def test_counts_sum_element_wise(self):
        a = {"buckets": [1, 5], "counts": [2, 1, 0], "sum": 4.0, "count": 3}
        b = {"buckets": [1, 5], "counts": [1, 0, 2], "sum": 21.0, "count": 3}
        assert merge_histograms(a, b)
        assert a["counts"] == [3, 1, 2]
        assert a["sum"] == 25.0
        assert a["count"] == 6

    def test_bounds_skew_refused(self):
        a = {"buckets": [1, 5], "counts": [0, 0, 0], "sum": 0.0, "count": 0}
        b = {"buckets": [1, 10], "counts": [0, 0, 0], "sum": 0.0, "count": 0}
        assert not merge_histograms(a, b)
        assert a["counts"] == [0, 0, 0]  # untouched on refusal

    def test_exemplars_union_last_wins(self):
        a = {
            "buckets": [1], "counts": [1, 0], "sum": 0.5, "count": 1,
            "exemplars": {"0": "trace-a", "1": "old"},
        }
        b = {
            "buckets": [1], "counts": [0, 1], "sum": 2.0, "count": 1,
            "exemplars": {"1": "trace-b"},
        }
        assert merge_histograms(a, b)
        assert a["exemplars"] == {"0": "trace-a", "1": "trace-b"}


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        r1 = MetricsRegistry()
        r1.counter("fleet.requests").inc(3)
        r1.gauge("service.queue.depth").set(2)
        r2 = MetricsRegistry()
        r2.counter("fleet.requests").inc(4)
        r2.gauge("service.queue.depth").set(5)
        merged = merge_snapshots({"a": r1.to_dict(), "b": r2.to_dict()})
        assert merged["counters"]["fleet.requests"] == 7
        assert merged["gauges"]["service.queue.depth"] == 7
        assert merged["sources"] == ["a", "b"]
        assert merged["missing"] == []

    def test_merged_histogram_equals_single_observer(self):
        # The merge contract: the fleet-wide histogram is exactly what
        # one process observing every stream would have recorded.
        split = merge_snapshots({
            "a": _snapshot(**{"service.request_ms": [1.0, 30.0]}),
            "b": _snapshot(**{"service.request_ms": [400.0]}),
        })["histograms"]["service.request_ms"]
        single = _snapshot(
            **{"service.request_ms": [1.0, 30.0, 400.0]}
        )["histograms"]["service.request_ms"]
        assert split["counts"] == single["counts"]
        assert split["count"] == single["count"]
        assert split["sum"] == pytest.approx(single["sum"])

    def test_none_snapshot_listed_missing(self):
        merged = merge_snapshots({
            "up": _snapshot(**{"m": [1.0]}),
            "down": None,
        })
        assert merged["sources"] == ["up"]
        assert merged["missing"] == ["down"]
        assert "m" in merged["histograms"]

    def test_bounds_skew_drops_histogram_and_reports(self):
        merged = merge_snapshots({
            "a": {
                "counters": {}, "gauges": {},
                "histograms": {
                    "h": {"buckets": [1], "counts": [0, 1],
                          "sum": 2.0, "count": 1},
                },
            },
            "b": {
                "counters": {}, "gauges": {},
                "histograms": {
                    "h": {"buckets": [2], "counts": [1, 0],
                          "sum": 1.0, "count": 1},
                },
            },
        })
        assert merged["unmerged"] == ["h"]
        assert "h" not in merged["histograms"]

    def test_merge_does_not_mutate_inputs(self):
        snap = _snapshot(**{"m": [1.0]})
        before = [list(snap["histograms"]["m"]["counts"])]
        merge_snapshots({"a": snap, "b": _snapshot(**{"m": [2.0]})})
        assert [list(snap["histograms"]["m"]["counts"])] == before


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert histogram_quantile(
            {"buckets": [1], "counts": [0, 0], "count": 0}, 0.99
        ) == 0.0

    def test_quantile_returns_bucket_upper_bound(self):
        data = {
            "buckets": [10, 100, 1000],
            "counts": [90, 9, 1, 0],
            "count": 100,
        }
        assert histogram_quantile(data, 0.5) == 10.0
        assert histogram_quantile(data, 0.95) == 100.0
        assert histogram_quantile(data, 0.999) == 1000.0
