"""Mapping-provenance records: construction, serialization, rendering."""

import pytest

from repro.errors import ReproError
from repro.observability.provenance import (
    PROVENANCE_VERSION,
    CompileProvenance,
    KernelProvenance,
    VerdictRecord,
    build_provenance,
    load_provenance,
)
from repro.resilience.budget import Budget
from repro.runtime.session import GpuSession


@pytest.fixture
def compiled(sum_cols_program):
    return GpuSession().compile(sum_cols_program, R=128, C=128)


class TestBuildProvenance:
    def test_captures_compile_identity(self, compiled):
        prov = build_provenance(compiled)
        assert prov.program == "sumCols"
        assert prov.device == compiled.device.name
        assert prov.strategy == "multidim"
        assert prov.sizes == {"R": 128, "C": 128}
        assert len(prov.kernels) == len(compiled.decisions)

    def test_kernel_record_matches_decision(self, compiled):
        kernel = build_provenance(compiled).kernels[0]
        assert kernel.mapping == str(compiled.decisions[0].mapping)
        assert kernel.search is not None
        assert kernel.search["strategy"] in (
            "vectorized", "pruned", "exhaustive", "reference-fallback"
        )
        assert kernel.verdicts
        # The chosen mapping satisfies every hard constraint.
        assert all(v.satisfied for v in kernel.verdicts if v.hard)

    def test_candidates_ranked_with_deltas(self, compiled):
        kernel = build_provenance(compiled, top_k=4).kernels[0]
        assert 1 <= len(kernel.candidates) <= 4
        assert [c.rank for c in kernel.candidates] == list(
            range(1, len(kernel.candidates) + 1)
        )
        assert kernel.candidates[0].score_delta == 0.0
        scores = [c.score for c in kernel.candidates]
        assert scores == sorted(scores, reverse=True)
        for cand in kernel.candidates:
            assert cand.score_delta == pytest.approx(
                kernel.candidates[0].score - cand.score
            )
            assert cand.verdicts

    def test_session_provenance_is_lazy_and_cached(self, compiled):
        assert compiled._provenance is None
        prov = compiled.provenance()
        assert compiled.provenance() is prov

    def test_fixed_strategy_notes_no_search(self, sum_rows_program):
        compiled = GpuSession(strategy="1d").compile(
            sum_rows_program, R=64, C=64
        )
        kernel = build_provenance(compiled).kernels[0]
        assert "fixed strategy" in kernel.note
        assert kernel.candidates == []

    def test_degraded_search_notes_fallback(self, sum_cols_program):
        from repro.analysis.cache import clear_caches

        # A warm memo would serve the full-search answer and bypass the
        # budget entirely, so start this compile from a cold cache.
        clear_caches()
        compiled = GpuSession(budget=Budget(max_nodes=3)).compile(
            sum_cols_program, R=128, C=128
        )
        assert compiled.degraded
        prov = build_provenance(compiled)
        assert prov.degradations
        kernel = prov.kernels[0]
        assert "fallback" in kernel.note
        assert kernel.candidates == []


class TestSerialization:
    def test_artifact_round_trips(self, compiled, tmp_path):
        prov = build_provenance(compiled)
        path = prov.write(str(tmp_path / "prov.json"))
        loaded = load_provenance(path)
        assert loaded.to_dict() == prov.to_dict()

    def test_version_checked_on_load(self):
        data = CompileProvenance(program="p", device="d", strategy="s").to_dict()
        assert data["version"] == PROVENANCE_VERSION
        data["version"] = PROVENANCE_VERSION + 1
        with pytest.raises(ReproError, match="version"):
            CompileProvenance.from_dict(data)

    def test_kernel_record_round_trips(self):
        kernel = KernelProvenance(
            index=0, depth=2, level_sizes=[8, 8],
            mapping="L0[dimx, 32, span(1)]", score=1.5, max_score=2.0,
            dop=64, search={"strategy": "pruned"},
            verdicts=[VerdictRecord("c", True, "local", True)],
        )
        assert KernelProvenance.from_dict(kernel.to_dict()) == kernel


class TestRendering:
    def test_render_explains_the_winner(self, compiled):
        text = build_provenance(compiled).render()
        assert "Mapping provenance: sumCols" in text
        assert "winner:" in text
        assert "constraints under the winner:" in text
        assert "candidates:" in text
        assert "[hard/local]" in text

    def test_verdict_render_marks(self):
        ok = VerdictRecord("fine", hard=False, scope="local", satisfied=True,
                           weight=2.0)
        miss = VerdictRecord("lost", hard=False, scope="global",
                             satisfied=False, weight=1.0)
        violated = VerdictRecord("broken", hard=True, scope="local",
                                 satisfied=False)
        assert "ok" in ok.render() and "w=2" in ok.render()
        assert "MISS" in miss.render()
        assert "VIOLATED" in violated.render()
