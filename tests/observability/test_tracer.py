"""Unit tests for the span tracer and its Chrome trace-event export."""

import json

import pytest

from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("search", levels=2) as span:
            span.set(candidates=7)
        events = tracer.events()
        assert len(events) == 1
        event = events[0]
        assert event["ph"] == "X"
        assert event["name"] == "search"
        assert event["dur"] >= 0
        assert event["args"] == {"levels": 2, "candidates": 7}

    def test_nested_spans_both_recorded(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("search"):
                pass
        # Inner spans close (and record) first.
        assert [e["name"] for e in tracer.events()] == ["search", "compile"]
        assert tracer.span_names() == {"compile", "search"}

    def test_span_records_error_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("search"):
                raise ValueError("boom")
        event = tracer.events()[0]
        assert event["args"]["error"] == "ValueError"

    def test_span_exit_does_not_swallow_exception(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("s"):
                raise KeyError("x")

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("search.prune", kind="score-bound")
        event = tracer.events()[0]
        assert event["ph"] == "i"
        assert event["args"] == {"kind": "score-bound"}
        # Instants are not spans, so they don't count as stage coverage.
        assert tracer.span_names() == set()

    def test_timestamps_are_monotone(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.events()
        assert b["ts"] >= a["ts"]

    def test_tail_returns_most_recent(self):
        tracer = Tracer()
        for i in range(10):
            tracer.instant(f"e{i}")
        tail = tracer.tail(3)
        assert [e["name"] for e in tail] == ["e7", "e8", "e9"]


class TestChromeExport:
    def test_document_shape(self):
        tracer = Tracer()
        with tracer.span("compile"):
            tracer.instant("mark")
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["M", "i", "X"]

    def test_validates_clean(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_write_round_trips_as_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile", program="p"):
            pass
        path = tracer.write(str(tmp_path / "trace.json"))
        with open(path) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []
        names = [e["name"] for e in doc["traceEvents"]]
        assert "compile" in names

    @pytest.mark.parametrize(
        "document,expected",
        [
            ({}, "traceEvents is not a list"),
            ({"traceEvents": [{"ph": "B"}]}, "unsupported phase"),
            ({"traceEvents": [{"ph": "X", "name": "s", "ts": -1, "dur": 1}]},
             "bad ts"),
            ({"traceEvents": [{"ph": "X", "name": "s", "ts": 0}]}, "bad dur"),
            ({"traceEvents": [{"ph": "i", "ts": 0}]}, "no name"),
        ],
    )
    def test_validation_catches_malformed(self, document, expected):
        problems = validate_chrome_trace(document)
        assert problems and any(expected in p for p in problems)


class TestNullBackend:
    def test_span_is_shared_singleton(self):
        # The zero-overhead guarantee: a disabled span never allocates.
        assert NULL_TRACER.span("anything", key="value") is NULL_SPAN
        assert NullTracer().span("other") is NULL_SPAN

    def test_null_span_accepts_full_api(self):
        with NULL_TRACER.span("s") as span:
            span.set(a=1)
            span.event("mark", b=2)
        NULL_TRACER.instant("i")
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.tail() == []
        assert NULL_TRACER.span_names() == set()

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("s"):
                raise RuntimeError("must propagate")

    def test_disabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.detail is False
        assert Tracer().enabled is True
