"""Unit tests for the span tracer and its Chrome trace-event export."""

import json

import pytest

from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("search", levels=2) as span:
            span.set(candidates=7)
        events = tracer.events()
        assert len(events) == 1
        event = events[0]
        assert event["ph"] == "X"
        assert event["name"] == "search"
        assert event["dur"] >= 0
        assert event["args"] == {"levels": 2, "candidates": 7}

    def test_nested_spans_both_recorded(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("search"):
                pass
        # Inner spans close (and record) first.
        assert [e["name"] for e in tracer.events()] == ["search", "compile"]
        assert tracer.span_names() == {"compile", "search"}

    def test_span_records_error_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("search"):
                raise ValueError("boom")
        event = tracer.events()[0]
        assert event["args"]["error"] == "ValueError"

    def test_span_exit_does_not_swallow_exception(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("s"):
                raise KeyError("x")

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("search.prune", kind="score-bound")
        event = tracer.events()[0]
        assert event["ph"] == "i"
        assert event["args"] == {"kind": "score-bound"}
        # Instants are not spans, so they don't count as stage coverage.
        assert tracer.span_names() == set()

    def test_timestamps_are_monotone(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.events()
        assert b["ts"] >= a["ts"]

    def test_tail_returns_most_recent(self):
        tracer = Tracer()
        for i in range(10):
            tracer.instant(f"e{i}")
        tail = tracer.tail(3)
        assert [e["name"] for e in tail] == ["e7", "e8", "e9"]


class TestChromeExport:
    def test_document_shape(self):
        tracer = Tracer()
        with tracer.span("compile"):
            tracer.instant("mark")
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["M", "i", "X"]

    def test_validates_clean(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_write_round_trips_as_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile", program="p"):
            pass
        path = tracer.write(str(tmp_path / "trace.json"))
        with open(path) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []
        names = [e["name"] for e in doc["traceEvents"]]
        assert "compile" in names

    @pytest.mark.parametrize(
        "document,expected",
        [
            ({}, "traceEvents is not a list"),
            ({"traceEvents": [{"ph": "B"}]}, "unsupported phase"),
            ({"traceEvents": [{"ph": "X", "name": "s", "ts": -1, "dur": 1}]},
             "bad ts"),
            ({"traceEvents": [{"ph": "X", "name": "s", "ts": 0}]}, "bad dur"),
            ({"traceEvents": [{"ph": "i", "ts": 0}]}, "no name"),
        ],
    )
    def test_validation_catches_malformed(self, document, expected):
        problems = validate_chrome_trace(document)
        assert problems and any(expected in p for p in problems)


class TestNullBackend:
    def test_span_is_shared_singleton(self):
        # The zero-overhead guarantee: a disabled span never allocates.
        assert NULL_TRACER.span("anything", key="value") is NULL_SPAN
        assert NullTracer().span("other") is NULL_SPAN

    def test_null_span_accepts_full_api(self):
        with NULL_TRACER.span("s") as span:
            span.set(a=1)
            span.event("mark", b=2)
        NULL_TRACER.instant("i")
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.tail() == []
        assert NULL_TRACER.span_names() == set()

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("s"):
                raise RuntimeError("must propagate")

    def test_disabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.detail is False
        assert Tracer().enabled is True


class TestTraceContext:
    def test_ids_have_traceparent_widths(self):
        from repro.observability.tracer import (
            is_valid_trace_id,
            new_span_id,
            new_trace_id,
        )

        tid = new_trace_id()
        assert is_valid_trace_id(tid)
        assert len(new_span_id()) == 16
        assert not is_valid_trace_id(tid[:-1])
        assert not is_valid_trace_id(tid.upper())
        assert not is_valid_trace_id(None)
        assert not is_valid_trace_id(12345)

    def test_spans_outside_context_carry_no_ids(self):
        # The zero-overhead contract: without an active trace context,
        # no ids are generated and no id args are attached.
        tracer = Tracer()
        with tracer.span("bare"):
            pass
        event = tracer.events()[0]
        assert "trace_id" not in event.get("args", {})
        assert "span_id" not in event.get("args", {})

    def test_context_attaches_and_nests_span_ids(self):
        tracer = Tracer()
        trace_id = "cd" * 16
        with tracer.trace_context(trace_id, "f" * 16):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        events = {e["name"]: e["args"] for e in tracer.events()}
        assert events["outer"]["trace_id"] == trace_id
        assert events["outer"]["parent_span_id"] == "f" * 16
        assert events["inner"]["parent_span_id"] == outer.span_id
        assert inner.span_id != outer.span_id

    def test_root_context_has_no_parent(self):
        tracer = Tracer()
        with tracer.trace_context("ab" * 16):
            with tracer.span("root"):
                pass
        args = tracer.events()[0]["args"]
        assert "parent_span_id" not in args

    def test_context_unwinds_after_exit(self):
        tracer = Tracer()
        with tracer.trace_context("ab" * 16):
            pass
        assert tracer.current_context() is None
        with tracer.span("after"):
            pass
        assert "trace_id" not in tracer.events()[-1].get("args", {})

    def test_context_unwinds_past_leaked_span(self):
        tracer = Tracer()
        span = tracer.span("leaked")
        with tracer.trace_context("ab" * 16):
            span.__enter__()  # never exited inside the context
        assert tracer.current_context() is None

    def test_instants_tagged_with_active_context(self):
        tracer = Tracer()
        with tracer.trace_context("ab" * 16):
            with tracer.span("op"):
                tracer.instant("checkpoint")
        instant = [e for e in tracer.events() if e["ph"] == "i"][0]
        assert instant["args"]["trace_id"] == "ab" * 16

    def test_events_for_trace_filters(self):
        tracer = Tracer()
        with tracer.span("untagged"):
            pass
        with tracer.trace_context("ab" * 16):
            with tracer.span("tagged"):
                pass
        with tracer.trace_context("ef" * 16):
            with tracer.span("other"):
                pass
        names = [e["name"] for e in tracer.events_for_trace("ab" * 16)]
        assert names == ["tagged"]

    def test_tail_info_reports_dropped(self):
        tracer = Tracer()
        for index in range(7):
            with tracer.span(f"s{index}"):
                pass
        events, dropped = tracer.tail_info(3)
        assert [e["name"] for e in events] == ["s4", "s5", "s6"]
        assert dropped == 4
        full, none_dropped = tracer.tail_info(100)
        assert len(full) == 7
        assert none_dropped == 0

    def test_null_tracer_context_is_inert(self):
        with NULL_TRACER.trace_context("ab" * 16, "f" * 16):
            with NULL_TRACER.span("s"):
                pass
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.tail_info() == ([], 0)
        assert NULL_TRACER.events_for_trace("ab" * 16) == []
