"""Unit tests for distributed-trace stitching."""

from repro.observability.stitch import (
    cross_process_links,
    make_fragment,
    stitch_fragments,
)
from repro.observability.tracer import Tracer, validate_chrome_trace


def _span(name, ts, dur, span_id=None, parent=None, trace_id="t" * 32):
    args = {"trace_id": trace_id}
    if span_id is not None:
        args["span_id"] = span_id
    if parent is not None:
        args["parent_span_id"] = parent
    return {
        "name": name, "ph": "X", "ts": ts, "dur": dur,
        "pid": 1, "tid": 1, "args": args,
    }


class TestStitching:
    def test_each_fragment_gets_own_pid_and_process_name(self):
        document = stitch_fragments([
            make_fragment("router", [_span("fleet.request", 0, 10)]),
            make_fragment("backend-0", [_span("service.request", 2, 6)]),
        ])
        meta = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("ph") == "M"
        }
        assert meta == {1: "router", 2: "backend-0"}

    def test_timestamps_rebased_onto_shared_epoch(self):
        # Router started 1s before the backend: the backend's local
        # ts=0 must land at +1s on the merged timeline.
        document = stitch_fragments([
            make_fragment(
                "router", [_span("a", 0, 10)], epoch_unix_us=1_000_000.0
            ),
            make_fragment(
                "backend", [_span("b", 0, 5)], epoch_unix_us=2_000_000.0
            ),
        ])
        spans = {
            e["name"]: e for e in document["traceEvents"]
            if e.get("ph") == "X"
        }
        assert spans["a"]["ts"] == 0
        assert spans["b"]["ts"] == 1_000_000.0

    def test_cross_process_parent_becomes_flow_pair(self):
        document = stitch_fragments([
            make_fragment(
                "router", [_span("dispatch", 0, 10, span_id="aaaa")]
            ),
            make_fragment(
                "backend",
                [_span("service.request", 2, 6,
                       span_id="bbbb", parent="aaaa")],
            ),
        ], trace_id="t" * 32)
        links = cross_process_links(document)
        assert links == [{"id": "bbbb", "from_pid": 1, "to_pid": 2}]
        assert document["traceId"] == "t" * 32

    def test_same_process_parent_gets_no_flow(self):
        document = stitch_fragments([
            make_fragment("router", [
                _span("outer", 0, 10, span_id="aaaa"),
                _span("inner", 1, 2, span_id="bbbb", parent="aaaa"),
            ]),
        ])
        assert cross_process_links(document) == []

    def test_unresolvable_parent_is_tolerated(self):
        document = stitch_fragments([
            make_fragment("backend", [
                _span("orphan", 0, 1, span_id="cccc", parent="gone"),
            ]),
        ])
        assert cross_process_links(document) == []
        assert validate_chrome_trace(document) == []

    def test_stitched_document_validates(self):
        document = stitch_fragments([
            make_fragment(
                "router", [_span("dispatch", 0, 10, span_id="aaaa")],
                epoch_unix_us=5.0,
            ),
            make_fragment(
                "backend",
                [_span("service.request", 1, 8,
                       span_id="bbbb", parent="aaaa")],
                epoch_unix_us=7.0,
            ),
        ])
        assert validate_chrome_trace(document) == []

    def test_empty_fragments_give_empty_document(self):
        document = stitch_fragments([])
        assert document["traceEvents"] == []


class TestRealTracerRoundTrip:
    def test_two_tracers_linked_by_propagated_context(self):
        # Simulates the wire protocol: the "router" tracer roots the
        # trace, its span ids propagate, and the "backend" tracer joins
        # with parent_span_id — exactly what CompileRequest carries.
        trace_id = "ab" * 16
        router = Tracer()
        with router.trace_context(trace_id, None):
            with router.span("fleet.request") as sp:
                parent = sp.span_id
        backend = Tracer()
        with backend.trace_context(trace_id, parent):
            with backend.span("service.request"):
                pass
        document = stitch_fragments([
            make_fragment(
                "router", router.events_for_trace(trace_id),
                router.epoch_unix_us,
            ),
            make_fragment(
                "backend", backend.events_for_trace(trace_id),
                backend.epoch_unix_us,
            ),
        ], trace_id=trace_id)
        assert validate_chrome_trace(document) == []
        links = cross_process_links(document)
        assert len(links) == 1
        assert links[0]["from_pid"] == 1
        assert links[0]["to_pid"] == 2
