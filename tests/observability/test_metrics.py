"""Unit tests for the metrics registry and the no-op backend."""

import pytest

from repro.observability.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_counter_accepts_float_increments(self):
        registry = MetricsRegistry()
        registry.counter("cost.launch_us").inc(6.5)
        registry.counter("cost.launch_us").inc(0.5)
        assert registry.counter("cost.launch_us").value == pytest.approx(7.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(1)
        assert registry.gauge("g").value == 1

    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogram:
    def test_buckets_are_sorted_and_fixed(self):
        hist = Histogram(buckets=(5.0, 1.0, 10.0))
        assert hist.buckets == (1.0, 5.0, 10.0)

    def test_observations_land_in_cumulative_buckets(self):
        hist = Histogram(buckets=(1.0, 5.0))
        for value in (0.5, 0.9, 3.0, 100.0):
            hist.observe(value)
        # counts: <=1.0, <=5.0, overflow
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == pytest.approx(104.4)
        assert hist.mean == pytest.approx(104.4 / 4)

    def test_boundary_value_counts_in_its_bucket(self):
        hist = Histogram(buckets=(1.0, 5.0))
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0, 0]

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_to_dict_is_json_shaped(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        data = hist.to_dict()
        assert data == {
            "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
        }


class TestRegistryExport:
    def test_to_dict_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.to_dict()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("search.runs").inc()
        registry.histogram("stage_ms.search", buckets=(1.0,)).observe(0.2)
        text = registry.render()
        assert "search.runs" in text
        assert "stage_ms.search" in text and "mean=" in text

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"


class TestNullRegistry:
    def test_hands_out_shared_singletons(self):
        assert NULL_REGISTRY.counter("any") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("any") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("any") is NULL_HISTOGRAM

    def test_operations_record_nothing(self):
        NULL_REGISTRY.counter("c").inc(100)
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.counter("c").value == 0
        assert NULL_REGISTRY.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_enabled_flags(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True
