"""Unit tests for the metrics registry and the no-op backend."""

import pytest

from repro.observability.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_counter_accepts_float_increments(self):
        registry = MetricsRegistry()
        registry.counter("cost.launch_us").inc(6.5)
        registry.counter("cost.launch_us").inc(0.5)
        assert registry.counter("cost.launch_us").value == pytest.approx(7.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(1)
        assert registry.gauge("g").value == 1

    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogram:
    def test_buckets_are_sorted_and_fixed(self):
        hist = Histogram(buckets=(5.0, 1.0, 10.0))
        assert hist.buckets == (1.0, 5.0, 10.0)

    def test_observations_land_in_cumulative_buckets(self):
        hist = Histogram(buckets=(1.0, 5.0))
        for value in (0.5, 0.9, 3.0, 100.0):
            hist.observe(value)
        # counts: <=1.0, <=5.0, overflow
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == pytest.approx(104.4)
        assert hist.mean == pytest.approx(104.4 / 4)

    def test_boundary_value_counts_in_its_bucket(self):
        hist = Histogram(buckets=(1.0, 5.0))
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0, 0]

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_to_dict_is_json_shaped(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        data = hist.to_dict()
        assert data == {
            "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
        }


class TestRegistryExport:
    def test_to_dict_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.to_dict()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("search.runs").inc()
        registry.histogram("stage_ms.search", buckets=(1.0,)).observe(0.2)
        text = registry.render()
        assert "search.runs" in text
        assert "stage_ms.search" in text and "mean=" in text

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"


class TestNullRegistry:
    def test_hands_out_shared_singletons(self):
        assert NULL_REGISTRY.counter("any") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("any") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("any") is NULL_HISTOGRAM

    def test_operations_record_nothing(self):
        NULL_REGISTRY.counter("c").inc(100)
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.counter("c").value == 0
        assert NULL_REGISTRY.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_enabled_flags(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True


class TestExemplars:
    def test_observe_records_exemplar_per_bucket(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.5, exemplar="trace-fast")
        h.observe(100.0, exemplar="trace-slow")
        data = h.to_dict()
        assert data["exemplars"] == {"0": "trace-fast", "2": "trace-slow"}

    def test_last_exemplar_per_bucket_wins(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.1, exemplar="first")
        h.observe(0.2, exemplar="second")
        assert h.to_dict()["exemplars"] == {"0": "second"}

    def test_none_exemplar_keeps_previous(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.1, exemplar="kept")
        h.observe(0.2)  # id-free observation must not erase the exemplar
        assert h.to_dict()["exemplars"] == {"0": "kept"}

    def test_no_exemplars_key_when_none_recorded(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.1)
        assert "exemplars" not in h.to_dict()

    def test_null_histogram_accepts_exemplar_kwarg(self):
        NULL_HISTOGRAM.observe(1.0, exemplar="ignored")


class TestThreadSafety:
    """Concurrent updates + snapshots must lose nothing and tear nothing.

    The tear this pins: ``Histogram.to_dict`` once read counts/sum/count
    without the lock, so a snapshot racing an ``observe`` could report a
    ``count`` that disagreed with ``sum(counts)``.
    """

    THREADS = 8
    PER_THREAD = 2_000

    def test_concurrent_counter_increments_all_land(self):
        import threading

        registry = MetricsRegistry()

        def work():
            for _ in range(self.PER_THREAD):
                registry.counter("c").inc()

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("c").value == self.THREADS * self.PER_THREAD

    def test_concurrent_observes_and_snapshots_never_tear(self):
        import threading

        registry = MetricsRegistry()
        h = registry.histogram("lat_ms", buckets=(1.0, 5.0, 25.0))
        stop = threading.Event()
        torn = []

        def observer():
            for i in range(self.PER_THREAD):
                h.observe(float(i % 40), exemplar=f"t-{i}")

        def snapshotter():
            while not stop.is_set():
                data = registry.to_dict()["histograms"]["lat_ms"]
                if sum(data["counts"]) != data["count"]:
                    torn.append(data)
                    return

        workers = [
            threading.Thread(target=observer) for _ in range(self.THREADS)
        ]
        watchers = [threading.Thread(target=snapshotter) for _ in range(2)]
        for t in watchers:
            t.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        for t in watchers:
            t.join()
        assert not torn, f"snapshot tore: {torn[0]}"
        final = h.to_dict()
        assert final["count"] == self.THREADS * self.PER_THREAD
        assert sum(final["counts"]) == final["count"]

    def test_concurrent_registry_creation_yields_one_metric(self):
        import threading

        registry = MetricsRegistry()
        instances = []
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            instances.append(registry.counter("shared"))
            registry.counter("shared").inc()

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in instances}) == 1
        assert registry.counter("shared").value == self.THREADS
