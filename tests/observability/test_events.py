"""Unit tests for the bounded structured control-plane event log."""

import threading

import pytest

from repro.observability.events import (
    EVENT_KINDS,
    EventLog,
    emit_event,
    get_event_log,
)


class TestEventLog:
    def test_emit_assigns_monotone_seq(self):
        log = EventLog()
        first = log.emit("reroute", digest="d1")
        second = log.emit("hedge_fired", digest="d2")
        assert second["seq"] == first["seq"] + 1

    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("not-a-kind")

    def test_snapshot_returns_events_in_order(self):
        log = EventLog()
        for index in range(5):
            log.emit("reroute", index=index)
        snapshot = log.snapshot()
        assert [e["index"] for e in snapshot["events"]] == list(range(5))
        assert snapshot["dropped"] == 0

    def test_since_filters_by_seq(self):
        log = EventLog()
        events = [log.emit("reroute", index=i) for i in range(4)]
        snapshot = log.snapshot(since=events[1]["seq"])
        assert [e["index"] for e in snapshot["events"]] == [2, 3]

    def test_next_seq_supports_incremental_follow(self):
        log = EventLog()
        log.emit("reroute")
        cursor = log.snapshot()["next_seq"]
        assert log.snapshot(since=cursor - 1)["events"] == []
        log.emit("hedge_fired")
        fresh = log.snapshot(since=cursor - 1)["events"]
        assert [e["kind"] for e in fresh] == ["hedge_fired"]

    def test_bounded_capacity_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.emit("reroute", index=index)
        snapshot = log.snapshot()
        assert [e["index"] for e in snapshot["events"]] == [7, 8, 9]
        assert snapshot["dropped"] == 7
        assert snapshot["capacity"] == 3

    def test_counts_by_kind(self):
        log = EventLog()
        log.emit("reroute")
        log.emit("reroute")
        log.emit("breaker_open", backend="b0")
        assert log.counts_by_kind() == {"reroute": 2, "breaker_open": 1}

    def test_every_declared_kind_is_accepted(self):
        log = EventLog()
        for kind in EVENT_KINDS:
            log.emit(kind)
        assert log.snapshot()["events"][-1]["kind"] == EVENT_KINDS[-1]

    def test_concurrent_emitters_lose_nothing(self):
        log = EventLog(capacity=10_000)
        threads = [
            threading.Thread(
                target=lambda: [log.emit("reroute") for _ in range(200)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = log.snapshot()
        assert len(snapshot["events"]) == 1600
        seqs = [e["seq"] for e in snapshot["events"]]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 1600


class TestProcessSingleton:
    def test_emit_event_lands_in_shared_log(self):
        log = get_event_log()
        mark = log.snapshot()["next_seq"]
        emit_event("quarantine", artifact="deadbeef.json")
        fresh = log.snapshot(since=mark - 1)["events"]
        assert any(
            e["kind"] == "quarantine"
            and e.get("artifact") == "deadbeef.json"
            for e in fresh
        )
