"""Campaign mechanics: corpus IO, reproducer artifacts, CLI plumbing."""

import json

from repro.cli import main
from repro.difftest import (
    ProgramGenerator,
    canonical_specs,
    load_corpus,
    run_campaign,
    save_corpus,
)
from repro.difftest.runner import load_reproducer, save_reproducer
from repro.difftest.specs import LevelSpec, ProgramSpec


def test_corpus_round_trip(tmp_path):
    specs = canonical_specs()[:4]
    path = tmp_path / "corpus.json"
    save_corpus(specs, str(path))
    back = load_corpus(str(path))
    assert back == specs
    payload = json.loads(path.read_text())
    assert payload["version"] == 1


def test_campaign_small_budget_green(tmp_path):
    result = run_campaign(
        seed=3, budget=2, out_dir=str(tmp_path), include_templates=False
    )
    assert result.ok, result.describe()
    assert result.checked == 2
    assert "0 failure(s)" in result.describe()


def test_campaign_templates_cover_everything():
    result = run_campaign(seed=0, budget=0)
    assert result.ok, result.describe()
    assert result.coverage_gaps() == []
    assert result.split_programs > 0
    assert result.prealloc_programs > 0


def test_campaign_with_injected_check_failure(tmp_path):
    """A check predicate that rejects any reduce must produce shrunk,
    replayable artifacts."""
    from repro.difftest.oracle import CheckFailure, OracleReport, check_spec

    def check(spec):
        report = check_spec(spec, seed=1)
        if any(level.kind == "reduce" for level in spec.levels):
            return OracleReport(
                program_name=report.program_name,
                spec=spec,
                failures=report.failures
                + [CheckFailure("oracle", "synthetic reduce bug")],
                skipped=report.skipped,
                pattern_kinds=report.pattern_kinds,
                split_exercised=report.split_exercised,
                prealloc_exercised=report.prealloc_exercised,
            )
        return report

    result = run_campaign(
        seed=1,
        budget=0,
        out_dir=str(tmp_path),
        check=check,
        max_shrink_checks=40,
    )
    assert not result.ok
    assert result.failures
    for record in result.failures:
        assert record.pattern_nodes <= 3
        assert record.artifact_path is not None
        original, shrunk = load_reproducer(record.artifact_path)
        assert shrunk.levels and shrunk.levels[-1].kind == "reduce"


def test_reproducer_artifact_contents(tmp_path):
    from repro.difftest.oracle import check_spec
    from repro.difftest.runner import FailureRecord

    spec = ProgramSpec(
        kind="nest", levels=(LevelSpec("map"), LevelSpec("reduce"))
    )
    report = check_spec(spec, seed=0)
    record = FailureRecord(
        spec=spec,
        shrunk=spec,
        report=report,
        shrink_checks=0,
        pattern_nodes=2,
        artifact_path=None,
    )
    path = save_reproducer(record, seed=0, out_dir=str(tmp_path), index=0)
    payload = json.loads(open(path).read())
    assert payload["seed"] == 0
    assert "program_ir" in payload and "pretty" in payload
    original, shrunk = load_reproducer(path)
    assert original == spec and shrunk == spec


def test_cli_difftest_green(tmp_path, capsys):
    corpus = tmp_path / "c.json"
    save_corpus([ProgramSpec(kind="filter")], str(corpus))
    code = main([
        "difftest", "--seed", "5", "--budget", "1",
        "--corpus", str(corpus),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failure(s)" in out


def test_cli_difftest_save_corpus(tmp_path, capsys):
    target = tmp_path / "saved.json"
    code = main([
        "difftest", "--seed", "2", "--budget", "1",
        "--save-corpus", str(target),
    ])
    capsys.readouterr()
    assert code == 0
    saved = load_corpus(str(target))
    assert len(saved) == len(canonical_specs()) + 1


def test_cli_difftest_replay_green(tmp_path, capsys):
    from repro.difftest.oracle import check_spec
    from repro.difftest.runner import FailureRecord

    spec = ProgramSpec(kind="nest", levels=(LevelSpec("map"),))
    record = FailureRecord(
        spec=spec, shrunk=spec, report=check_spec(spec, seed=0),
        shrink_checks=0, pattern_nodes=1, artifact_path=None,
    )
    path = save_reproducer(record, seed=0, out_dir=str(tmp_path), index=0)
    code = main(["difftest", "--replay", path])
    out = capsys.readouterr().out
    assert code == 0
    assert "replay" in out


def test_generator_stream_matches_cli_save(tmp_path):
    """--save-corpus regenerates the same stream the campaign checked."""
    a = [ProgramGenerator(seed=9).random_spec() for _ in range(3)]
    b = [ProgramGenerator(seed=9).random_spec() for _ in range(3)]
    assert a == b
