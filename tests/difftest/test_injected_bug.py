"""The acceptance demo: a deliberately injected codegen bug is caught by
the differential harness and shrunk to a tiny reproducer.

The injected fault makes the kernel generator silently skip the
``Split(k)`` combiner kernel — exactly the class of partial-lowering bug
differential execution exists to catch: every individual kernel still
compiles, only the cross-kernel contract is broken.
"""

from unittest import mock

from repro.codegen.kernels import KernelGenerator
from repro.difftest import run_campaign
from repro.difftest.runner import load_reproducer
from repro.difftest.specs import LevelSpec, ProgramSpec


def _inject_missing_combiner():
    """Patch codegen to 'forget' the Split(k) combiner kernel."""
    return mock.patch.object(
        KernelGenerator, "_emit_combiner", lambda self, *args, **kwargs: None
    )


def test_injected_combiner_bug_is_caught_and_shrunk(tmp_path):
    out_dir = tmp_path / "reproducers"
    with _inject_missing_combiner():
        result = run_campaign(seed=0, budget=0, out_dir=str(out_dir))

    assert not result.ok, "the injected bug must be detected"
    # Every failure shrinks to a minimal reproducer: at most 3 pattern
    # nodes (in practice a single flat Reduce).
    for record in result.failures:
        assert 1 <= record.pattern_nodes <= 3, record.shrunk.describe()
        assert any(
            "combiner" in failure.message
            for failure in record.report.failures
        )
        assert record.artifact_path is not None

    # The artifact replays: while the bug is in place the shrunk spec
    # still fails, and on the fixed compiler it passes.
    from repro.difftest import check_spec

    original, shrunk = load_reproducer(result.failures[0].artifact_path)
    with _inject_missing_combiner():
        assert not check_spec(shrunk, seed=0).ok
    assert check_spec(shrunk, seed=0).ok


def test_clean_compiler_passes_the_same_specs():
    result = run_campaign(seed=0, budget=0)
    assert result.ok, result.describe()


def test_injected_bug_caught_on_single_spec():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce", op="+")),
        leaf="array",
    )
    from repro.difftest import check_spec

    with _inject_missing_combiner():
        report = check_spec(spec, seed=0)
    assert not report.ok
    assert any("combiner" in f.message for f in report.failures)
