"""Generator determinism and spec -> IR construction."""

import pytest

from repro.difftest.generator import (
    ProgramGenerator,
    build_program,
    canonical_specs,
)
from repro.difftest.specs import LevelSpec, ProgramSpec, spec_key
from repro.ir.patterns import (
    Filter,
    Foreach,
    GroupBy,
    Map,
    Reduce,
    ZipWith,
)
from repro.ir.serialize import dumps
from repro.ir.traversal import find_instances, find_patterns


def test_same_seed_same_stream():
    a = ProgramGenerator(seed=42)
    b = ProgramGenerator(seed=42)
    stream_a = [spec_key(a.random_spec()) for _ in range(20)]
    stream_b = [spec_key(b.random_spec()) for _ in range(20)]
    assert stream_a == stream_b


def test_different_seeds_diverge():
    a = [spec_key(ProgramGenerator(seed=1).random_spec()) for _ in range(8)]
    b = [spec_key(ProgramGenerator(seed=2).random_spec()) for _ in range(8)]
    assert a != b


def test_random_specs_always_valid_and_build():
    generator = ProgramGenerator(seed=7)
    for _ in range(40):
        spec = generator.random_spec()
        spec.validate()
        program = build_program(spec)
        assert program.params


def test_builds_are_deterministic():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce", op="max")),
        leaf="array",
    )
    assert dumps(build_program(spec)) == dumps(build_program(spec))


def test_nest_structure_matches_spec():
    spec = ProgramSpec(
        kind="nest",
        levels=(
            LevelSpec("map"),
            LevelSpec("map"),
            LevelSpec("reduce", op="+"),
        ),
    )
    program = build_program(spec)
    assert len(find_instances(program.result, Reduce)) == 1
    assert len([
        node for node in find_instances(program.result, Map)
        if type(node) is Map
    ]) == 2


def test_materialized_reduce_creates_inner_binding():
    from repro.ir.expr import Bind

    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce", materialize=True)),
    )
    program = build_program(spec)
    binds = find_instances(program.result, Bind)
    assert binds, "materialize must produce a let_vec binding"
    assert isinstance(binds[0].value, Map)


@pytest.mark.parametrize(
    "kind,cls",
    [("filter", Filter), ("groupby", GroupBy), ("foreach", Foreach)],
)
def test_flat_kinds_build_their_pattern(kind, cls):
    program = build_program(ProgramSpec(kind=kind))
    assert find_instances(program.result, cls)


def test_canonical_templates_cover_all_pattern_classes():
    seen = set()
    for spec in canonical_specs():
        spec.validate()
        program = build_program(spec)
        for pattern in find_patterns(program.result):
            seen.add(type(pattern).__name__)
    assert {"Map", "ZipWith", "Reduce", "Filter", "GroupBy", "Foreach"} <= seen


def test_custom_reduce_has_combine_expr():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce", op="custom")),
    )
    program = build_program(spec)
    reduce_node = find_instances(program.result, Reduce)[0]
    assert reduce_node.op == "custom"
    assert reduce_node.combine is not None


def test_zipwith_is_innermost():
    spec = ProgramSpec(
        kind="nest", levels=(LevelSpec("map"), LevelSpec("zipwith"))
    )
    program = build_program(spec)
    assert find_instances(program.result, ZipWith)
