"""Spec validity rules and serialization."""

import pytest

from repro.difftest.specs import (
    ForeachSpec,
    LevelSpec,
    ProgramSpec,
    SpecError,
    spec_key,
)


def test_valid_nest_shapes():
    ProgramSpec(kind="nest", levels=(LevelSpec("map"),)).validate()
    ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("zipwith")),
    ).validate()
    ProgramSpec(
        kind="nest",
        levels=(
            LevelSpec("map"),
            LevelSpec("map"),
            LevelSpec("reduce", op="max"),
            LevelSpec("reduce", op="+"),
        ),
    ).validate()
    ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce", materialize=True)),
    ).validate()


@pytest.mark.parametrize(
    "levels",
    [
        (),  # empty nest
        tuple(LevelSpec("map") for _ in range(5)),  # too deep
        (LevelSpec("reduce"), LevelSpec("map")),  # map below reduce
        (LevelSpec("zipwith"), LevelSpec("map")),  # zipwith not innermost
        (LevelSpec("map"), LevelSpec("zipwith"), LevelSpec("map")),
        (LevelSpec("reduce", materialize=True),),  # materialize at level 0
        (
            LevelSpec("map"),
            LevelSpec("reduce"),
            LevelSpec("reduce", materialize=True),  # not the first reduce
        ),
        (LevelSpec("map"), LevelSpec("reduce", op="xor")),  # unknown op
    ],
)
def test_invalid_nests_rejected(levels):
    with pytest.raises(SpecError):
        ProgramSpec(kind="nest", levels=levels).validate()


def test_unknown_kinds_rejected():
    with pytest.raises(SpecError):
        ProgramSpec(kind="scan").validate()
    with pytest.raises(SpecError):
        ProgramSpec(kind="nest", leaf="mystery").validate()
    with pytest.raises(SpecError):
        ProgramSpec(kind="filter", pred="mystery").validate()
    with pytest.raises(SpecError):
        ProgramSpec(kind="groupby", key="mystery").validate()
    with pytest.raises(SpecError):
        ProgramSpec(kind="foreach", foreach=ForeachSpec(depth=3)).validate()


def test_dict_round_trip():
    spec = ProgramSpec(
        kind="nest",
        levels=(
            LevelSpec("map"),
            LevelSpec("reduce", op="custom", materialize=False),
        ),
        leaf="neighbor",
        sizes=(5, 7),
        label="round-trip",
    )
    back = ProgramSpec.from_dict(spec.to_dict())
    assert back == spec

    fe = ProgramSpec(
        kind="foreach",
        foreach=ForeachSpec(depth=2, conditional=True, neighbor=True),
    )
    assert ProgramSpec.from_dict(fe.to_dict()) == fe


def test_spec_key_ignores_label():
    a = ProgramSpec(kind="filter", label="x")
    b = ProgramSpec(kind="filter", label="y")
    assert spec_key(a) == spec_key(b)
    assert spec_key(a) != spec_key(ProgramSpec(kind="groupby"))


def test_domain_sizes_padded_with_defaults():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("map"), LevelSpec("reduce")),
        sizes=(9,),
    )
    sizes = spec.domain_sizes()
    assert sizes[0] == 9
    assert len(sizes) == 3
