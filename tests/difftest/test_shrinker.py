"""Shrinker behavior with synthetic failure predicates."""

from repro.difftest.generator import build_program
from repro.difftest.shrinker import shrink_spec
from repro.difftest.specs import ForeachSpec, LevelSpec, ProgramSpec
from repro.ir.patterns import Reduce
from repro.ir.traversal import find_instances, find_patterns


def test_shrinks_deep_nest_when_failure_is_reduce():
    """A 'bug' triggered by any Reduce shrinks to a single-reduce nest."""
    spec = ProgramSpec(
        kind="nest",
        levels=(
            LevelSpec("map"),
            LevelSpec("map"),
            LevelSpec("reduce", op="max", materialize=False),
            LevelSpec("reduce", op="+"),
        ),
        leaf="select",
        sizes=(9, 11, 4, 3),
    )

    def still_fails(candidate):
        program = build_program(candidate)
        return bool(find_instances(program.result, Reduce))

    shrunk, checks = shrink_spec(spec, still_fails)
    assert checks > 0
    program = build_program(shrunk)
    patterns = find_patterns(program.result)
    assert len(patterns) == 1
    assert isinstance(patterns[0], Reduce)
    assert shrunk.leaf == "affine"
    assert shrunk.sizes == ()


def test_shrinks_foreach_flags():
    spec = ProgramSpec(
        kind="foreach",
        foreach=ForeachSpec(depth=2, conditional=True, neighbor=True),
        sizes=(8, 9),
    )

    def still_fails(candidate):
        return candidate.kind == "foreach"

    shrunk, _ = shrink_spec(spec, still_fails)
    assert shrunk.foreach == ForeachSpec(depth=1, conditional=False,
                                         neighbor=False)
    assert shrunk.sizes == ()


def test_fixpoint_when_nothing_smaller_fails():
    spec = ProgramSpec(kind="nest", levels=(LevelSpec("map"),), leaf="affine")
    shrunk, _ = shrink_spec(spec, lambda candidate: False)
    assert shrunk.levels == spec.levels
    assert shrunk.kind == spec.kind


def test_respects_check_budget():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("map"), LevelSpec("map"),
                LevelSpec("reduce")),
        leaf="select",
        sizes=(9, 9),
    )
    calls = []

    def still_fails(candidate):
        calls.append(candidate)
        return False

    shrink_spec(spec, still_fails, max_checks=3)
    assert len(calls) <= 3


def test_preserves_label():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce")),
        label="origin",
    )
    shrunk, _ = shrink_spec(spec, lambda candidate: True)
    assert shrunk.label == "origin"
    assert len(shrunk.levels) == 1
