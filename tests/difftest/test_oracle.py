"""Oracle behavior: comparisons, input synthesis, pass/fail mechanics."""

import numpy as np
import pytest

from repro.difftest.generator import build_program
from repro.difftest.oracle import (
    check_spec,
    make_inputs,
    results_equal,
)
from repro.difftest.specs import LevelSpec, ProgramSpec


def test_results_equal_scalars_and_arrays():
    assert results_equal(1.5, 1.5)
    assert not results_equal(1.5, 1.6)
    assert results_equal(np.arange(4), np.arange(4))
    assert not results_equal(np.arange(4), np.arange(5))


def test_results_equal_ragged_and_dict():
    a = {0: [1.0, 2.0], 1: [3.0]}
    b = {0: [1.0, 2.0], 1: [3.0]}
    assert results_equal(a, b)
    assert not results_equal(a, {0: [1.0, 2.0]})
    assert not results_equal(a, {0: [1.0, 2.0], 1: [3.5]})
    ragged = [np.array([1.0]), np.array([2.0, 3.0])]
    assert results_equal(ragged, [np.array([1.0]), np.array([2.0, 3.0])])


def test_results_equal_none():
    assert results_equal(None, None)
    assert not results_equal(None, 0.0)


def test_results_equal_tolerance_mode():
    a, b = np.array([1.0]), np.array([1.0 + 1e-12])
    assert not results_equal(a, b, exact=True)
    assert results_equal(a, b, exact=False)


def test_make_inputs_matches_shapes():
    program = build_program(
        ProgramSpec(kind="nest", levels=(LevelSpec("map"),), leaf="array")
    )
    inputs = make_inputs(program, seed=0)
    hints = program.size_hints
    assert inputs["m"].shape == (hints["R"], hints["C"])
    assert inputs["v"].shape == (hints["R"],)
    assert inputs["R"] == hints["R"]


def test_make_inputs_deterministic():
    program = build_program(ProgramSpec(kind="filter"))
    a = make_inputs(program, seed=5)
    b = make_inputs(program, seed=5)
    assert all(np.array_equal(a[k], b[k]) for k in a)


@pytest.mark.parametrize(
    "spec",
    [
        ProgramSpec(kind="nest", levels=(LevelSpec("map"),), leaf="select"),
        ProgramSpec(
            kind="nest",
            levels=(LevelSpec("reduce", op="+"),),
            leaf="neighbor",
        ),
        ProgramSpec(kind="groupby", key="sign", leaf="array"),
    ],
)
def test_known_good_specs_pass(spec):
    report = check_spec(spec, seed=0)
    assert report.ok, report.describe()
    assert report.pattern_kinds


def test_level0_reduce_exercises_combiner_path():
    """A flat reduce forces Split(k) on its sync level — the combiner
    kernel must appear in the generated module."""
    spec = ProgramSpec(
        kind="nest", levels=(LevelSpec("reduce", op="+"),), leaf="affine"
    )
    report = check_spec(spec, seed=0)
    assert report.ok, report.describe()
    assert report.split_exercised


def test_prealloc_template_exercises_preallocation():
    spec = ProgramSpec(
        kind="nest",
        levels=(LevelSpec("map"), LevelSpec("reduce", materialize=True)),
        leaf="array",
    )
    report = check_spec(spec, seed=0)
    assert report.ok, report.describe()
    assert report.prealloc_exercised


def test_unbuildable_spec_reports_build_failure():
    bad = ProgramSpec(kind="nest", levels=())
    report = check_spec(bad)
    assert not report.ok
    assert report.failures[0].stage == "build"
