"""Cross-device portability: conclusions must hold on the Fermi-era
C2050, not just the K20c the paper evaluates on."""

import pytest

from repro.gpusim import TESLA_C2050, TESLA_K20C, simulate_program


class TestDeviceDerivedWindows:
    def test_dop_windows_differ(self):
        k20c = TESLA_K20C.dop_window()
        c2050 = TESLA_C2050.dop_window()
        assert k20c.min_dop == 13 * 2048
        assert c2050.min_dop == 14 * 1536
        assert k20c.min_dop != c2050.min_dop


@pytest.mark.parametrize("device", [TESLA_K20C, TESLA_C2050],
                         ids=["K20c", "C2050"])
class TestConclusionsPortable:
    def test_multidim_flat_across_shapes(self, device, sum_rows_program):
        times = [
            simulate_program(
                sum_rows_program, "multidim", device, R=r, C=c
            ).total_us
            for r, c in ((65536, 1024), (8192, 8192), (1024, 65536))
        ]
        assert max(times) / min(times) < 1.4

    def test_one_d_collapses_on_skew(self, device, sum_rows_program):
        base = simulate_program(
            sum_rows_program, "multidim", device, R=1024, C=65536
        ).total_us
        oned = simulate_program(
            sum_rows_program, "1d", device, R=1024, C=65536
        ).total_us
        assert oned > 5 * base

    def test_fixed_2d_cannot_coalesce_sum_cols(
        self, device, sum_cols_program
    ):
        base = simulate_program(
            sum_cols_program, "multidim", device, R=8192, C=8192
        ).total_us
        for strategy in ("thread-block/thread", "warp-based"):
            other = simulate_program(
                sum_cols_program, strategy, device, R=8192, C=8192
            ).total_us
            assert other > 3 * base

    def test_mappings_adapt_to_device(self, device, sum_rows_program):
        """The chosen mapping stays hard-feasible and DOP-controlled for
        the device's own window."""
        from repro.analysis import analyze_program
        from repro.analysis.scoring import hard_feasible
        from repro.gpusim import decide_mapping

        pa = analyze_program(sum_rows_program, R=8192, C=8192)
        ka = pa.kernel(0)
        d = decide_mapping(ka, "multidim", device)
        assert hard_feasible(d.mapping, ka.constraints, ka.level_sizes())
        assert d.mapping.dop(ka.level_sizes()) <= device.max_dop * 2
