"""Trace-based validation: the analytic memory model vs exhaustive
thread-level enumeration on small problem sizes.

These are the strongest tests in the suite: they execute the exact index
computations the code generator emits for every (block, thread, iteration)
combination and count 128-byte segments with a set, then compare against
the closed-form prediction the cost model uses.
"""

import pytest

from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import (
    Dim,
    LevelMapping,
    Mapping,
    Span,
    SpanAll,
    Split,
    seq_level,
)
from repro.gpusim.coalescing import warp_transactions
from repro.gpusim.cost import _site_issues
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.trace import trace_site


def analyze(program, **sizes):
    pa = analyze_program(program, **sizes)
    return pa.kernel(0), pa.env


def m_site(ka):
    return next(s for s in ka.accesses.sites if s.array_key == "m")


def analytic(site, mapping, sizes, env):
    tpb = mapping.threads_per_block()
    blocks = mapping.total_blocks(list(sizes))
    warps_per_block = -(-tpb // 32)
    total_warps = blocks * warps_per_block
    issues = _site_issues(site, mapping, list(sizes), total_warps,
                          TESLA_K20C, env)
    trans = warp_transactions(site, mapping, TESLA_K20C).transactions
    return issues, trans


CASES = [
    # (mapping, sizes (R, C))
    pytest.param(
        Mapping((LevelMapping(Dim.Y, 2, Span(1)),
                 LevelMapping(Dim.X, 32, SpanAll()))),
        (8, 64),
        id="coalesced-spanall",
    ),
    pytest.param(
        Mapping((LevelMapping(Dim.X, 32, Span(1)),
                 LevelMapping(Dim.Y, 2, SpanAll()))),
        (64, 8),
        id="outer-on-x",
    ),
    pytest.param(
        Mapping((LevelMapping(Dim.X, 32, Span(1)), seq_level())),
        (64, 16),
        id="one-d",
    ),
    pytest.param(
        Mapping((LevelMapping(Dim.Y, 2, Span(2)),
                 LevelMapping(Dim.X, 32, SpanAll()))),
        (16, 64),
        id="span-2",
    ),
    pytest.param(
        Mapping((LevelMapping(Dim.Y, 1, Span(1)),
                 LevelMapping(Dim.X, 32, Split(2)))),
        (4, 128),
        id="split-2",
    ),
]


class TestSumRowsTrace:
    """sumRows: the read m[i, j] under several mappings."""

    @pytest.mark.parametrize("mapping,sizes", CASES)
    def test_issue_counts_match(self, sum_rows_program, mapping, sizes):
        R, C = sizes
        ka, env = analyze(sum_rows_program, R=R, C=C)
        site = m_site(ka)
        stats = trace_site(site, mapping, [R, C], TESLA_K20C, env)
        issues, _ = analytic(site, mapping, sizes, env)
        assert stats.total_warp_issues == pytest.approx(issues, rel=0.25)

    @pytest.mark.parametrize("mapping,sizes", CASES)
    def test_transactions_per_issue_match(
        self, sum_rows_program, mapping, sizes
    ):
        R, C = sizes
        ka, env = analyze(sum_rows_program, R=R, C=C)
        site = m_site(ka)
        stats = trace_site(site, mapping, [R, C], TESLA_K20C, env)
        _, trans = analytic(site, mapping, sizes, env)
        assert stats.transactions_per_issue == pytest.approx(trans, rel=0.3)

    @pytest.mark.parametrize("mapping,sizes", CASES)
    def test_total_traffic_matches(self, sum_rows_program, mapping, sizes):
        """The product (issues x transactions) is what the cost model
        charges; it must track the brute-force total."""
        R, C = sizes
        ka, env = analyze(sum_rows_program, R=R, C=C)
        site = m_site(ka)
        stats = trace_site(site, mapping, [R, C], TESLA_K20C, env)
        issues, trans = analytic(site, mapping, sizes, env)
        assert stats.total_transactions == pytest.approx(
            issues * trans, rel=0.3
        )


class TestOrderingPreserved:
    """Whatever the absolute agreement, the brute-force trace must agree
    with the model about WHICH mapping moves less memory."""

    def test_coalesced_vs_strided_ordering(self, sum_rows_program):
        R, C = 32, 64
        ka, env = analyze(sum_rows_program, R=R, C=C)
        site = m_site(ka)
        good = Mapping((LevelMapping(Dim.Y, 2, Span(1)),
                        LevelMapping(Dim.X, 32, SpanAll())))
        bad = Mapping((LevelMapping(Dim.X, 32, Span(1)),
                       LevelMapping(Dim.Y, 2, SpanAll())))
        t_good = trace_site(site, good, [R, C], TESLA_K20C, env)
        t_bad = trace_site(site, bad, [R, C], TESLA_K20C, env)
        assert t_good.total_transactions < t_bad.total_transactions
        # and the analytic model agrees
        _, a_good = analytic(site, good, (R, C), env)
        _, a_bad = analytic(site, bad, (R, C), env)
        assert a_good < a_bad

    def test_layout_strides_effect(self, sum_weighted_cols_program):
        """Tracing the temp with Fig 11(a) vs (b) strides reproduces the
        layout optimization's effect."""
        R, C = 32, 32
        ka, env = analyze(sum_weighted_cols_program, R=R, C=C)
        temp = next(
            s for s in ka.accesses.sites
            if s.flexible_layout and s.kind == "read"
        )
        mapping = Mapping((LevelMapping(Dim.X, 32, Span(1)),
                           LevelMapping(Dim.Y, 2, SpanAll())))
        row_major = (R, 1)   # Fig 11(a): temp[j][k]
        col_major = (1, C)   # Fig 11(b): temp[k][j]
        t_bad = trace_site(temp, mapping, [R, C], TESLA_K20C, env,
                           strides=row_major)
        t_good = trace_site(temp, mapping, [R, C], TESLA_K20C, env,
                            strides=col_major)
        assert t_good.total_transactions < t_bad.total_transactions


class TestTraceability:
    def test_gather_rejected(self):
        from repro.apps.qpscd import build_qpscd
        from repro.errors import SimulationError
        from repro.analysis.mapping import seq_level

        pa = analyze_program(build_qpscd(), S=8, N=8, C=8)
        ka = pa.kernel(0)
        a_site = next(s for s in ka.accesses.sites if s.array_key == "A")
        mapping = Mapping((LevelMapping(Dim.X, 32, Span(1)), seq_level()))
        with pytest.raises(SimulationError, match="not traceable"):
            trace_site(a_site, mapping, [8, 8], TESLA_K20C, pa.env)

    def test_trace_kernel_covers_affine_sites(self, sum_rows_program):
        from repro.gpusim.trace import trace_kernel

        pa = analyze_program(sum_rows_program, R=16, C=32)
        ka = pa.kernel(0)
        mapping = Mapping((LevelMapping(Dim.Y, 2, Span(1)),
                           LevelMapping(Dim.X, 32, SpanAll())))
        results = trace_kernel(ka, mapping, [16, 32], TESLA_K20C)
        assert len(results) >= 1


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    bx=st.sampled_from([8, 16, 32]),
    by=st.sampled_from([1, 2, 4]),
    outer_span=st.integers(min_value=1, max_value=2),
    x_is_inner=st.booleans(),
    rows=st.integers(min_value=32, max_value=64),
    cols=st.integers(min_value=32, max_value=80),
)
@settings(max_examples=25, deadline=None)
def test_trace_matches_model_for_random_mappings(
    bx, by, outer_span, x_is_inner, rows, cols
):
    """Property: for random geometries whose domains reasonably fill the
    blocks, the analytic traffic product (issues x transactions) tracks
    the exhaustive trace.  The model ignores bounds-guard savings at
    partial blocks/warps, so the tolerance combines a relative band with
    an absolute slack proportional to one block's worth of issues.
    """
    from tests.conftest import make_sum_rows

    program = make_sum_rows()
    ka, env = analyze(program, R=rows, C=cols)
    site = m_site(ka)
    if x_is_inner:
        mapping = Mapping(
            (LevelMapping(Dim.Y, by, Span(outer_span)),
             LevelMapping(Dim.X, bx, SpanAll()))
        )
    else:
        mapping = Mapping(
            (LevelMapping(Dim.X, bx, Span(outer_span)),
             LevelMapping(Dim.Y, by, SpanAll()))
        )
    stats = trace_site(site, mapping, [rows, cols], TESLA_K20C, env)
    issues, trans = analytic(site, mapping, (rows, cols), env)
    predicted = issues * trans
    actual = stats.total_transactions
    # Two modeled-vs-real gaps bound the tolerance:
    # * partial blocks: the model bills them at full rate while the
    #   trace's bounds guards skip the invalid tail (one block's worth);
    # * alignment: the model assumes 128B-aligned bases, so a real
    #   misaligned span can cost one extra segment per issue.
    warps_per_block = -(-mapping.threads_per_block() // 32)
    iters_per_thread = (
        mapping.thread_iterations(0, rows)
        * mapping.thread_iterations(1, cols)
    )
    slack = trans * iters_per_thread * warps_per_block + issues
    assert (
        predicted == pytest.approx(actual, rel=0.4)
        or abs(predicted - actual) <= slack
    )


class TestThreeLevelTrace:
    """The trace generalizes to deeper nests (msmbuilder-style)."""

    def test_three_level_traffic_matches(self):
        from repro.apps.msmbuilder import build_msmbuilder

        program = build_msmbuilder()
        ka, env = analyze(program, P=8, K=6, D=32)
        site = next(
            s for s in ka.accesses.sites if s.array_key == "X"
        )
        mapping = Mapping(
            (
                LevelMapping(Dim.Z, 2, Span(1)),
                LevelMapping(Dim.Y, 2, Span(1)),
                LevelMapping(Dim.X, 32, SpanAll()),
            )
        )
        stats = trace_site(site, mapping, [8, 6, 32], TESLA_K20C, env)
        tpb = mapping.threads_per_block()
        blocks = mapping.total_blocks([8, 6, 32])
        warps = blocks * (-(-tpb // 32))
        issues = _site_issues(site, mapping, [8, 6, 32], warps,
                              TESLA_K20C, env)
        trans = warp_transactions(site, mapping, TESLA_K20C).transactions
        assert stats.total_transactions == pytest.approx(
            issues * trans, rel=0.35
        )

    def test_three_level_dim_choice_ordering(self):
        """Tracing confirms the model's preference: D (unit stride) on x
        moves less memory than K on x."""
        from repro.apps.msmbuilder import build_msmbuilder

        program = build_msmbuilder()
        ka, env = analyze(program, P=8, K=32, D=32)
        site = next(s for s in ka.accesses.sites if s.array_key == "Cent")
        good = Mapping(
            (
                LevelMapping(Dim.Z, 2, Span(1)),
                LevelMapping(Dim.Y, 2, Span(1)),
                LevelMapping(Dim.X, 32, SpanAll()),
            )
        )
        bad = Mapping(
            (
                LevelMapping(Dim.Z, 2, Span(1)),
                LevelMapping(Dim.X, 32, Span(1)),
                LevelMapping(Dim.Y, 2, SpanAll()),
            )
        )
        t_good = trace_site(site, good, [8, 32, 32], TESLA_K20C, env)
        t_bad = trace_site(site, bad, [8, 32, 32], TESLA_K20C, env)
        assert t_good.total_transactions < t_bad.total_transactions
