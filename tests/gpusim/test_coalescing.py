"""Tests for the warp-level coalescing model."""

import pytest

from repro.analysis.access import AccessSite, LinearForm
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll, seq_level
from repro.gpusim.coalescing import (
    distinct_warp_combos,
    lane_coordinates,
    warp_transactions,
)
from repro.gpusim.device import TESLA_K20C
from repro.ir.expr import Const, Var
from repro.ir.patterns import Map
from repro.ir.types import I64


def make_site(axis_forms, shape, stack_names, elem_bytes=8, kind="read"):
    patterns = []
    for name, size in zip(stack_names, shape + (1000,) * 5):
        patterns.append(Map(Const(10**4), Var(name, I64), Const(1.0)))
    return AccessSite(
        array_key="a",
        kind=kind,
        elem_bytes=elem_bytes,
        axis_forms=tuple(axis_forms),
        shape=tuple(shape),
        pattern_stack=tuple(patterns),
    )


def mapping_2d(bx=32, by=4, x_level=1):
    if x_level == 1:
        return Mapping(
            (
                LevelMapping(Dim.Y, by, Span(1)),
                LevelMapping(Dim.X, bx, Span(1)),
            )
        )
    return Mapping(
        (
            LevelMapping(Dim.X, bx, Span(1)),
            LevelMapping(Dim.Y, by, Span(1)),
        )
    )


class TestLaneCoordinates:
    def test_x_varies_fastest(self):
        """Figure 4b: linear thread ids fill x first, then y."""
        coords = lane_coordinates({Dim.X: 16, Dim.Y: 4}, 32)
        assert coords[0] == {Dim.X: 0, Dim.Y: 0}
        assert coords[15] == {Dim.X: 15, Dim.Y: 0}
        assert coords[16] == {Dim.X: 0, Dim.Y: 1}
        assert coords[31] == {Dim.X: 15, Dim.Y: 1}

    def test_wide_x_spans_whole_warp(self):
        coords = lane_coordinates({Dim.X: 64, Dim.Y: 2}, 32)
        assert all(c[Dim.Y] == 0 for c in coords)
        assert [c[Dim.X] for c in coords] == list(range(32))


class TestTransactions:
    def test_unit_stride_f64_two_segments(self):
        """32 lanes x 8B contiguous = 256B = two 128B segments."""
        site = make_site(
            [LinearForm.index("i"), LinearForm.index("j")],
            (1024, 1024),
            ("i", "j"),
        )
        m = mapping_2d(bx=32, by=4, x_level=1)
        profile = warp_transactions(site, m, TESLA_K20C)
        assert profile.transactions == 2
        assert profile.fully_coalesced

    def test_unit_stride_f32_one_segment(self):
        site = make_site(
            [LinearForm.index("i"), LinearForm.index("j")],
            (1024, 1024),
            ("i", "j"),
            elem_bytes=4,
        )
        m = mapping_2d(bx=32, by=4, x_level=1)
        assert warp_transactions(site, m, TESLA_K20C).transactions == 1

    def test_large_stride_one_per_lane(self):
        """The inner index mapped to y: warp lanes stride by the row
        length, one transaction each."""
        site = make_site(
            [LinearForm.index("i"), LinearForm.index("j")],
            (1024, 1024),
            ("i", "j"),
        )
        m = mapping_2d(bx=32, by=4, x_level=0)  # x is the *outer* level
        profile = warp_transactions(site, m, TESLA_K20C)
        assert profile.transactions == 32
        assert not profile.fully_coalesced

    def test_broadcast_single_segment(self):
        """All lanes reading the same element coalesce to one segment."""
        site = make_site(
            [LinearForm.constant(5.0)], (1024,), ("i",)
        )
        m = mapping_2d()
        assert warp_transactions(site, m, TESLA_K20C).transactions == 1

    def test_opaque_dep_on_warp_varying_dim_scatters(self):
        """A gather whose base varies per x-lane cannot coalesce."""
        site = make_site(
            [LinearForm.opaque(frozenset({"j"}))],
            (10**6,),
            ("i", "j"),
        )
        m = mapping_2d(bx=32, by=4, x_level=1)  # j rides x
        assert warp_transactions(site, m, TESLA_K20C).transactions == 32

    def test_opaque_dep_on_warp_constant_dim_groups(self):
        """A per-row base (e.g. CSR row start) is warp-constant when the
        row index rides a dim that does not vary within the warp."""
        site = make_site(
            [
                LinearForm(
                    coeffs=(("j", 1.0),), opaque_deps=frozenset({"i"})
                )
            ],
            (10**6,),
            ("i", "j"),
        )
        m = mapping_2d(bx=32, by=4, x_level=1)  # i rides y: one group
        assert warp_transactions(site, m, TESLA_K20C).transactions == 2

    def test_random_per_iteration(self):
        """A random index drawn per outer iteration scatters when outer
        varies within the warp, coalesces when it does not."""
        form = LinearForm(
            coeffs=(("j", 1.0),),
            opaque_deps=frozenset({"i"}),
            has_random=True,
        )
        site = make_site([form], (10**6,), ("i", "j"))
        warp_constant = mapping_2d(bx=32, by=4, x_level=1)
        assert warp_transactions(site, warp_constant, TESLA_K20C).transactions == 2
        warp_varying = mapping_2d(bx=32, by=4, x_level=0)
        assert warp_transactions(site, warp_varying, TESLA_K20C).transactions == 32

    def test_seq_level_constant_within_warp(self):
        site = make_site(
            [LinearForm.index("i"), LinearForm.index("j")],
            (1024, 1024),
            ("i", "j"),
        )
        m = Mapping((LevelMapping(Dim.X, 32, Span(1)), seq_level()))
        # j sequential per thread: within a warp only i varies -> strided
        assert warp_transactions(site, m, TESLA_K20C).transactions == 32

    def test_custom_strides_change_coalescing(self):
        """The Figure 11 layout effect: same logical access, different
        physical strides, different transactions."""
        site = make_site(
            [LinearForm.index("i"), LinearForm.index("j")],
            (1024, 1024),
            ("i", "j"),
        )
        m = mapping_2d(bx=32, by=4, x_level=0)  # outer rides x
        bad = warp_transactions(site, m, TESLA_K20C, strides=(1024, 1))
        good = warp_transactions(site, m, TESLA_K20C, strides=(1, 1024))
        assert bad.transactions == 32
        assert good.transactions == 2


class TestDistinctCombos:
    def test_outer_write_one_combo_per_warp(self):
        site = make_site([LinearForm.index("i")], (1024,), ("i",), kind="write")
        m = mapping_2d(bx=32, by=4, x_level=1)  # i rides y, 4-high block
        # warp covers y in {0}: one distinct i per warp... block 32x4:
        # first warp = 32 x-lanes at y=0 -> 1 combo
        assert distinct_warp_combos(site, m, TESLA_K20C) == 1

    def test_inner_write_many_combos(self):
        site = make_site(
            [LinearForm.index("i"), LinearForm.index("j")],
            (1024, 1024),
            ("i", "j"),
            kind="write",
        )
        m = mapping_2d(bx=32, by=4, x_level=1)
        assert distinct_warp_combos(site, m, TESLA_K20C) == 32
