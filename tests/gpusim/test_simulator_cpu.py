"""Tests for the simulator facade and the CPU reference model."""

import pytest

from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll
from repro.gpusim.cpu import XEON_X5550_DUAL, estimate_cpu_time_us
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.simulator import decide_mapping, simulate_program


class TestSimulateProgram:
    def test_strategy_names_resolve(self, sum_rows_program):
        for strategy in ("multidim", "1d", "thread-block/thread",
                         "warp-based"):
            cost = simulate_program(sum_rows_program, strategy,
                                    R=1024, C=1024)
            assert cost.total_us > 0

    def test_explicit_mapping(self, sum_rows_program):
        m = Mapping(
            (
                LevelMapping(Dim.Y, 2, Span(1)),
                LevelMapping(Dim.X, 128, SpanAll()),
            )
        )
        cost = simulate_program(sum_rows_program, m, R=1024, C=1024)
        assert cost.total_us > 0

    def test_multi_kernel_sums(self):
        from repro.apps.naive_bayes import build_naive_bayes

        cost = simulate_program(
            build_naive_bayes(), "multidim", DOCS=512, WORDS=512
        )
        assert len(cost.kernels) == 2
        assert cost.total_us == pytest.approx(
            sum(k.total_us for k in cost.kernels)
        )

    def test_transfer_included_when_asked(self, sum_rows_program):
        base = simulate_program(sum_rows_program, "multidim",
                                R=1024, C=1024)
        with_xfer = simulate_program(
            sum_rows_program, "multidim", R=1024, C=1024,
            input_bytes=1024 * 1024 * 8.0, include_transfer=True,
        )
        assert with_xfer.transfer_us > 0
        assert with_xfer.total_us > base.total_us

    def test_multidim_beats_or_matches_fixed(self, sum_cols_program):
        """The paper's headline claim on the running example."""
        base = simulate_program(
            sum_cols_program, "multidim", R=65536, C=1024
        ).total_us
        for strategy in ("1d", "thread-block/thread", "warp-based"):
            other = simulate_program(
                sum_cols_program, strategy, R=65536, C=1024
            ).total_us
            assert other >= base * 0.9  # small model-noise allowance


class TestDecideMapping:
    def test_multidim_records_score(self, sum_rows_program):
        pa = analyze_program(sum_rows_program, R=256, C=256)
        d = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        assert d.score is not None and d.score > 0

    def test_optimize_builds_plan(self, sum_weighted_cols_program):
        pa = analyze_program(sum_weighted_cols_program, R=256, C=256)
        d = decide_mapping(pa.kernel(0), "multidim", TESLA_K20C)
        assert d.plan.prealloc
        assert len(d.plan.layout_strides) == 1

    def test_no_optimize_bare_plan(self, sum_weighted_cols_program):
        pa = analyze_program(sum_weighted_cols_program, R=256, C=256)
        d = decide_mapping(
            pa.kernel(0), "multidim", TESLA_K20C, optimize=False
        )
        assert d.plan.layout_strides == ()


class TestCpuModel:
    def test_peak_flops(self):
        assert XEON_X5550_DUAL.peak_flops == pytest.approx(
            8 * 2 * 2.67e9
        )

    def test_roofline_max(self, sum_rows_program):
        """Bandwidth-bound kernels are priced by bytes, not flops."""
        pa = analyze_program(sum_rows_program, R=4096, C=4096)
        t = estimate_cpu_time_us(pa.kernel(0), pa.env)
        bytes_touched = 4096 * 4096 * 8
        bw_floor_us = bytes_touched / (20.0 * 1e9) * 1e6
        assert t >= bw_floor_us * 0.99

    def test_efficiency_scales_compute(self):
        from repro.apps.msmbuilder import build_msmbuilder

        pa = analyze_program(build_msmbuilder(), P=64, K=64, D=64)
        fast = estimate_cpu_time_us(pa.kernel(0), pa.env, efficiency=1.0)
        slow = estimate_cpu_time_us(pa.kernel(0), pa.env, efficiency=0.1)
        assert slow > fast
