"""Tests for the kernel cost model: the paper's qualitative effects must
be explicit, monotone consequences of the model."""

import pytest

from repro.analysis.analyzer import analyze_program
from repro.analysis.mapping import Dim, LevelMapping, Mapping, Span, SpanAll
from repro.analysis.strategies import one_d, thread_block_thread, warp_based
from repro.gpusim.cost import LaunchPlan, count_ops, estimate_kernel_cost
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.simulator import decide_mapping
from repro.errors import SimulationError


def kernel(program, **sizes):
    pa = analyze_program(program, **sizes)
    return pa.kernel(0), pa.env


def cost_of(ka, env, mapping, plan=None):
    return estimate_kernel_cost(
        ka, mapping, TESLA_K20C, env, plan or LaunchPlan(prealloc=True)
    )


class TestCoalescingEffect:
    def test_coalesced_beats_strided(self, sum_rows_program):
        """The central claim: dimension assignment changes time."""
        ka, env = kernel(sum_rows_program, R=8192, C=8192)
        good = Mapping(
            (
                LevelMapping(Dim.Y, 4, Span(1)),
                LevelMapping(Dim.X, 256, SpanAll()),
            )
        )
        bad = Mapping(
            (
                LevelMapping(Dim.X, 256, Span(1)),
                LevelMapping(Dim.Y, 4, SpanAll()),
            )
        )
        assert cost_of(ka, env, good).total_us < cost_of(ka, env, bad).total_us

    def test_traffic_reflects_transactions(self, sum_rows_program):
        ka, env = kernel(sum_rows_program, R=8192, C=8192)
        good = Mapping(
            (
                LevelMapping(Dim.Y, 4, Span(1)),
                LevelMapping(Dim.X, 256, SpanAll()),
            )
        )
        bad = Mapping(
            (
                LevelMapping(Dim.X, 256, Span(1)),
                LevelMapping(Dim.Y, 4, SpanAll()),
            )
        )
        assert (
            cost_of(ka, env, good).traffic_bytes
            < cost_of(ka, env, bad).traffic_bytes
        )


class TestUnderutilization:
    def test_narrow_launch_is_slow(self, sum_cols_program):
        """1D on a 1K-wide outer level cannot hide latency."""
        ka, env = kernel(sum_cols_program, R=65536, C=1024)
        narrow = one_d(ka.level_sizes())
        wide = decide_mapping(ka, "multidim", TESLA_K20C).mapping
        narrow_cost = cost_of(ka, env, narrow)
        wide_cost = cost_of(ka, env, wide)
        assert narrow_cost.total_us > 5 * wide_cost.total_us
        assert narrow_cost.occupancy.occupancy < 0.1


class TestBlockOverhead:
    def test_many_blocks_cost_more(self, sum_rows_program):
        """Fig 3: thread-block/thread pays for 64K blocks."""
        ka, env = kernel(sum_rows_program, R=65536, C=1024)
        tbt = thread_block_thread(ka.level_sizes())
        c = cost_of(ka, env, tbt)
        assert c.occupancy.total_blocks == 65536
        assert c.block_sched_us > 100


class TestMalloc:
    def test_malloc_dominates_without_prealloc(
        self, sum_weighted_cols_program
    ):
        from repro.optim import OptimizationFlags, build_plan

        ka, env = kernel(sum_weighted_cols_program, R=8192, C=8192)
        mapping = decide_mapping(ka, "multidim", TESLA_K20C).mapping
        with_malloc = cost_of(ka, env, mapping, LaunchPlan(prealloc=False))
        optimized = build_plan(ka, mapping, TESLA_K20C,
                               OptimizationFlags(True, True, True))
        without = cost_of(ka, env, mapping, optimized)
        assert with_malloc.malloc_us > 0
        assert without.malloc_us == 0
        assert with_malloc.total_us > 5 * without.total_us

    def test_malloc_cost_scales_with_alloc_count(
        self, sum_weighted_cols_program
    ):
        ka_small, env_small = kernel(sum_weighted_cols_program, R=64, C=512)
        ka_big, env_big = kernel(sum_weighted_cols_program, R=64, C=4096)
        m_small = decide_mapping(ka_small, "multidim", TESLA_K20C).mapping
        c_small = cost_of(ka_small, env_small, m_small, LaunchPlan())
        c_big = cost_of(ka_big, env_big, m_small, LaunchPlan())
        assert c_big.malloc_us == pytest.approx(8 * c_small.malloc_us)


class TestLayoutEffect:
    def test_layout_strides_change_time(self, sum_weighted_cols_program):
        """Figure 11/16: the preallocated temp's physical layout matters."""
        from repro.optim import OptimizationFlags, build_plan

        ka, env = kernel(sum_weighted_cols_program, R=8192, C=8192)
        mapping = decide_mapping(
            ka, "multidim", TESLA_K20C, optimize=False
        ).mapping
        opt = build_plan(ka, mapping, TESLA_K20C,
                         OptimizationFlags(True, True, False))
        fixed = build_plan(ka, mapping, TESLA_K20C,
                           OptimizationFlags(True, False, False))
        assert (
            cost_of(ka, env, mapping, opt).total_us
            < cost_of(ka, env, mapping, fixed).total_us
        )


class TestCombiner:
    def test_split_adds_combiner_cost(self, sum_rows_program):
        from repro.analysis.mapping import Split

        ka, env = kernel(sum_rows_program, R=64, C=10**6)
        split = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(1)),
                LevelMapping(Dim.X, 256, Split(4)),
            )
        )
        c = cost_of(ka, env, split)
        assert c.combiner_us > 0

    def test_span_all_no_combiner(self, sum_rows_program):
        ka, env = kernel(sum_rows_program, R=64, C=10**6)
        m = Mapping(
            (
                LevelMapping(Dim.Y, 1, Span(1)),
                LevelMapping(Dim.X, 256, SpanAll()),
            )
        )
        assert cost_of(ka, env, m).combiner_us == 0


class TestSharedMemoryPrefetch:
    def test_prefetch_reduces_outer_traffic(self):
        from repro.apps.qpscd import build_qpscd

        prog = build_qpscd()
        ka, env = kernel(prog, S=65536, N=65536, C=1024)
        mapping = decide_mapping(
            ka, "multidim", TESLA_K20C, optimize=False
        ).mapping
        base = cost_of(ka, env, mapping, LaunchPlan(prealloc=True))
        pre = cost_of(
            ka,
            env,
            mapping,
            LaunchPlan(prealloc=True, smem_prefetch=frozenset({"y"})),
        )
        assert pre.traffic_bytes <= base.traffic_bytes


class TestOps:
    def test_count_ops_scales_with_sizes(self, sum_rows_program):
        from repro.analysis.shapes import SizeEnv

        small = count_ops(sum_rows_program.result,
                          SizeEnv(values={"R": 10, "C": 10}))
        big = count_ops(sum_rows_program.result,
                        SizeEnv(values={"R": 10, "C": 100}))
        assert big == pytest.approx(10 * small, rel=0.2)

    def test_fn_call_flops_counted(self):
        from repro.apps.mandelbrot import build_mandelbrot
        from repro.analysis.shapes import SizeEnv

        prog = build_mandelbrot()
        ops = count_ops(prog.result, SizeEnv(values={"H": 2, "W": 2}))
        assert ops >= 4 * 8 * 32  # 4 pixels x registered flops


class TestValidation:
    def test_level_mismatch_raises(self, sum_rows_program):
        ka, env = kernel(sum_rows_program, R=64, C=64)
        flat = Mapping((LevelMapping(Dim.X, 256, Span(1)),))
        with pytest.raises(SimulationError):
            cost_of(ka, env, flat)


class TestSkewModel:
    def test_skew_penalizes_sequential_dynamic_loops(self):
        from repro.apps.bfs import build_bfs_step
        from repro.analysis.shapes import SizeEnv

        prog = build_bfs_step()
        pa = analyze_program(prog, N=65536, E=65536 * 12)
        ka = pa.kernel(0)
        oned = one_d(ka.level_sizes())
        balanced_env = pa.env.bind()
        balanced_env.skew = 1.0
        skewed = cost_of(ka, pa.env, oned)
        balanced = cost_of(ka, balanced_env, oned)
        assert skewed.total_us > balanced.total_us
