"""Tests for the occupancy model and device catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import DEVICES, TESLA_C2050, TESLA_K20C, default_device
from repro.gpusim.occupancy import compute_occupancy


class TestDeviceCatalog:
    def test_k20c_matches_paper(self):
        """The paper: K20c has 13 SMs, 2048 threads/SM max."""
        assert TESLA_K20C.num_sms == 13
        assert TESLA_K20C.max_threads_per_sm == 2048
        assert TESLA_K20C.warp_size == 32
        assert TESLA_K20C.max_threads_per_block == 1024

    def test_c2050_sms(self):
        """Section II mentions 14 SMs for the C2050."""
        assert TESLA_C2050.num_sms == 14

    def test_default_is_k20c(self):
        assert default_device() is TESLA_K20C

    def test_registry(self):
        assert "Tesla K20c" in DEVICES

    def test_derived_quantities(self):
        assert TESLA_K20C.max_warps_per_sm == 64
        assert TESLA_K20C.max_resident_warps == 13 * 64
        assert TESLA_K20C.peak_flops > 1e12


class TestOccupancy:
    def test_full_occupancy(self):
        occ = compute_occupancy(TESLA_K20C, total_blocks=1000,
                                threads_per_block=256)
        assert occ.occupancy == 1.0
        assert occ.resident_warps == TESLA_K20C.max_resident_warps

    def test_few_threads(self):
        occ = compute_occupancy(TESLA_K20C, total_blocks=4,
                                threads_per_block=256)
        assert occ.resident_warps == 32
        assert occ.occupancy < 0.05

    def test_block_slot_limit(self):
        # tiny blocks: limited by 16 blocks/SM, not threads
        occ = compute_occupancy(TESLA_K20C, total_blocks=10**6,
                                threads_per_block=32)
        assert occ.resident_blocks == 13 * 16
        assert occ.resident_warps == 13 * 16  # one warp per block

    def test_shared_memory_limit(self):
        occ = compute_occupancy(
            TESLA_K20C, total_blocks=1000, threads_per_block=128,
            shared_mem_per_block=24 * 1024,
        )
        # 48KB/SM with 24KB blocks -> 2 blocks/SM
        assert occ.resident_blocks == 13 * 2

    def test_oversized_shared_memory_degrades(self):
        occ = compute_occupancy(
            TESLA_K20C, total_blocks=10, threads_per_block=128,
            shared_mem_per_block=100 * 1024,
        )
        assert occ.resident_blocks >= 1  # degrades, never zero

    def test_waves(self):
        occ = compute_occupancy(TESLA_K20C, total_blocks=13 * 8 * 3,
                                threads_per_block=256)
        assert occ.waves == pytest.approx(3.0)

    def test_bandwidth_fraction_full_at_high_occupancy(self):
        occ = compute_occupancy(TESLA_K20C, 10**4, 256)
        assert occ.bandwidth_fraction == 1.0

    def test_bandwidth_fraction_superlinear_at_low(self):
        occ = compute_occupancy(TESLA_K20C, 1, 64)
        linear = occ.resident_warps / TESLA_K20C.warps_for_peak_bw
        assert occ.bandwidth_fraction < linear


@given(
    blocks=st.integers(min_value=1, max_value=10**6),
    tpb=st.sampled_from([1, 32, 64, 128, 256, 512, 1024]),
)
@settings(max_examples=60)
def test_occupancy_invariants(blocks, tpb):
    occ = compute_occupancy(TESLA_K20C, blocks, tpb)
    assert 0 < occ.resident_warps <= TESLA_K20C.max_resident_warps
    assert occ.resident_blocks <= blocks
    assert 0.0 <= occ.occupancy <= 1.0
    assert 0.0 <= occ.bandwidth_fraction <= 1.0
    assert occ.total_warps >= occ.resident_warps


@given(
    blocks_small=st.integers(min_value=1, max_value=50),
    extra=st.integers(min_value=1, max_value=1000),
)
@settings(max_examples=40)
def test_more_blocks_never_reduce_residency(blocks_small, extra):
    a = compute_occupancy(TESLA_K20C, blocks_small, 256)
    b = compute_occupancy(TESLA_K20C, blocks_small + extra, 256)
    assert b.resident_warps >= a.resident_warps
