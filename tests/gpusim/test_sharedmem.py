"""Tests for the shared-memory bank-conflict model."""

import pytest

from repro.gpusim.device import TESLA_K20C
from repro.gpusim.sharedmem import (
    NUM_BANKS,
    bank_conflicts,
    strided_access_conflicts,
    tree_reduce_conflict_factor,
)


class TestBankConflicts:
    def test_unit_stride_conflict_free(self):
        profile = strided_access_conflicts(1)
        assert profile.conflict_free
        assert profile.serialization == 1

    def test_stride_two_two_way(self):
        assert strided_access_conflicts(2).serialization == 2

    def test_stride_32_full_serialization(self):
        assert strided_access_conflicts(32).serialization == 32

    def test_odd_stride_conflict_free(self):
        """Classic trick: odd strides avoid conflicts entirely."""
        for stride in (1, 3, 5, 7, 33):
            assert strided_access_conflicts(stride).conflict_free, stride

    def test_broadcast_is_free(self):
        profile = bank_conflicts([0] * 32)
        assert profile.conflict_free

    def test_mixed_same_bank_distinct_words(self):
        profile = bank_conflicts([0, NUM_BANKS, 2 * NUM_BANKS])
        assert profile.serialization == 3

    def test_fewer_lanes(self):
        profile = strided_access_conflicts(32, active_lanes=4)
        assert profile.serialization == 4


class TestTreeReduceFactor:
    def test_reduce_along_x_is_free(self):
        """smem[lin] with the reduce dim at stride 1: conflict-free."""
        assert tree_reduce_conflict_factor(1, 256, TESLA_K20C) == 1.0

    def test_reduce_along_y_with_pow2_x_conflicts(self):
        """Reduce along y with blockDim.x = 32: every lane of a warp is
        in the same bank."""
        factor = tree_reduce_conflict_factor(32, 32, TESLA_K20C)
        assert factor == 32.0

    def test_tree_reduce_linear_ids_conflict_free(self):
        """The generated tree reduce indexes scratch by the linear thread
        id: a warp's 32 lanes touch 32 consecutive words, which is
        conflict-free — the reason the cost model charges no conflict
        factor for reductions."""
        profile = bank_conflicts(list(range(32)))
        assert profile.conflict_free
