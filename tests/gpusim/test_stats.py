"""Tests for the cost-result records and their reporting."""

import math

import pytest

from repro.errors import SimulationError
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.stats import AccessCost, KernelCost, ProgramCost
from repro.resilience.faults import FaultPlan, inject_faults
from repro.runtime.session import GpuSession


def make_cost(**overrides):
    defaults = dict(
        launch_us=6.0,
        block_sched_us=1.0,
        malloc_us=0.0,
        mem_bandwidth_us=100.0,
        mem_latency_us=40.0,
        compute_us=30.0,
        shared_mem_us=2.0,
        atomic_us=0.0,
        combiner_us=0.0,
        traffic_bytes=1e6,
    )
    defaults.update(overrides)
    return KernelCost(**defaults)


class TestKernelCost:
    def test_memory_is_max_of_bw_and_latency(self):
        cost = make_cost(mem_bandwidth_us=100.0, mem_latency_us=250.0)
        assert cost.memory_us == 250.0

    def test_total_overlaps_memory_and_compute(self):
        cost = make_cost(mem_bandwidth_us=100.0, compute_us=30.0)
        # memory dominates; compute hides under it
        assert cost.total_us == pytest.approx(6 + 1 + 100 + 2)

    def test_compute_bound_kernel(self):
        cost = make_cost(mem_bandwidth_us=10.0, mem_latency_us=5.0,
                         compute_us=500.0)
        assert cost.total_us == pytest.approx(6 + 1 + 500 + 2)

    def test_overheads_always_additive(self):
        cost = make_cost(malloc_us=1000.0, combiner_us=20.0, atomic_us=3.0)
        assert cost.total_us == pytest.approx(6 + 1 + 1000 + 100 + 2 + 3 + 20)

    def test_describe_mentions_terms(self):
        cost = make_cost()
        cost.occupancy = compute_occupancy(TESLA_K20C, 100, 256)
        text = cost.describe()
        for term in ("launch", "malloc", "mem (bw)", "compute",
                     "occupancy", "traffic"):
            assert term in text

    def test_access_costs_attachable(self):
        cost = make_cost()
        cost.accesses.append(
            AccessCost(
                array_key="m", kind="read", level=1, issues=10.0,
                transactions_per_issue=2, issued_bytes=2560.0,
                footprint_bytes=1000.0, effective_bytes=1000.0,
            )
        )
        assert cost.accesses[0].array_key == "m"


class TestComponentInvariants:
    """``components()`` must account for ``total_us`` under the overlap
    rule: bandwidth/latency fold to their max, memory overlaps compute,
    everything else is additive."""

    @staticmethod
    def overlapped_sum(components):
        return (
            components["launch_us"]
            + components["block_sched_us"]
            + components["malloc_us"]
            + max(
                max(
                    components["mem_bandwidth_us"],
                    components["mem_latency_us"],
                ),
                components["compute_us"],
            )
            + components["shared_mem_us"]
            + components["atomic_us"]
            + components["combiner_us"]
        )

    def test_components_cover_every_time_field(self):
        comps = make_cost().components()
        assert set(comps) == set(KernelCost.COMPONENT_FIELDS)
        # Every *_us field of the dataclass is a component except the
        # non-time diagnostics; a new time field must join COMPONENT_FIELDS.
        time_fields = {
            f for f in vars(make_cost()) if f.endswith("_us")
        }
        assert time_fields == set(KernelCost.COMPONENT_FIELDS)

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            dict(mem_bandwidth_us=3.0, mem_latency_us=9.0, compute_us=1.0),
            dict(mem_bandwidth_us=3.0, mem_latency_us=2.0, compute_us=50.0),
            dict(malloc_us=7.0, atomic_us=1.5, combiner_us=4.0),
            dict(launch_us=0.0, block_sched_us=0.0, mem_bandwidth_us=0.0,
                 mem_latency_us=0.0, compute_us=0.0, shared_mem_us=0.0),
        ],
    )
    def test_total_equals_overlapped_component_sum(self, overrides):
        cost = make_cost(**overrides)
        assert cost.total_us == pytest.approx(
            self.overlapped_sum(cost.components())
        )

    def test_check_finite_flags_each_component(self):
        for name in KernelCost.COMPONENT_FIELDS:
            bad = make_cost(**{name: float("nan")}).check_finite()
            assert any(name in item for item in bad), name
        assert make_cost().check_finite() == []

    def test_check_finite_rejects_negative_time(self):
        assert make_cost(compute_us=-1.0).check_finite()


class TestCheckFiniteUnderInjection:
    """A nan/inf fault injected into the simulator stage must be caught
    by ``check_finite`` — never silently acted on."""

    @pytest.fixture
    def compiled(self, sum_cols_program):
        return GpuSession().compile(sum_cols_program, R=64, C=64)

    @pytest.mark.parametrize("kind", ["nan", "inf"])
    def test_program_cost_reports_poisoned_component(self, compiled, kind):
        with inject_faults(FaultPlan.single("simulator", kind=kind)):
            cost = compiled.estimate_cost()
        bad = cost.check_finite()
        assert bad and any("compute_us" in item for item in bad)

    def test_nan_hides_in_total_but_not_in_check_finite(self, compiled):
        # NaN compares False against everything, so the overlap max() in
        # total_us can silently swallow a poisoned compute_us.  This is
        # exactly why callers must go through check_finite.
        with inject_faults(FaultPlan.single("simulator", kind="nan")):
            cost = compiled.estimate_cost()
        assert math.isfinite(cost.total_us)
        assert cost.check_finite()

    def test_inf_propagates_to_total(self, compiled):
        with inject_faults(FaultPlan.single("simulator", kind="inf")):
            cost = compiled.estimate_cost()
        assert math.isinf(cost.total_us)

    @pytest.mark.parametrize("kind", ["nan", "inf"])
    def test_check_true_raises_typed_error(self, compiled, kind):
        with inject_faults(FaultPlan.single("simulator", kind=kind)):
            with pytest.raises(SimulationError) as info:
                compiled.estimate_cost(check=True)
        assert "non-finite" in str(info.value)


class TestProgramCost:
    def test_totals_sum_kernels_and_transfer(self):
        program = ProgramCost(
            kernels=[make_cost(), make_cost(launch_us=10.0)],
            transfer_us=50.0,
        )
        assert program.kernels_us == pytest.approx(
            program.kernels[0].total_us + program.kernels[1].total_us
        )
        assert program.total_us == pytest.approx(
            program.kernels_us + 50.0
        )

    def test_empty_program(self):
        assert ProgramCost().total_us == 0.0
