"""Tests for the cost-result records and their reporting."""

import pytest

from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.stats import AccessCost, KernelCost, ProgramCost


def make_cost(**overrides):
    defaults = dict(
        launch_us=6.0,
        block_sched_us=1.0,
        malloc_us=0.0,
        mem_bandwidth_us=100.0,
        mem_latency_us=40.0,
        compute_us=30.0,
        shared_mem_us=2.0,
        atomic_us=0.0,
        combiner_us=0.0,
        traffic_bytes=1e6,
    )
    defaults.update(overrides)
    return KernelCost(**defaults)


class TestKernelCost:
    def test_memory_is_max_of_bw_and_latency(self):
        cost = make_cost(mem_bandwidth_us=100.0, mem_latency_us=250.0)
        assert cost.memory_us == 250.0

    def test_total_overlaps_memory_and_compute(self):
        cost = make_cost(mem_bandwidth_us=100.0, compute_us=30.0)
        # memory dominates; compute hides under it
        assert cost.total_us == pytest.approx(6 + 1 + 100 + 2)

    def test_compute_bound_kernel(self):
        cost = make_cost(mem_bandwidth_us=10.0, mem_latency_us=5.0,
                         compute_us=500.0)
        assert cost.total_us == pytest.approx(6 + 1 + 500 + 2)

    def test_overheads_always_additive(self):
        cost = make_cost(malloc_us=1000.0, combiner_us=20.0, atomic_us=3.0)
        assert cost.total_us == pytest.approx(6 + 1 + 1000 + 100 + 2 + 3 + 20)

    def test_describe_mentions_terms(self):
        cost = make_cost()
        cost.occupancy = compute_occupancy(TESLA_K20C, 100, 256)
        text = cost.describe()
        for term in ("launch", "malloc", "mem (bw)", "compute",
                     "occupancy", "traffic"):
            assert term in text

    def test_access_costs_attachable(self):
        cost = make_cost()
        cost.accesses.append(
            AccessCost(
                array_key="m", kind="read", level=1, issues=10.0,
                transactions_per_issue=2, issued_bytes=2560.0,
                footprint_bytes=1000.0, effective_bytes=1000.0,
            )
        )
        assert cost.accesses[0].array_key == "m"


class TestProgramCost:
    def test_totals_sum_kernels_and_transfer(self):
        program = ProgramCost(
            kernels=[make_cost(), make_cost(launch_us=10.0)],
            transfer_us=50.0,
        )
        assert program.kernels_us == pytest.approx(
            program.kernels[0].total_us + program.kernels[1].total_us
        )
        assert program.total_us == pytest.approx(
            program.kernels_us + 50.0
        )

    def test_empty_program(self):
        assert ProgramCost().total_us == 0.0
