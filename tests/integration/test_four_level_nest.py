"""Four-level nests: the paper's footnote 3 — logical dimensions are not
limited to the three physical thread-block axes; extras linearize onto z.
"""

import numpy as np
import pytest

from repro import GpuSession
from repro.analysis import Dim, analyze_program
from repro.ir import Builder, F64
from repro.ir.builder import range_map


def build_batched_clustering():
    """dist[b][p][k] = scale[b] * sum_d (X[p,d] - Cent[k,d])^2."""
    b = Builder("batchedClustering")
    batches = b.size("B")
    frames = b.size("P")
    clusters = b.size("K")
    dims = b.size("D")
    x = b.matrix("X", F64, rows="P", cols="D")
    cent = b.matrix("Cent", F64, rows="K", cols="D")
    scale = b.vector("scale", F64, length="B")
    out = range_map(
        batches,
        lambda bi: range_map(
            frames,
            lambda pi: range_map(
                clusters,
                lambda ki: x.row(pi).zip_with(
                    cent.row(ki), lambda a, c: (a - c) * (a - c)
                ).reduce("+") * scale[bi],
                index_name="ki",
            ),
            index_name="pi",
        ),
        index_name="bi",
    )
    return b.build(out)


@pytest.fixture(scope="module")
def compiled():
    return GpuSession().compile(
        build_batched_clustering(), B=8, P=64, K=64, D=64
    )


class TestFourLevelMapping:
    def test_four_distinct_dims(self, compiled):
        mapping = compiled.mappings()[0]
        dims = {
            lm.dim for lm in mapping.levels if lm.parallel
        }
        assert len(dims) == 4
        assert Dim.W in dims

    def test_search_stays_fast(self):
        import time

        pa = analyze_program(
            build_batched_clustering(), B=8, P=64, K=64, D=64
        )
        start = time.time()
        pa.kernel(0).select_mapping()
        assert time.time() - start < 5.0  # "a few seconds" (Section IV-D)


class TestFourLevelCodegen:
    def test_z_axis_decomposition_emitted(self, compiled):
        """Dims beyond z decompose threadIdx.z with div/mod."""
        src = compiled.cuda_source
        assert "threadIdx.z %" in src or "(threadIdx.z / " in src

    def test_launch_folds_into_three_axes(self, compiled):
        kernel = compiled.module.kernels[0]
        cfg = kernel.launch_config([8, 64, 64, 64])
        assert len(cfg.block) == 3
        bx, by, bz = cfg.block
        assert bx * by * bz == kernel.mapping.threads_per_block()


class TestFourLevelExecution:
    def test_matches_numpy(self, compiled, rng):
        X = rng.random((6, 5))
        cent = rng.random((4, 5))
        scale = rng.random(3)
        out = compiled.run(
            X=X, Cent=cent, scale=scale, B=3, P=6, K=4, D=5
        )
        stacked = np.stack([np.stack(list(level)) for level in out])
        diff = X[:, None, :] - cent[None, :, :]
        expected = (diff * diff).sum(axis=2)[None] * scale[:, None, None]
        assert np.allclose(stacked, expected)

    def test_cost_model_handles_four_levels(self, compiled):
        assert compiled.estimate_time_us() > 0


class TestFourLevelTrace:
    """The trace validator generalizes to folded (>3 dim) mappings."""

    def test_trace_matches_model_with_dim_w(self):
        from repro.analysis.mapping import LevelMapping, Mapping, Span, SpanAll
        from repro.gpusim.coalescing import warp_transactions
        from repro.gpusim.cost import _site_issues
        from repro.gpusim import TESLA_K20C
        from repro.gpusim.trace import trace_site

        pa = analyze_program(build_batched_clustering(), B=4, P=4, K=4, D=8)
        ka = pa.kernel(0)
        site = next(s for s in ka.accesses.sites if s.array_key == "X")
        mapping = Mapping(
            (
                LevelMapping(Dim.W, 2, Span(1)),
                LevelMapping(Dim.Z, 2, Span(1)),
                LevelMapping(Dim.Y, 2, Span(1)),
                LevelMapping(Dim.X, 8, SpanAll()),
            )
        )
        sizes = [4, 4, 4, 8]
        stats = trace_site(site, mapping, sizes, TESLA_K20C, pa.env)
        tpb = mapping.threads_per_block()
        blocks = mapping.total_blocks(sizes)
        warps = blocks * (-(-tpb // 32))
        issues = _site_issues(site, mapping, sizes, warps,
                              TESLA_K20C, pa.env)
        trans = warp_transactions(site, mapping, TESLA_K20C).transactions
        assert stats.total_transactions == pytest.approx(
            issues * trans, rel=0.4
        )
