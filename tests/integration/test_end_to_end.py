"""End-to-end integration: compile -> run -> estimate across the stack."""

import numpy as np
import pytest

from repro import GpuSession, OptimizationFlags, TESLA_C2050, TESLA_K20C


class TestFullPipeline:
    def test_sum_rows_end_to_end(self, rng):
        from repro.apps.sums import SUM_ROWS

        session = GpuSession()
        compiled = session.compile(SUM_ROWS.build(), R=128, C=64)
        inputs = SUM_ROWS.workload(rng, R=128, C=64)
        out = compiled.run(**inputs)
        assert np.allclose(out, SUM_ROWS.reference(inputs))
        assert compiled.estimate_time_us() > 0
        assert "__global__" in compiled.cuda_source
        assert "__shared__" in compiled.cuda_source  # tree reduce emitted

    def test_pagerank_end_to_end(self, rng):
        from repro.apps.pagerank import PAGERANK

        session = GpuSession()
        compiled = session.compile(PAGERANK.build(), N=4096, E=65536)
        inputs = PAGERANK.workload(rng, N=120, avg_degree=5)
        out = compiled.run(**inputs)
        assert np.allclose(out, PAGERANK.reference(inputs))
        # graph mapping: inner Span(all)
        from repro.analysis import SpanAll

        assert isinstance(
            compiled.mappings()[0].level(1).span, SpanAll
        )

    def test_every_app_compiles_on_both_devices(self):
        from repro.apps import ALL_APPS

        for device in (TESLA_K20C, TESLA_C2050):
            for name in ("sumRows", "mandelbrot", "qpscd", "pagerank"):
                app = ALL_APPS[name]
                session = GpuSession(device=device)
                compiled = session.compile(app.build(), **app.default_params)
                assert compiled.estimate_time_us() > 0
                assert "__global__" in compiled.cuda_source

    def test_all_strategies_full_stack(self, rng):
        """Every strategy compiles, generates CUDA, and runs correctly
        (functional results are mapping-independent)."""
        from repro.apps.sums import SUM_COLS

        inputs = SUM_COLS.workload(rng, R=48, C=36)
        expected = SUM_COLS.reference(inputs)
        for strategy in ("multidim", "1d", "thread-block/thread",
                         "warp-based"):
            session = GpuSession(strategy=strategy)
            compiled = session.compile(SUM_COLS.build(), R=48, C=36)
            out = compiled.run(**inputs)
            assert np.allclose(out, expected), strategy

    def test_optimization_ablation_full_stack(self, rng):
        """Fig 16's three configurations through the session API."""
        from repro.apps.sums import SUM_WEIGHTED_COLS

        prog = SUM_WEIGHTED_COLS.build()
        times = {}
        for label, flags in {
            "full": OptimizationFlags(True, True, True),
            "no_layout": OptimizationFlags(True, False, True),
            "malloc": OptimizationFlags(False, False, False),
        }.items():
            session = GpuSession(flags=flags, dynamic_launch=False)
            compiled = session.compile(prog, R=8192, C=8192)
            times[label] = compiled.estimate_time_us()
        assert times["full"] < times["no_layout"] < times["malloc"]

    def test_estimates_scale_with_problem_size(self):
        from repro.apps.mandelbrot import MANDELBROT

        session = GpuSession()
        compiled = session.compile(MANDELBROT.build(), H=2048, W=2048)
        small = compiled.estimate_time_us(H=512, W=512)
        large = compiled.estimate_time_us(H=4096, W=4096)
        assert large > 10 * small

    def test_dynamic_launch_no_worse_than_static(self):
        """Section IV-D: runtime block-size adjustment helps (or at least
        does not hurt) on skewed runtime sizes."""
        from repro.apps.mandelbrot import MANDELBROT

        prog = MANDELBROT.build()
        static = GpuSession(dynamic_launch=False).compile(
            prog, H=2048, W=2048
        )
        dynamic = GpuSession(dynamic_launch=True).compile(
            prog, H=2048, W=2048
        )
        skew = {"H": 50, "W": 20000}
        assert (
            dynamic.estimate_time_us(**skew)
            <= static.estimate_time_us(**skew) * 1.05
        )


class TestMappingInvariance:
    """Functional results must not depend on the mapping decision."""

    @pytest.mark.parametrize(
        "app_name,sizes",
        [
            ("sumRows", {"R": 33, "C": 17}),
            ("sumWeightedCols", {"R": 21, "C": 13}),
            ("mandelbrot", {"H": 9, "W": 11}),
            ("msmbuilder", {"P": 6, "K": 5, "D": 4}),
        ],
    )
    def test_strategies_agree(self, rng, app_name, sizes):
        from repro.apps import ALL_APPS

        app = ALL_APPS[app_name]
        inputs = app.workload(rng, **sizes)
        results = []
        for strategy in ("multidim", "1d"):
            compiled = GpuSession(strategy=strategy).compile(
                app.build(), **sizes
            )
            results.append(np.asarray(compiled.run(**inputs), dtype=float))
        assert np.allclose(results[0], results[1])
