"""End-to-end fuzzing: random small pattern programs must analyze, map,
generate CUDA, simulate, and execute consistently across strategies.

The generator builds random 1-3 level nests over a matrix and a vector with
randomized body arithmetic, boundary-clamped neighbor offsets, optional
conditionals, and a randomized reduction operator.  For every sample:

* analysis + Algorithm-1 search succeed and satisfy hard constraints;
* CUDA generation produces a kernel;
* the cost model returns a positive finite time;
* functional results are identical under "multidim" and "1d" (mapping
  invariance — the reproduction's core correctness contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GpuSession
from repro.analysis.scoring import hard_feasible
from repro.ir import Builder, F64
from repro.ir.builder import maximum, minimum


@st.composite
def program_spec(draw):
    rows = draw(st.integers(min_value=1, max_value=9))
    cols = draw(st.integers(min_value=1, max_value=9))
    scale = draw(st.floats(min_value=-2, max_value=2, allow_nan=False))
    offset = draw(st.integers(min_value=-2, max_value=2))
    op = draw(st.sampled_from(["+", "min", "max"]))
    use_neighbor = draw(st.booleans())
    use_select = draw(st.booleans())
    use_vector = draw(st.booleans())
    orientation = draw(st.sampled_from(["rows", "cols"]))
    prob = draw(st.floats(min_value=0.1, max_value=0.9))
    return dict(
        rows=rows, cols=cols, scale=scale, offset=offset, op=op,
        use_neighbor=use_neighbor, use_select=use_select,
        use_vector=use_vector, orientation=orientation, prob=prob,
    )


def build_program(spec):
    b = Builder("fuzz")
    m = b.matrix("m", F64, rows="R", cols="C")
    v = b.vector(
        "v", F64, length="C" if spec["orientation"] == "rows" else "R"
    )

    def body(view):
        from repro.ir.builder import EH

        def element(e, k):
            value = e * spec["scale"]
            if spec["use_neighbor"]:
                limit = EH(
                    m.cols if spec["orientation"] == "rows" else m.rows
                )
                clamped = minimum(
                    maximum(k + spec["offset"], 0), limit - 1
                )
                value = value + view[clamped]
            if spec["use_vector"]:
                value = value + v[k]
            if spec["use_select"]:
                value = (value > 0).where(
                    value, -value, prob=spec["prob"]
                )
            return value

        idx_holder = {}

        def fn(e):
            return element(e, idx_holder["k"])

        # use map_reduce with explicit index capture via a wrapper
        from repro.ir.builder import EH
        from repro.ir.expr import Var
        from repro.ir.patterns import Reduce
        from repro.ir.symbols import fresh_name
        from repro.ir.types import I64

        k = Var(fresh_name("k"), I64)
        idx_holder["k"] = EH(k)
        body_expr = element(view[EH(k)], EH(k)).expr
        return EH(Reduce(view.length, k, body_expr, spec["op"]))

    if spec["orientation"] == "rows":
        out = m.map_rows(body)
    else:
        out = m.map_cols(body)
    return b.build(out)


def reference(spec, m, v):
    axis_len = m.shape[1] if spec["orientation"] == "rows" else m.shape[0]
    data = m if spec["orientation"] == "rows" else m.T
    value = data * spec["scale"]
    if spec["use_neighbor"]:
        idx = np.clip(
            np.arange(axis_len) + spec["offset"], 0, axis_len - 1
        )
        value = value + data[:, idx]
    if spec["use_vector"]:
        value = value + v[None, :]
    if spec["use_select"]:
        value = np.where(value > 0, value, -value)
    reducer = {"+": np.sum, "min": np.min, "max": np.max}[spec["op"]]
    return reducer(value, axis=1)


@given(spec=program_spec(), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_fuzz_end_to_end(spec, seed):
    program = build_program(spec)
    rng = np.random.default_rng(seed)
    m = rng.random((spec["rows"], spec["cols"])) - 0.5
    v = rng.random(
        spec["cols"] if spec["orientation"] == "rows" else spec["rows"]
    )

    expected = reference(spec, m, v)

    results = []
    for strategy in ("multidim", "1d"):
        session = GpuSession(strategy=strategy)
        compiled = session.compile(
            program, R=spec["rows"], C=spec["cols"]
        )
        # analysis invariants
        for decision in compiled.decisions:
            assert hard_feasible(
                decision.mapping,
                decision.analysis.constraints,
                decision.analysis.level_sizes(),
            )
        # codegen + cost model sanity
        assert "__global__" in compiled.cuda_source
        time_us = compiled.estimate_time_us()
        assert np.isfinite(time_us) and time_us > 0
        results.append(
            compiled.run(m=m, v=v, R=spec["rows"], C=spec["cols"])
        )

    assert np.allclose(results[0], results[1])
    assert np.allclose(results[0], expected, rtol=1e-9, atol=1e-9)
