"""End-to-end fuzzing through the differential-testing harness.

This used to carry its own ad-hoc program builder; it now drives the
first-class generator in :mod:`repro.difftest`, so hypothesis explores the
same spec space the ``repro difftest`` CLI campaign does: all six pattern
kinds, nesting to depth 4, conditionals, neighbor accesses, materialized
inner allocations, and custom reduction combiners.

Two layers:

* a hypothesis test sampling random generator seeds and pushing each
  random spec through the full oracle (interpreter self-consistency,
  every strategy x optimization flags, explicit Split(k) forcing, cost
  finiteness, serialization round-trip);
* a fast smoke test replaying the checked-in seed corpus — ~20 shapes
  curated to cover every pattern kind — which is the tier-1 guard every
  PR runs.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.difftest import (
    ProgramGenerator,
    canonical_specs,
    check_spec,
    load_corpus,
)
from repro.difftest.runner import ALL_PATTERN_KINDS

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "corpus",
                           "seed_corpus.json")


@given(seed=st.integers(0, 2**16), index=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_fuzz_random_specs(seed, index):
    """Random generator specs pass the full differential oracle."""
    generator = ProgramGenerator(seed=seed)
    spec = generator.random_spec()
    for _ in range(index):  # sample deeper into the stream, not just spec 1
        spec = generator.random_spec()
    report = check_spec(spec, seed=seed)
    assert report.ok, report.describe()


def test_seed_corpus_replays_green():
    """The checked-in corpus passes the oracle (fast tier-1 smoke test)."""
    specs = load_corpus(CORPUS_PATH)
    assert len(specs) >= 20
    kinds = set()
    split = prealloc = False
    for spec in specs:
        report = check_spec(spec, seed=0)
        assert report.ok, report.describe()
        kinds |= set(report.pattern_kinds)
        split = split or report.split_exercised
        prealloc = prealloc or report.prealloc_exercised
    assert kinds == set(ALL_PATTERN_KINDS)
    assert split and prealloc


def test_canonical_templates_cover_acceptance_floor():
    """The deterministic templates alone cover every pattern kind, a
    Split(k) combiner program, and a preallocated inner allocation."""
    kinds = set()
    split = prealloc = False
    for spec in canonical_specs():
        report = check_spec(spec, seed=0)
        assert report.ok, report.describe()
        kinds |= set(report.pattern_kinds)
        split = split or report.split_exercised
        prealloc = prealloc or report.prealloc_exercised
    assert kinds == set(ALL_PATTERN_KINDS)
    assert split and prealloc
